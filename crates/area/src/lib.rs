//! Area and ADP models (§6.3–6.5, Fig. 12, Table 6).
//!
//! The paper synthesized RTL for both CGRAs with Synopsys DC on a Samsung
//! 65 nm library and estimated SRAM with CACTI 7.0. We substitute a
//! component-area model *calibrated to the paper's reported totals*, which
//! reproduces all four observable area points exactly:
//!
//! | machine | paper (mm²) | source |
//! |---|---|---|
//! | baseline 4×4 | 1.552 | Table 5 ADP ÷ latency (and the Table 6 footnote's 1.55) |
//! | NP-CGRA 4×4 | 1.836 | Table 5 ADP ÷ latency ("18 % larger total area") |
//! | baseline 8×8 | 1.751 | 2.14 mm² ÷ 1.222 (the 22.2 % overhead of §6.3) |
//! | NP-CGRA 8×8 | 2.14  | Table 6 |
//!
//! with the §6.3 qualitative structure: SRAM dominates, the AGUs are the
//! largest core-side increase, the PE-array increase is modest, and the
//! AGU-shared iterator logic sits in the controller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adp;
pub mod comparators;
pub mod energy;
pub mod model;
pub mod scaling;

pub use adp::{adp, Adp};
pub use comparators::{all_comparators, Comparator};
pub use energy::{AccessCounts, EnergyBreakdown, EnergyModel};
pub use model::{AreaBreakdown, AreaModel};
pub use scaling::{convert_area, TechNode};
