//! Benchmarks of the cycle-accurate simulator itself: simulated cycles per
//! wall-clock second for each mapping, and the end-to-end functional layer
//! runs that back Tables 3 and 5.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use npcgra::sim::{run_layer, run_matmul_dwc};
use npcgra::Machine;
use npcgra_bench::{small_dsc, small_pwc, spec_4x4};
use npcgra_kernels::dwc_general::padded_ifm;
use npcgra_kernels::dwc_s1::DwcS1LayerMap;
use npcgra_kernels::pwc::PwcLayerMap;

fn bench_block_execution(c: &mut Criterion) {
    let spec = spec_4x4();

    let mut g = c.benchmark_group("simulator/block");
    // PWC block.
    let (pw, pw_ifm, pw_w) = small_pwc();
    let pw_map = PwcLayerMap::new(&pw, &spec).expect("maps");
    let pw_prog = pw_map.materialize(0, &pw_ifm, &pw_w);
    g.throughput(Throughput::Elements(pw_prog.compute_cycles()));
    g.bench_function("pwc_tile_cycles", |b| {
        let mut m = Machine::new(&spec);
        b.iter(|| black_box(m.run_block(black_box(&pw_prog)).expect("runs")));
    });

    // DWC-S1 block.
    let (dw, dw_ifm, dw_w) = small_dsc();
    let dw_map = DwcS1LayerMap::new(&dw, &spec).expect("maps");
    let padded = padded_ifm(&dw, &dw_ifm);
    let dw_prog = dw_map.materialize(0, &padded, &dw_w);
    g.throughput(Throughput::Elements(dw_prog.compute_cycles()));
    g.bench_function("dwc_s1_tile_cycles", |b| {
        let mut m = Machine::new(&spec);
        b.iter(|| black_box(m.run_block(black_box(&dw_prog)).expect("runs")));
    });
    g.finish();
}

fn bench_layer_execution(c: &mut Criterion) {
    let spec = spec_4x4();
    let mut g = c.benchmark_group("simulator/layer");
    g.sample_size(10);

    let (pw, pw_ifm, pw_w) = small_pwc();
    g.bench_function("pwc_layer_functional", |b| {
        b.iter(|| black_box(run_layer(&pw, &pw_ifm, &pw_w, &spec).expect("runs")));
    });

    let (dw, dw_ifm, dw_w) = small_dsc();
    g.bench_function("dwc_s1_layer_functional", |b| {
        b.iter(|| black_box(run_layer(&dw, &dw_ifm, &dw_w, &spec).expect("runs")));
    });
    g.bench_function("dwc_matmul_layer_functional", |b| {
        b.iter(|| black_box(run_matmul_dwc(&dw, &dw_ifm, &dw_w, &spec).expect("runs")));
    });
    g.finish();
}

fn bench_encoded_execution(c: &mut Criterion) {
    // The decode-per-cycle overhead of running from configuration memory.
    let spec = spec_4x4();
    let (dw, dw_ifm, dw_w) = small_dsc();
    let map = DwcS1LayerMap::new(&dw, &spec).expect("maps");
    let padded = padded_ifm(&dw, &dw_ifm);
    let prog = map.materialize(0, &padded, &dw_w);
    let mut g = c.benchmark_group("simulator/encoded");
    g.bench_function("oracle_block", |b| {
        let mut m = Machine::new(&spec);
        b.iter(|| black_box(m.run_block(black_box(&prog)).expect("runs")));
    });
    g.bench_function("encoded_block", |b| {
        let mut m = Machine::new(&spec);
        b.iter(|| black_box(m.run_block_encoded(black_box(&prog)).expect("runs")));
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_block_execution,
    bench_layer_execution,
    bench_encoded_execution
);
criterion_main!(simulator);
