//! Benchmarks of the batching inference server: request throughput and
//! per-request latency as the worker-shard count and the maximum dynamic
//! batch size vary.
//!
//! Each iteration starts a server, registers a small DSC model pair, pushes
//! a fixed closed-loop workload through it and shuts down — so the numbers
//! include batch formation and program-cache lookups, not just raw
//! simulation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use npcgra::nn::{mobilenet_v1, ConvKind, ConvLayer, Tensor};
use npcgra::serve::{BackendTier, Pipeline, ServeConfig, Server};
use npcgra::sim::CompiledModel;
use npcgra_bench::spec_4x4;

const REQUESTS: usize = 24;
const CLIENTS: usize = 4;

/// Run a fixed mixed dw/pw workload through a server; returns completed
/// requests (asserted, so misconfigurations fail loudly).
fn drive(config: ServeConfig) -> u64 {
    let server = Server::start(config);
    let dw = ConvLayer::depthwise("dw", 4, 16, 16, 3, 1, 1);
    let pw = ConvLayer::pointwise("pw", 8, 8, 8, 8);
    let dw_id = server.register("dw", dw.clone(), dw.random_weights(1)).expect("register dw");
    let pw_id = server.register("pw", pw.clone(), pw.random_weights(2)).expect("register pw");
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let server = &server;
            scope.spawn(move || {
                for r in 0..REQUESTS / CLIENTS {
                    let (id, input) = if r % 2 == 0 {
                        (dw_id, Tensor::random(4, 16, 16, (c * 100 + r) as u64))
                    } else {
                        (pw_id, Tensor::random(8, 8, 8, (c * 100 + r) as u64))
                    };
                    let ticket = server.submit(id, input).expect("submit");
                    ticket.wait().expect("response");
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.completed, REQUESTS as u64);
    stats.completed
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve/workers");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(REQUESTS as u64));
    for workers in [1usize, 2, 4] {
        let config = ServeConfig::for_spec(&spec_4x4())
            .with_workers(workers)
            .with_max_batch(4)
            .with_max_linger(Duration::from_micros(200));
        g.bench_function(format!("w{workers}"), |b| {
            b.iter(|| black_box(drive(config)));
        });
    }
    g.finish();
}

fn bench_batch_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve/max_batch");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(REQUESTS as u64));
    for max_batch in [1usize, 2, 4] {
        let config = ServeConfig::for_spec(&spec_4x4())
            .with_workers(2)
            .with_max_batch(max_batch)
            .with_max_linger(Duration::from_micros(200));
        g.bench_function(format!("b{max_batch}"), |b| {
            b.iter(|| black_box(drive(config)));
        });
    }
    g.finish();
}

/// Push a fixed closed-loop workload of MobileNet V1 DWC + PWC requests
/// through a server on the given tier; returns completed requests.
fn drive_tiered(config: ServeConfig, dw: &ConvLayer, pw: &ConvLayer, requests: usize) -> u64 {
    let server = Server::start(config);
    let dw_id = server
        .register("mbv1.dw", dw.clone(), dw.random_weights(1))
        .expect("register dw");
    let pw_id = server
        .register("mbv1.pw", pw.clone(), pw.random_weights(2))
        .expect("register pw");
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let server = &server;
            scope.spawn(move || {
                for r in 0..requests / CLIENTS {
                    let (id, layer) = if r % 2 == 0 { (dw_id, dw) } else { (pw_id, pw) };
                    let input = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), (c * 100 + r) as u64);
                    let ticket = server.submit(id, input).expect("submit");
                    ticket.wait().expect("response");
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.completed, requests as u64);
    stats.completed
}

/// The tiered-execution headline: the same MobileNet V1 depthwise and
/// pointwise workload on the cycle-accurate tier versus the functional
/// fast tier. The fast tier charges cycles from the closed-form latency
/// models instead of stepping the machine, so its inferences/sec should be
/// an order of magnitude higher while every reply stays bit-exact.
fn bench_tier_comparison(c: &mut Criterion) {
    // Full-width MobileNet V1; the heaviest DWC and PWC layers, so the
    // cycle-accurate tier's cost is dominated by simulation rather than by
    // batching overhead (which both tiers pay identically).
    let model = mobilenet_v1(1.0, 32);
    let dw = model
        .dsc_layers()
        .filter(|l| l.kind() == ConvKind::Depthwise)
        .max_by_key(|l| l.macs())
        .expect("MobileNet V1 has a depthwise layer")
        .clone();
    let pw = model
        .dsc_layers()
        .filter(|l| l.kind() == ConvKind::Pointwise)
        .max_by_key(|l| l.macs())
        .expect("MobileNet V1 has a pointwise layer")
        .clone();
    let requests = 16;
    let mut g = c.benchmark_group("serve/tier");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(requests as u64));
    for tier in BackendTier::ALL {
        let config = ServeConfig::for_spec(&spec_4x4())
            .with_workers(2)
            .with_max_batch(4)
            .with_max_linger(Duration::from_micros(200))
            .with_backend_tier(tier)
            .with_cross_check_interval(8);
        g.bench_function(tier.as_str(), |b| {
            b.iter(|| black_box(drive_tiered(config, &dw, &pw, requests)));
        });
    }
    g.finish();
}

/// Push a closed-loop whole-model workload through a stage pipeline;
/// returns completed inferences.
fn drive_pipeline(config: ServeConfig, model: &CompiledModel, weights: &[Tensor], requests: usize) -> u64 {
    let pipe = Pipeline::start(config, model.clone(), weights.to_vec()).expect("start pipeline");
    let shape = model.input_shape();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let pipe = &pipe;
            scope.spawn(move || {
                for r in 0..requests / CLIENTS {
                    let input = Tensor::random(shape.0, shape.1, shape.2, (c * 100 + r) as u64);
                    let ticket = pipe.submit(input).expect("submit");
                    ticket.wait().expect("response");
                }
            });
        }
    });
    let stats = pipe.shutdown();
    assert_eq!(stats.completed, requests as u64);
    stats.completed
}

/// Whole-model pipeline serving as the stage count varies: one stage is a
/// sequential baseline (every layer on one shard); more stages overlap
/// different inferences' layers at the cost of checkpointing and DMA
/// handoffs between stages.
fn bench_pipeline_stage_scaling(c: &mut Criterion) {
    let chain: Vec<ConvLayer> = mobilenet_v1(0.25, 32).dsc_layers().cloned().collect();
    let spec = spec_4x4();
    let weights: Vec<Tensor> = chain
        .iter()
        .enumerate()
        .map(|(i, l)| l.random_weights(10 + i as u64))
        .collect();
    let requests = 8;
    let mut g = c.benchmark_group("serve/pipeline_stages");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(requests as u64));
    for stages in [1usize, 2, 4] {
        let model = CompiledModel::compile("mbv1", &chain, &spec, stages).expect("compile chain");
        let config = ServeConfig::for_spec(&spec).with_pipeline_stages(stages);
        g.bench_function(format!("s{stages}"), |b| {
            b.iter(|| black_box(drive_pipeline(config, &model, &weights, requests)));
        });
    }
    g.finish();
}

criterion_group!(
    serve_throughput,
    bench_worker_scaling,
    bench_batch_scaling,
    bench_tier_comparison,
    bench_pipeline_stage_scaling
);
criterion_main!(serve_throughput);
