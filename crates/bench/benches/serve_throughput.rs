//! Benchmarks of the batching inference server: request throughput and
//! per-request latency as the worker-shard count and the maximum dynamic
//! batch size vary.
//!
//! Each iteration starts a server, registers a small DSC model pair, pushes
//! a fixed closed-loop workload through it and shuts down — so the numbers
//! include batch formation and program-cache lookups, not just raw
//! simulation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use npcgra::nn::{ConvLayer, Tensor};
use npcgra::serve::{ServeConfig, Server};
use npcgra_bench::spec_4x4;

const REQUESTS: usize = 24;
const CLIENTS: usize = 4;

/// Run a fixed mixed dw/pw workload through a server; returns completed
/// requests (asserted, so misconfigurations fail loudly).
fn drive(config: ServeConfig) -> u64 {
    let server = Server::start(config);
    let dw = ConvLayer::depthwise("dw", 4, 16, 16, 3, 1, 1);
    let pw = ConvLayer::pointwise("pw", 8, 8, 8, 8);
    let dw_id = server.register("dw", dw.clone(), dw.random_weights(1)).expect("register dw");
    let pw_id = server.register("pw", pw.clone(), pw.random_weights(2)).expect("register pw");
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let server = &server;
            scope.spawn(move || {
                for r in 0..REQUESTS / CLIENTS {
                    let (id, input) = if r % 2 == 0 {
                        (dw_id, Tensor::random(4, 16, 16, (c * 100 + r) as u64))
                    } else {
                        (pw_id, Tensor::random(8, 8, 8, (c * 100 + r) as u64))
                    };
                    let ticket = server.submit(id, input).expect("submit");
                    ticket.wait().expect("response");
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.completed, REQUESTS as u64);
    stats.completed
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve/workers");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(REQUESTS as u64));
    for workers in [1usize, 2, 4] {
        let config = ServeConfig::for_spec(&spec_4x4())
            .with_workers(workers)
            .with_max_batch(4)
            .with_max_linger(Duration::from_micros(200));
        g.bench_function(format!("w{workers}"), |b| {
            b.iter(|| black_box(drive(config)));
        });
    }
    g.finish();
}

fn bench_batch_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve/max_batch");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(REQUESTS as u64));
    for max_batch in [1usize, 2, 4] {
        let config = ServeConfig::for_spec(&spec_4x4())
            .with_workers(2)
            .with_max_batch(max_batch)
            .with_max_linger(Duration::from_micros(200));
        g.bench_function(format!("b{max_batch}"), |b| {
            b.iter(|| black_box(drive(config)));
        });
    }
    g.finish();
}

criterion_group!(serve_throughput, bench_worker_scaling, bench_batch_scaling);
criterion_main!(serve_throughput);
