//! Ablation benches for the design choices DESIGN.md calls out: each group
//! prints the simulated-cycle comparison (the ablation result) and
//! benchmarks the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use npcgra::nn::models;
use npcgra::CgraSpec;
use npcgra_kernels::{perf, BlockCfg};
use npcgra_sim::{time_layer, MappingKind};

/// Dual-mode MAC: chained MAC vs MUL+ADD split halves/doubles the compute
/// cycles of every mapping (§3.2's "reduce PWC latency to half").
fn ablation_dual_mode_mac(c: &mut Criterion) {
    let (pw, _, _) = models::table5_layers();
    let spec = CgraSpec::np_cgra(4, 4);
    let cfg = BlockCfg::choose_pwc(&spec, pw.in_channels(), pw.out_w(), pw.out_channels());
    let chained = perf::pwc_layer_cycles(&pw, &spec, cfg);
    // Without chaining each MAC is two issue slots: the stream phase
    // doubles (N_i MACs -> 2·N_i cycles per tile).
    let split_tile = 2 * pw.in_channels() as u64 + spec.cols as u64 + 1;
    let chained_tile = pw.in_channels() as u64 + spec.cols as u64 + 1;
    let split = chained / chained_tile * split_tile;
    println!(
        "[ablation/dual-mode-mac] PWC cycles: chained {chained}, split {split} ({:.2}x)",
        split as f64 / chained as f64
    );
    c.bench_function("ablations/dual_mode_mac_model", |b| {
        b.iter(|| black_box(perf::pwc_layer_cycles(black_box(&pw), &spec, cfg)));
    });
}

/// Operand reuse network: DWC-S1 (ORN-based) vs the general mapping
/// (H-bus streaming) on stride-1 layers.
fn ablation_orn(c: &mut Criterion) {
    let (_, dw1, _) = models::table5_layers();
    let spec = CgraSpec::np_cgra(4, 4);
    let cfg = BlockCfg::choose_dwc(&spec, 3, 1, dw1.out_h(), dw1.out_w());
    let with_orn = perf::dwc_s1_layer_cycles(&dw1, &spec, cfg);
    let without = perf::dwc_general_layer_cycles(&dw1, &spec, cfg);
    println!(
        "[ablation/orn] DWC S=1 cycles: with ORN {with_orn}, without {without} ({:.2}x)",
        without as f64 / with_orn as f64
    );
    c.bench_function("ablations/orn_vs_streaming", |b| {
        b.iter(|| {
            black_box(perf::dwc_s1_layer_cycles(black_box(&dw1), &spec, cfg));
            black_box(perf::dwc_general_layer_cycles(black_box(&dw1), &spec, cfg));
        });
    });
}

/// Crossbar + V-MEM: the mapping-level effect is the matmul-DWC column cap
/// (1/N_c utilization) vs the full 2-D mappings.
fn ablation_crossbar(c: &mut Criterion) {
    let (_, dw1, _) = models::table5_layers();
    let spec = CgraSpec::np_cgra(4, 4);
    let ours = time_layer(&dw1, &spec, MappingKind::Auto).expect("maps");
    let matmul = time_layer(&dw1, &spec, MappingKind::MatmulDwc).expect("maps");
    println!(
        "[ablation/2d-mapping] DWC S=1: 2-D {:.2} ms vs single-column {:.2} ms ({:.2}x)",
        ours.ms(),
        matmul.ms(),
        matmul.ms() / ours.ms()
    );
    c.bench_function("ablations/mapping_dimensionality", |b| {
        b.iter(|| {
            black_box(time_layer(black_box(&dw1), &spec, MappingKind::Auto).expect("maps"));
            black_box(time_layer(black_box(&dw1), &spec, MappingKind::MatmulDwc).expect("maps"));
        });
    });
}

/// Array-size sweep: PWC efficiency as the array grows (the paper expects
/// the mapping-efficiency gap over CCF to widen with size).
fn ablation_array_sweep(c: &mut Criterion) {
    let (pw, _, _) = models::table5_layers();
    print!("[ablation/array-sweep] PWC utilization:");
    for n in [2usize, 4, 8, 16] {
        let spec = CgraSpec::np_cgra(n, n);
        let r = time_layer(&pw, &spec, MappingKind::Auto).expect("maps");
        print!(" {n}x{n}={:.1}%", r.utilization() * 100.0);
    }
    println!();
    c.bench_function("ablations/array_size_sweep", |b| {
        b.iter(|| {
            for n in [2usize, 4, 8, 16] {
                let spec = CgraSpec::np_cgra(n, n);
                black_box(time_layer(black_box(&pw), &spec, MappingKind::Auto).expect("maps"));
            }
        });
    });
}

/// V-MEM SS path (the §4.2 design choice): one V-bus cycle per SS vs
/// streaming the south row over an H-bus for N_c cycles.
fn ablation_ss_vmem(c: &mut Criterion) {
    for n in [4usize, 8, 16] {
        let spec = CgraSpec::np_cgra(n, n);
        let with = npcgra::kernels::DwcS1Mapping::new(3, &spec, 0);
        use npcgra::kernels::TileMapping;
        let w = with.tile_latency();
        let wo = perf::dwc_s1_tile_latency_without_vmem(3, &spec);
        println!(
            "[ablation/ss-vmem] {n}x{n}: tile {w} cycles with V-MEM, {wo} without ({:.2}x)",
            wo as f64 / w as f64
        );
    }
    c.bench_function("ablations/ss_vmem_model", |b| {
        b.iter(|| black_box(perf::dwc_s1_tile_latency_without_vmem(3, &CgraSpec::np_cgra(8, 8))));
    });
}

/// Table 4's two buffering sets: double-buffered vs serialized DMA.
fn ablation_double_buffering(c: &mut Criterion) {
    use npcgra_sim::time_layer_single_buffered;
    let spec = CgraSpec::table4();
    let (_, dw1, _) = models::table5_layers();
    let db = time_layer(&dw1, &spec, MappingKind::Auto).expect("maps");
    let sb = time_layer_single_buffered(&dw1, &spec, MappingKind::Auto).expect("maps");
    println!(
        "[ablation/double-buffer] dw1: {:.3} ms with 2 sets, {:.3} ms with 1 ({:.2}x)",
        db.ms(),
        sb.ms(),
        sb.ms() / db.ms()
    );
    c.bench_function("ablations/double_buffering_model", |b| {
        b.iter(|| black_box(time_layer_single_buffered(black_box(&dw1), &spec, MappingKind::Auto).expect("maps")));
    });
}

/// §5.4 channel batching on a DMA-bound layer.
fn ablation_channel_batching(c: &mut Criterion) {
    let spec = CgraSpec::table4();
    let layer = npcgra::ConvLayer::depthwise("s7.dw", 960, 7, 7, 3, 1, 1);
    let plain = time_layer(&layer, &spec, MappingKind::Auto).expect("maps");
    let batched = time_layer(&layer, &spec, MappingKind::BatchedDwcS1).expect("maps");
    println!(
        "[ablation/batching] 7x7x960 DWC: {:.3} ms per-channel vs {:.3} ms batched ({:.2}x)",
        plain.ms(),
        batched.ms(),
        plain.ms() / batched.ms()
    );
    c.bench_function("ablations/channel_batching_model", |b| {
        b.iter(|| black_box(time_layer(black_box(&layer), &spec, MappingKind::BatchedDwcS1).expect("maps")));
    });
}

criterion_group!(
    ablations,
    ablation_dual_mode_mac,
    ablation_orn,
    ablation_crossbar,
    ablation_array_sweep,
    ablation_ss_vmem,
    ablation_channel_batching,
    ablation_double_buffering
);
criterion_main!(ablations);
