//! One Criterion group per paper table: each group prints the regenerated
//! metrics once, then benchmarks the evaluation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use npcgra::nn::models;
use npcgra::{LayerReport, NpCgra};
use npcgra_baseline::{baseline_4x4, enhanced_8x8, eyeriss_168, min_latency, CcfModel, ReuseScenario};
use npcgra_bench::spec_4x4;
use npcgra_sim::{time_layer, MappingKind};

fn bench_table1(c: &mut Criterion) {
    let layers = models::mobilenet_v2_table1_dwc_layers();
    for arch in [baseline_4x4(), enhanced_8x8(), eyeriss_168()] {
        let m = min_latency(&arch, &layers, ReuseScenario::Most);
        println!(
            "[table1] {}: compute {:.2} ms, L1 {:.2} ms",
            arch.name,
            m.compute_s * 1e3,
            m.l1_s * 1e3
        );
    }
    c.bench_function("table1/min_latency_7_dwc_layers", |b| {
        b.iter(|| {
            for arch in [baseline_4x4(), enhanced_8x8(), eyeriss_168()] {
                black_box(min_latency(&arch, black_box(&layers), ReuseScenario::Most));
            }
        });
    });
}

fn bench_table5(c: &mut Criterion) {
    let spec = spec_4x4();
    let (pw, dw1, dw2) = models::table5_layers();
    let ccf = CcfModel::table5();
    for l in [&pw, &dw1, &dw2] {
        let ours = time_layer(l, &spec, MappingKind::Auto).expect("maps");
        let base = ccf.compile_layer(l);
        println!(
            "[table5] {}: ours {:.2} ms ({:.1} %), CCF {:.2} ms ({:.1} %)",
            l.name(),
            ours.ms(),
            ours.utilization() * 100.0,
            base.seconds * 1e3,
            base.utilization * 100.0
        );
    }
    c.bench_function("table5/np_cgra_mapping_estimates", |b| {
        b.iter(|| {
            for l in [&pw, &dw1, &dw2] {
                black_box(time_layer(black_box(l), &spec, MappingKind::Auto).expect("maps"));
            }
        });
    });
    c.bench_function("table5/ccf_modulo_scheduling", |b| {
        b.iter(|| {
            for l in [&pw, &dw1, &dw2] {
                black_box(ccf.compile_layer(black_box(l)));
            }
        });
    });
}

fn bench_table3(c: &mut Criterion) {
    use npcgra_kernels::{perf, BlockCfg};
    let spec = spec_4x4();
    let (pw, dw1, dw2) = models::table5_layers();
    let cfg_pw = BlockCfg::choose_pwc(&spec, pw.in_channels(), pw.out_w(), pw.out_channels());
    let cfg_dw = BlockCfg::choose_dwc(&spec, 3, 1, dw1.out_h(), dw1.out_w());
    println!(
        "[table3] closed forms (cycles): PWC {} / DWC-S1 {} / DWC-S2 {}",
        perf::pwc_layer_cycles(&pw, &spec, cfg_pw),
        perf::dwc_s1_layer_cycles(&dw1, &spec, cfg_dw),
        perf::best_mapping_cycles(&dw2, &spec)
    );
    c.bench_function("table3/closed_form_latency_models", |b| {
        b.iter(|| {
            black_box(perf::pwc_layer_cycles(black_box(&pw), &spec, cfg_pw));
            black_box(perf::dwc_s1_layer_cycles(black_box(&dw1), &spec, cfg_dw));
            black_box(perf::best_mapping_cycles(black_box(&dw2), &spec));
        });
    });
}

fn bench_figures(c: &mut Criterion) {
    // Figs. 1/5/6-8: schedule generation = configuration compilation;
    // Figs. 9-11: bank-image construction.
    use npcgra_kernels::{ConfigImage, DwcGeneralMapping, DwcS1Mapping, PwcMapping};
    let spec = spec_4x4();
    c.bench_function("fig_schedules/config_compilation", |b| {
        b.iter(|| {
            black_box(ConfigImage::compile(&PwcMapping::new(32, &spec, 0), &spec).expect("compiles"));
            black_box(ConfigImage::compile(&DwcS1Mapping::new(3, &spec, 0), &spec).expect("compiles"));
            black_box(ConfigImage::compile(&DwcGeneralMapping::new(3, 2, &spec, 0), &spec).expect("compiles"));
        });
    });
    use npcgra::Tensor;
    use npcgra_kernels::{layout, BlockCfg};
    let padded = Tensor::random(1, 34, 34, 1);
    let cfg = BlockCfg { b_r: 2, b_c: 2 };
    c.bench_function("fig_layouts/bank_image_construction", |b| {
        b.iter(|| {
            black_box(layout::dwc_s1_h_image(black_box(&padded), 0, 0, 0, cfg, 4, 4, 3));
            black_box(layout::dwc_s1_v_image(black_box(&padded), 0, 0, 0, cfg, 4, 4, 3));
        });
    });
}

fn bench_table6(c: &mut Criterion) {
    let machine = NpCgra::table4();
    let v1 = models::mobilenet_v1(0.5, 128);
    let v2 = models::mobilenet_v2(1.0, 224);
    let alex = models::alexnet();

    let t1 = machine.time_model_dsc(&v1).expect("v1");
    let t2 = machine.time_model_dsc(&v2).expect("v2");
    let alex_ms: f64 = alex.conv_layers().map(|l| machine.time_layer(l).expect("alex").ms()).sum();
    println!(
        "[table6] V1 DSC {:.2} ms (paper 4.01), V2 DSC {:.2} ms (paper 18.06), AlexNet {:.2} ms (paper 40.07)",
        t1.ms(),
        t2.ms(),
        alex_ms
    );

    c.bench_function("table6/mobilenet_v1_dsc_timing", |b| {
        b.iter(|| black_box(machine.time_model_dsc(black_box(&v1)).expect("v1")));
    });
    c.bench_function("table6/mobilenet_v2_dsc_timing", |b| {
        b.iter(|| black_box(machine.time_model_dsc(black_box(&v2)).expect("v2")));
    });
    c.bench_function("table6/alexnet_im2col_pwc_timing", |b| {
        b.iter(|| {
            let total: f64 = alex.conv_layers().map(|l| machine.time_layer(l).expect("alex").ms()).sum();
            black_box(total)
        });
    });
}

fn bench_fig12(c: &mut Criterion) {
    let machine = NpCgra::table4();
    let a = machine.area();
    println!(
        "[fig12] NP-CGRA 8x8: total {:.3} mm^2 (SRAM {:.3}, PEs {:.3}, AGUs {:.3})",
        a.total(),
        a.sram,
        a.pe_array,
        a.agus
    );
    c.bench_function("fig12/area_breakdown", |b| {
        b.iter(|| black_box(NpCgra::table4().area().total()));
    });
    let _ = LayerReport::for_spec("bench", machine.spec());
}

criterion_group!(
    tables,
    bench_table1,
    bench_table3,
    bench_table5,
    bench_table6,
    bench_fig12,
    bench_figures
);
criterion_main!(tables);
