//! Shared helpers for the NP-CGRA benchmark harness.
//!
//! The benches serve two purposes: Criterion measures the wall-clock cost
//! of the *models* (how fast the reproduction evaluates each paper table),
//! and each group first prints the simulated paper metrics it regenerates,
//! so `cargo bench` output doubles as an experiment log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use npcgra::{CgraSpec, ConvLayer, Tensor};

/// The Table 5 machine (4×4 with the Table 4 memory budget).
#[must_use]
pub fn spec_4x4() -> CgraSpec {
    let mut s = CgraSpec::np_cgra(4, 4);
    s.hmem_bytes = 39 * 1024;
    s.vmem_bytes = 39 * 1024;
    s
}

/// A small DSC workload with data, for cycle-accurate benching.
#[must_use]
pub fn small_dsc() -> (ConvLayer, Tensor, Tensor) {
    let layer = ConvLayer::depthwise("dw", 8, 32, 32, 3, 1, 1);
    let ifm = Tensor::random(8, 32, 32, 1);
    let w = layer.random_weights(2);
    (layer, ifm, w)
}

/// A small PWC workload with data.
#[must_use]
pub fn small_pwc() -> (ConvLayer, Tensor, Tensor) {
    let layer = ConvLayer::pointwise("pw", 32, 32, 16, 16);
    let ifm = Tensor::random(32, 16, 16, 3);
    let w = layer.random_weights(4);
    (layer, ifm, w)
}
