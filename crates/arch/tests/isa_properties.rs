//! Property tests for the instruction encoding and PE semantics.

use npcgra_arch::{DualModeMac, Instruction, MacMode, MuxSel, Op, OrnTap, Pe, PeInputs, WriteSel};
use proptest::prelude::*;

fn any_op() -> impl Strategy<Value = Op> {
    (0..Op::ALL.len()).prop_map(|i| Op::ALL[i])
}

fn any_mux() -> impl Strategy<Value = MuxSel> {
    (0..MuxSel::ALL.len()).prop_map(|i| MuxSel::ALL[i])
}

fn any_instruction() -> impl Strategy<Value = Instruction> {
    (
        any_op(),
        any_mux(),
        any_mux(),
        0u8..16,
        0u8..16,
        any::<bool>(),
        0u8..16,
        (0..WriteSel::ALL.len()).prop_map(|i| WriteSel::ALL[i]),
        (0..OrnTap::ALL.len()).prop_map(|i| OrnTap::ALL[i]),
        (any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(op, mux_a, mux_b, reg_a, reg_b, wr_en, wr_reg, wr_sel, in_op, (orn_en, ab, db))| Instruction {
                op,
                mux_a,
                mux_b,
                reg_a,
                reg_b,
                wr_en,
                wr_reg,
                wr_sel,
                in_op,
                orn_en,
                ab,
                db,
            },
        )
}

proptest! {
    /// encode → decode is the identity for every well-formed instruction.
    #[test]
    fn encode_decode_roundtrip(ins in any_instruction()) {
        let w = ins.encode();
        prop_assert!(w < (1u64 << npcgra_arch::isa::WIDTH));
        prop_assert_eq!(Instruction::decode(w).unwrap(), ins);
    }

    /// Decoding never panics on arbitrary 36-bit words.
    #[test]
    fn decode_is_total_over_36_bits(w in 0u64..(1u64 << 36)) {
        let _ = Instruction::decode(w);
    }

    /// A chained MAC equals MUL-then-ADD split across two baseline cycles.
    #[test]
    fn mac_equals_split_sequence(acc in any::<i16>(), a in any::<i16>(), b in any::<i16>()) {
        let (acc, a, b) = (i32::from(acc), i32::from(a), i32::from(b));
        let chained = DualModeMac::new(MacMode::Chained).execute(Op::Mac, acc, a, b).unwrap();
        let split = DualModeMac::new(MacMode::Split);
        let prod = split.execute(Op::Mul, 0, a, b).unwrap();
        let sum = split.execute(Op::Add, 0, acc, prod).unwrap();
        prop_assert_eq!(chained, sum);
    }

    /// A PE running `mac(HBus, VBus)` for n cycles computes the dot product.
    #[test]
    fn pe_mac_chain_is_dot_product(xs in prop::collection::vec(any::<i16>(), 1..20), ws in prop::collection::vec(any::<i16>(), 1..20)) {
        let n = xs.len().min(ws.len());
        let mut pe = Pe::new();
        let mac = DualModeMac::new(MacMode::Chained);
        let mut expect: i32 = 0;
        for i in 0..n {
            let ins = if i == 0 {
                Instruction::mul(MuxSel::HBus, MuxSel::VBus)
            } else {
                Instruction::mac(MuxSel::HBus, MuxSel::VBus)
            };
            let io = PeInputs { h_bus: Some(i32::from(xs[i])), v_bus: Some(i32::from(ws[i])), ..PeInputs::default() };
            pe.step(&ins, &io, mac).unwrap();
            let prod = i32::from(xs[i]).wrapping_mul(i32::from(ws[i]));
            expect = if i == 0 { prod } else { expect.wrapping_add(prod) };
        }
        prop_assert_eq!(pe.out(), expect);
    }
}
