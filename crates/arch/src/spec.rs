//! Machine specifications (Table 4 and §3.3).
//!
//! A [`CgraSpec`] describes one concrete machine: array geometry, word
//! width, clock, local-memory sizing, off-chip interface and which of the
//! paper's three extensions are present. Two canonical instances exist:
//! [`CgraSpec::baseline`] (the ADRES-like machine CCF compiles to) and
//! [`CgraSpec::np_cgra`] (the proposed machine).

use crate::isa;
use crate::mac::MacMode;

/// Feature flags for the paper's architecture extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CgraFeatures {
    /// Crossbar-style memory bus: V-MEM + per-column V-busses and the
    /// AGU↔bank crossbar (§3.2).
    pub crossbar_vbus: bool,
    /// Dual-mode MAC (single-cycle MUL+ADD chaining).
    pub dual_mode_mac: bool,
    /// Operand reuse network (input-to-input forwarding).
    pub operand_reuse: bool,
    /// Streamed load-store through AGUs (vs addressed load-store computed on
    /// PEs).
    pub streamed_lsu: bool,
    /// Broadcast global register file (+ optional Weight Buffer).
    pub grf: bool,
}

impl CgraFeatures {
    /// All extensions on (NP-CGRA).
    #[must_use]
    pub fn all() -> Self {
        CgraFeatures {
            crossbar_vbus: true,
            dual_mode_mac: true,
            operand_reuse: true,
            streamed_lsu: true,
            grf: true,
        }
    }

    /// No extensions (baseline ADRES-like CGRA).
    #[must_use]
    pub fn none() -> Self {
        CgraFeatures {
            crossbar_vbus: false,
            dual_mode_mac: false,
            operand_reuse: false,
            streamed_lsu: false,
            grf: false,
        }
    }
}

/// One machine configuration.
///
/// # Example
///
/// ```
/// use npcgra_arch::CgraSpec;
///
/// let np = CgraSpec::np_cgra(8, 8);
/// assert_eq!(np.num_pes(), 64);
/// assert_eq!(np.config_bits_per_cycle(), 2312); // 36×64 + 8, Table 4
/// assert_eq!(np.peak_ops_per_cycle(), 128);     // Table 6 "#Ops/cycle"
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgraSpec {
    /// PE-array rows `N_r`.
    pub rows: usize,
    /// PE-array columns `N_c`.
    pub cols: usize,
    /// Datapath word size in bytes (Table 4: 2; the §3.1 baseline: 4).
    pub word_bytes: usize,
    /// Clock frequency in Hz (500 MHz in the evaluation).
    pub clock_hz: f64,
    /// Extension flags.
    pub features: CgraFeatures,
    /// H-MEM capacity in bytes, per buffering set (Table 4: 39 KB).
    pub hmem_bytes: usize,
    /// V-MEM capacity in bytes, per buffering set (equal to H-MEM).
    pub vmem_bytes: usize,
    /// Number of double-buffering sets (Table 4: 2).
    pub mem_sets: usize,
    /// Off-chip bandwidth in bytes/second (Table 4: 12.5 GB/s).
    pub dram_bandwidth: f64,
    /// Fixed DMA transfer latency in CGRA cycles (Table 4: 200).
    pub dma_latency_cycles: u64,
    /// Configuration-memory depth in contexts.
    pub config_contexts: usize,
}

impl CgraSpec {
    /// The baseline ADRES-like CGRA: mesh + per-row busses, one
    /// (addressed) load-store unit per row, MUL *or* ADD per PE per cycle.
    /// §3.1 analyses it with a 4-byte word.
    #[must_use]
    pub fn baseline(rows: usize, cols: usize) -> Self {
        CgraSpec {
            rows,
            cols,
            word_bytes: 4,
            clock_hz: 500e6,
            features: CgraFeatures::none(),
            hmem_bytes: 39 * 1024 * 2, // undivided local memory, same total as H+V
            vmem_bytes: 0,
            mem_sets: 2,
            dram_bandwidth: 12.5e9,
            dma_latency_cycles: 200,
            config_contexts: 32,
        }
    }

    /// NP-CGRA per Table 4: 16-bit words, 500 MHz, 39 KB H-MEM and V-MEM
    /// (×2 sets), 12.5 GB/s off-chip, 200-cycle DMA latency.
    #[must_use]
    pub fn np_cgra(rows: usize, cols: usize) -> Self {
        CgraSpec {
            rows,
            cols,
            word_bytes: 2,
            clock_hz: 500e6,
            features: CgraFeatures::all(),
            hmem_bytes: 39 * 1024,
            vmem_bytes: 39 * 1024,
            mem_sets: 2,
            dram_bandwidth: 12.5e9,
            dma_latency_cycles: 200,
            config_contexts: 32,
        }
    }

    /// The Table 4 machine: 8×8 NP-CGRA.
    #[must_use]
    pub fn table4() -> Self {
        CgraSpec::np_cgra(8, 8)
    }

    /// Builder-style word-size override.
    #[must_use]
    pub fn with_word_bytes(mut self, bytes: usize) -> Self {
        self.word_bytes = bytes;
        self
    }

    /// Builder-style clock override.
    #[must_use]
    pub fn with_clock_hz(mut self, hz: f64) -> Self {
        self.clock_hz = hz;
        self
    }

    /// Builder-style feature override (for ablations).
    #[must_use]
    pub fn with_features(mut self, features: CgraFeatures) -> Self {
        self.features = features;
        self
    }

    /// Number of PEs.
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// One clock period, in seconds.
    #[must_use]
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// The MAC mode implied by the feature set.
    #[must_use]
    pub fn mac_mode(&self) -> MacMode {
        if self.features.dual_mode_mac {
            MacMode::Chained
        } else {
            MacMode::Split
        }
    }

    /// Peak primitive ops (MUL/ADD) per cycle: 2 per PE with dual-mode MAC,
    /// 1 otherwise (the "#Ops/cycle" convention of Table 6).
    #[must_use]
    pub fn peak_ops_per_cycle(&self) -> u64 {
        self.num_pes() as u64 * if self.features.dual_mode_mac { 2 } else { 1 }
    }

    /// Peak MACs per second.
    #[must_use]
    pub fn peak_macs_per_sec(&self) -> f64 {
        let macs_per_cycle = if self.features.dual_mode_mac {
            self.num_pes() as f64
        } else {
            self.num_pes() as f64 / 2.0
        };
        macs_per_cycle * self.clock_hz
    }

    /// Number of simultaneous on-chip streamed read ports: one H-AGU per
    /// row, plus one V-AGU per column with the crossbar extension. The
    /// baseline has one (addressed) load-store unit per row.
    #[must_use]
    pub fn read_ports(&self) -> usize {
        self.rows + if self.features.crossbar_vbus { self.cols } else { 0 }
    }

    /// Per-PE instruction width in bits.
    #[must_use]
    pub fn instruction_bits(&self) -> u32 {
        if self.features == CgraFeatures::none() {
            isa::BASELINE_WIDTH
        } else {
            isa::WIDTH
        }
    }

    /// Configuration bits consumed per cycle: `36 × #PEs + 8` for NP-CGRA
    /// (4 GRF-index bits + 2 H/V read-request bits + 2 streamed-LSU control
    /// bits, §6.1), `32 × #PEs` for the baseline.
    #[must_use]
    pub fn config_bits_per_cycle(&self) -> u64 {
        let global = if self.features == CgraFeatures::none() { 0 } else { 8 };
        u64::from(self.instruction_bits()) * self.num_pes() as u64 + global
    }

    /// Configuration-memory size in bytes for the configured context depth
    /// (Table 4: 2312 bits × 32 contexts = 9248 B for the 8×8 machine).
    #[must_use]
    pub fn config_mem_bytes(&self) -> u64 {
        self.config_bits_per_cycle() * self.config_contexts as u64 / 8
    }

    /// Total on-chip data memory in bytes (all sets; Table 4/6: 156 KB for
    /// the 8×8 machine).
    #[must_use]
    pub fn total_local_mem_bytes(&self) -> usize {
        (self.hmem_bytes + self.vmem_bytes) * self.mem_sets
    }

    /// Suggested H-MEM capacity in *words* to hold one blocked operand,
    /// `N_i·K²·N_r`, the sizing rule Table 4 mentions for AlexNet.
    #[must_use]
    pub fn blocked_operand_words(n_i: usize, k: usize, rows: usize) -> usize {
        n_i * k * k * rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_constants() {
        let s = CgraSpec::table4();
        assert_eq!(s.num_pes(), 64);
        assert_eq!(s.word_bytes, 2);
        assert!((s.clock_hz - 500e6).abs() < 1.0);
        assert_eq!(s.config_bits_per_cycle(), 2312);
        assert_eq!(s.config_mem_bytes(), 9248);
        assert_eq!(s.total_local_mem_bytes(), 4 * 39 * 1024);
    }

    #[test]
    fn table6_ops_per_cycle() {
        assert_eq!(CgraSpec::np_cgra(8, 8).peak_ops_per_cycle(), 128);
        // The baseline does one op per PE per cycle.
        assert_eq!(CgraSpec::baseline(4, 4).peak_ops_per_cycle(), 16);
    }

    #[test]
    fn baseline_has_no_extensions() {
        let b = CgraSpec::baseline(4, 4);
        assert_eq!(b.features, CgraFeatures::none());
        assert_eq!(b.instruction_bits(), 32);
        assert_eq!(b.read_ports(), 4);
        assert_eq!(b.mac_mode(), MacMode::Split);
    }

    #[test]
    fn np_cgra_doubles_read_ports() {
        // §3.1: the enhanced CGRA needs one load-store unit per row *or*
        // column → 16 ports on an 8×8.
        assert_eq!(CgraSpec::np_cgra(8, 8).read_ports(), 16);
    }

    #[test]
    fn peak_macs_reflect_dual_mode() {
        let np = CgraSpec::np_cgra(8, 8);
        let base = CgraSpec::baseline(8, 8);
        assert!((np.peak_macs_per_sec() / (64.0 * 500e6) - 1.0).abs() < 1e-9);
        assert!((base.peak_macs_per_sec() / (32.0 * 500e6) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn builders_override() {
        let s = CgraSpec::baseline(4, 4).with_word_bytes(2).with_clock_hz(450e6);
        assert_eq!(s.word_bytes, 2);
        assert!((s.clock_hz - 450e6).abs() < 1.0);
    }

    #[test]
    fn blocked_operand_sizing() {
        // AlexNet conv3 on an 8-row machine: 256×9×8 words.
        assert_eq!(CgraSpec::blocked_operand_words(256, 3, 8), 18432);
    }
}
