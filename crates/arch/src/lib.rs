//! NP-CGRA architecture model.
//!
//! This crate models the *structural* side of the paper's proposal:
//!
//! - [`spec`]: machine specifications ([`CgraSpec`]) for the baseline
//!   ADRES-like CGRA and NP-CGRA (Table 4), including feature flags for the
//!   three extensions (crossbar-style memory bus, dual-mode MAC, operand
//!   reuse network) and configuration-memory sizing (§3.3).
//! - [`op`] / [`isa`]: the PE operation set and the 36-bit instruction word
//!   of Fig. 3, with exact encode/decode.
//! - [`mac`]: the dual-mode MAC unit with the paper's synthesis timing
//!   (0.68 ns MUL, 1.08 ns chained MAC).
//! - [`pe`]: the behavioural PE datapath — input muxes, a small register
//!   file, the output register, and the operand-reuse latch that neighbours
//!   read one cycle later.
//! - [`grf`]: the broadcast global register file and its optional Weight
//!   Buffer.
//!
//! The cycle-accurate machine that wires PEs, busses, AGUs and memories
//! together lives in `npcgra-sim`; this crate keeps each component small and
//! independently testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grf;
pub mod isa;
pub mod mac;
pub mod op;
pub mod pe;
pub mod spec;

pub use grf::{GlobalRegFile, WeightBuffer};
pub use isa::{DecodeError, Instruction, MuxSel, OrnTap, WriteSel};
pub use mac::{DualModeMac, MacMode, MacTiming};
pub use op::Op;
pub use pe::{Pe, PeInputs, PeOutputs};
pub use spec::{CgraFeatures, CgraSpec};
