//! The dual-mode MAC unit (§3.2).
//!
//! Most CGRA PEs perform one operation per cycle — MUL *or* ADD. NP-CGRA
//! makes the MUL→ADD chain *configurable at application granularity*: an
//! application that uses MAC chaining runs with the longer chained critical
//! path; one that does not keeps the baseline cycle time. The paper's
//! synthesis measured a 0.68 ns MUL path and a 1.08 ns chained MAC path
//! (1.23 ns vs 1.65 ns full-PE critical path, a 34 % cycle-time increase
//! when driven at maximum speed; both meet timing at the 2 ns / 500 MHz
//! target used for the evaluation).

use crate::op::Op;

/// The application-granularity MAC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MacMode {
    /// MUL and ADD are chained: [`Op::Mac`] completes in one cycle.
    #[default]
    Chained,
    /// Chaining disabled (baseline behaviour): [`Op::Mac`] is illegal and a
    /// MAC takes a MUL cycle followed by an ADD cycle.
    Split,
}

/// Synthesis-derived timing of the PE arithmetic paths, in nanoseconds
/// (§6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacTiming {
    /// Multiplier path delay.
    pub mul_ns: f64,
    /// Chained multiply-add path delay.
    pub mac_ns: f64,
    /// Full-PE critical path without chaining (baseline CGRA).
    pub pe_baseline_ns: f64,
    /// Full-PE critical path with chaining (NP-CGRA at maximum speed).
    pub pe_chained_ns: f64,
}

impl MacTiming {
    /// The paper's Samsung 65 nm synthesis results.
    #[must_use]
    pub fn samsung_65nm() -> Self {
        MacTiming {
            mul_ns: 0.68,
            mac_ns: 1.08,
            pe_baseline_ns: 1.23,
            pe_chained_ns: 1.65,
        }
    }

    /// Critical path for the given mode.
    #[must_use]
    pub fn critical_path_ns(&self, mode: MacMode) -> f64 {
        match mode {
            MacMode::Chained => self.pe_chained_ns,
            MacMode::Split => self.pe_baseline_ns,
        }
    }

    /// Maximum clock frequency (Hz) for the given mode.
    #[must_use]
    pub fn fmax_hz(&self, mode: MacMode) -> f64 {
        1e9 / self.critical_path_ns(mode)
    }

    /// Whether a clock target (Hz) is met in the given mode.
    #[must_use]
    pub fn meets(&self, mode: MacMode, clock_hz: f64) -> bool {
        self.fmax_hz(mode) >= clock_hz
    }
}

impl Default for MacTiming {
    fn default() -> Self {
        MacTiming::samsung_65nm()
    }
}

/// Error returned when an op is illegal for the configured MAC mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacModeError {
    mode: MacMode,
    op: Op,
}

impl std::fmt::Display for MacModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation {} requires MAC chaining but mode is {:?}", self.op, self.mode)
    }
}

impl std::error::Error for MacModeError {}

/// The functional dual-mode MAC: evaluates ops, enforcing the mode.
///
/// # Example
///
/// ```
/// use npcgra_arch::{DualModeMac, MacMode, Op};
///
/// let mac = DualModeMac::new(MacMode::Chained);
/// assert_eq!(mac.execute(Op::Mac, 10, 3, 4).unwrap(), 22);
///
/// let split = DualModeMac::new(MacMode::Split);
/// assert!(split.execute(Op::Mac, 10, 3, 4).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DualModeMac {
    mode: MacMode,
}

impl DualModeMac {
    /// Create a MAC unit in the given mode.
    #[must_use]
    pub fn new(mode: MacMode) -> Self {
        DualModeMac { mode }
    }

    /// The configured mode.
    #[must_use]
    pub fn mode(self) -> MacMode {
        self.mode
    }

    /// Evaluate `op` with the current accumulator `acc` and operands.
    ///
    /// # Errors
    ///
    /// Returns [`MacModeError`] if `op` is [`Op::Mac`] while chaining is
    /// disabled.
    pub fn execute(self, op: Op, acc: i32, a: i32, b: i32) -> Result<i32, MacModeError> {
        if op.needs_mac_chaining() && self.mode == MacMode::Split {
            return Err(MacModeError { mode: self.mode, op });
        }
        Ok(op.eval(acc, a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_mode_allows_mac() {
        let m = DualModeMac::new(MacMode::Chained);
        assert_eq!(m.execute(Op::Mac, 1, 2, 3).unwrap(), 7);
    }

    #[test]
    fn split_mode_rejects_mac_allows_mul_add() {
        let m = DualModeMac::new(MacMode::Split);
        assert!(m.execute(Op::Mac, 1, 2, 3).is_err());
        assert_eq!(m.execute(Op::Mul, 0, 2, 3).unwrap(), 6);
        assert_eq!(m.execute(Op::Add, 0, 2, 3).unwrap(), 5);
    }

    #[test]
    fn paper_timing_meets_500mhz_in_both_modes() {
        let t = MacTiming::samsung_65nm();
        assert!(t.meets(MacMode::Chained, 500e6));
        assert!(t.meets(MacMode::Split, 500e6));
    }

    #[test]
    fn chained_fmax_is_34_percent_slower() {
        let t = MacTiming::samsung_65nm();
        let ratio = t.critical_path_ns(MacMode::Chained) / t.critical_path_ns(MacMode::Split);
        assert!((ratio - 1.34).abs() < 0.01, "cycle-time ratio {ratio}");
    }

    #[test]
    fn split_mac_emulation_matches_chained() {
        // MUL then ADD over two cycles == one chained MAC.
        let split = DualModeMac::new(MacMode::Split);
        let chained = DualModeMac::new(MacMode::Chained);
        let (acc, a, b) = (11, -4, 9);
        let prod = split.execute(Op::Mul, 0, a, b).unwrap();
        let two_cycle = split.execute(Op::Add, 0, acc, prod).unwrap();
        let one_cycle = chained.execute(Op::Mac, acc, a, b).unwrap();
        assert_eq!(two_cycle, one_cycle);
    }

    #[test]
    fn error_display() {
        let e = DualModeMac::new(MacMode::Split).execute(Op::Mac, 0, 0, 0).unwrap_err();
        assert!(e.to_string().contains("chaining"));
    }
}
