//! The NP-CGRA instruction word (Fig. 3).
//!
//! The paper derives its format from the CCF framework's 32-bit R-type
//! instruction and extends it to 36 bits per PE: `op`, `muxB` and `wr-op`
//! each gain one bit and `in-op` gains two, to address the larger input
//! muxes and the operand reuse network. We realize Fig. 3 with the concrete
//! bit layout below (LSB first):
//!
//! | bits  | field  | meaning |
//! |-------|--------|---------|
//! | 0–4   | op     | PE operation ([`crate::Op`]) |
//! | 5–8   | muxA   | operand-A source ([`MuxSel`]) |
//! | 9–12  | muxB   | operand-B source |
//! | 13–16 | reg a  | register-file index for muxA |
//! | 17–20 | reg b  | register-file index for muxB |
//! | 21    | wr-en  | register-file write enable |
//! | 22–25 | wr-reg | register-file write index |
//! | 26–27 | wr-op  | what to write ([`WriteSel`]) |
//! | 28–29 | in-op  | which neighbour's muxA feeds the ORN input ([`OrnTap`]) |
//! | 30    | orn-en | latch this PE's muxA output for neighbours |
//! | 31    | AB     | addressed-load request (output register is the address) |
//! | 32    | DB     | addressed-store request (output register is the data) |
//! | 33–35 | —      | reserved (zero) |
//!
//! Streamed load-store (the AGU path) is controlled globally per cycle, not
//! per instruction, which is why AGU control lives in the 8 extra
//! configuration bits per cycle (see [`crate::spec::CgraSpec::config_bits_per_cycle`]).

use std::fmt;

use crate::op::Op;

/// Bit width of one NP-CGRA PE instruction.
pub const WIDTH: u32 = 36;

/// Bit width of the baseline CCF R-type PE instruction.
pub const BASELINE_WIDTH: u32 = 32;

/// Operand-source selector for a PE input mux.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum MuxSel {
    /// Constant zero (also the reset source).
    #[default]
    Zero = 0,
    /// The horizontal memory bus of this PE's row.
    HBus = 1,
    /// The vertical memory bus of this PE's column (NP-CGRA only).
    VBus = 2,
    /// This PE's own output register.
    SelfOut = 3,
    /// The north neighbour's output register.
    North = 4,
    /// The south neighbour's output register.
    South = 5,
    /// The east neighbour's output register.
    East = 6,
    /// The west neighbour's output register.
    West = 7,
    /// The local register file, indexed by the `reg a`/`reg b` field.
    Reg = 8,
    /// The global register file, indexed by the per-cycle global
    /// configuration (NP-CGRA only).
    Grf = 9,
    /// The operand-reuse value latched by the neighbour selected with
    /// `in-op` on the *previous* cycle (NP-CGRA only).
    Orn = 10,
}

impl MuxSel {
    /// All selector values, in encoding order.
    pub const ALL: [MuxSel; 11] = [
        MuxSel::Zero,
        MuxSel::HBus,
        MuxSel::VBus,
        MuxSel::SelfOut,
        MuxSel::North,
        MuxSel::South,
        MuxSel::East,
        MuxSel::West,
        MuxSel::Reg,
        MuxSel::Grf,
        MuxSel::Orn,
    ];

    /// Decode a 4-bit selector code.
    #[must_use]
    pub fn from_code(code: u8) -> Option<MuxSel> {
        MuxSel::ALL.get(code as usize).copied()
    }

    /// The 4-bit selector code.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Whether this source exists only on NP-CGRA (not the baseline).
    #[must_use]
    pub fn is_extension(self) -> bool {
        matches!(self, MuxSel::VBus | MuxSel::Grf | MuxSel::Orn)
    }
}

/// Which neighbour's muxA output feeds this PE's operand-reuse input
/// (the instruction's `in-op` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum OrnTap {
    /// Reuse from the north neighbour.
    #[default]
    North = 0,
    /// Reuse from the south neighbour.
    South = 1,
    /// Reuse from the east neighbour.
    East = 2,
    /// Reuse from the west neighbour.
    West = 3,
}

impl OrnTap {
    /// All taps in encoding order.
    pub const ALL: [OrnTap; 4] = [OrnTap::North, OrnTap::South, OrnTap::East, OrnTap::West];

    /// Decode a 2-bit tap code.
    #[must_use]
    pub fn from_code(code: u8) -> Option<OrnTap> {
        OrnTap::ALL.get(code as usize).copied()
    }

    /// The 2-bit tap code.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Row/column delta `(dr, dc)` of the tapped neighbour.
    #[must_use]
    pub fn delta(self) -> (isize, isize) {
        match self {
            OrnTap::North => (-1, 0),
            OrnTap::South => (1, 0),
            OrnTap::East => (0, 1),
            OrnTap::West => (0, -1),
        }
    }
}

/// What the register-file write port stores (the instruction's `wr-op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum WriteSel {
    /// This PE's own output register.
    #[default]
    SelfOut = 0,
    /// The operand-reuse input (the neighbour muxA value selected by
    /// `in-op`).
    Orn = 1,
    /// The row's H-bus value.
    HBus = 2,
    /// The column's V-bus value.
    VBus = 3,
}

impl WriteSel {
    /// All write selectors in encoding order.
    pub const ALL: [WriteSel; 4] = [WriteSel::SelfOut, WriteSel::Orn, WriteSel::HBus, WriteSel::VBus];

    /// Decode a 2-bit code.
    #[must_use]
    pub fn from_code(code: u8) -> Option<WriteSel> {
        WriteSel::ALL.get(code as usize).copied()
    }

    /// The 2-bit code.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }
}

/// Error produced when decoding a malformed instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode field.
    BadOp(u8),
    /// Unknown mux selector.
    BadMux(u8),
    /// Nonzero reserved bits.
    ReservedBits(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOp(c) => write!(f, "unknown opcode {c:#x}"),
            DecodeError::BadMux(c) => write!(f, "unknown mux selector {c:#x}"),
            DecodeError::ReservedBits(w) => write!(f, "reserved bits set in instruction word {w:#011x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// One decoded PE instruction.
///
/// # Example
///
/// ```
/// use npcgra_arch::{Instruction, Op, MuxSel};
///
/// let mac = Instruction::mac(MuxSel::HBus, MuxSel::VBus);
/// let word = mac.encode();
/// assert_eq!(Instruction::decode(word).unwrap(), mac);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Instruction {
    /// PE operation.
    pub op: Op,
    /// Operand-A source.
    pub mux_a: MuxSel,
    /// Operand-B source.
    pub mux_b: MuxSel,
    /// Register index used when `mux_a == MuxSel::Reg`.
    pub reg_a: u8,
    /// Register index used when `mux_b == MuxSel::Reg`.
    pub reg_b: u8,
    /// Register-file write enable.
    pub wr_en: bool,
    /// Register-file write index.
    pub wr_reg: u8,
    /// Register-file write source.
    pub wr_sel: WriteSel,
    /// ORN input tap (`in-op`).
    pub in_op: OrnTap,
    /// Latch this PE's muxA output for neighbours this cycle.
    pub orn_en: bool,
    /// Addressed-load request (`AB`): use the output register as a load
    /// address (baseline-style addressed load-store).
    pub ab: bool,
    /// Addressed-store request (`DB`).
    pub db: bool,
}

impl Instruction {
    /// A no-op instruction.
    #[must_use]
    pub fn nop() -> Self {
        Instruction::default()
    }

    /// A single-cycle MAC with the given operand sources.
    #[must_use]
    pub fn mac(a: MuxSel, b: MuxSel) -> Self {
        Instruction {
            op: Op::Mac,
            mux_a: a,
            mux_b: b,
            ..Instruction::default()
        }
    }

    /// A MUL (which also initializes a MAC chain).
    #[must_use]
    pub fn mul(a: MuxSel, b: MuxSel) -> Self {
        Instruction {
            op: Op::Mul,
            mux_a: a,
            mux_b: b,
            ..Instruction::default()
        }
    }

    /// Builder-style: enable the ORN latch.
    #[must_use]
    pub fn with_orn(mut self) -> Self {
        self.orn_en = true;
        self
    }

    /// Builder-style: set the ORN input tap.
    #[must_use]
    pub fn with_tap(mut self, tap: OrnTap) -> Self {
        self.in_op = tap;
        self
    }

    /// Whether the instruction uses any NP-CGRA-only feature.
    #[must_use]
    pub fn uses_extension(self) -> bool {
        self.op.needs_mac_chaining()
            || self.mux_a.is_extension()
            || self.mux_b.is_extension()
            || self.orn_en
            || matches!(self.wr_sel, WriteSel::Orn | WriteSel::VBus)
    }

    /// Encode to the 36-bit word (in the low bits of a `u64`).
    #[must_use]
    pub fn encode(self) -> u64 {
        let mut w = 0u64;
        w |= u64::from(self.op.code());
        w |= u64::from(self.mux_a.code()) << 5;
        w |= u64::from(self.mux_b.code()) << 9;
        w |= u64::from(self.reg_a & 0xf) << 13;
        w |= u64::from(self.reg_b & 0xf) << 17;
        w |= u64::from(self.wr_en) << 21;
        w |= u64::from(self.wr_reg & 0xf) << 22;
        w |= u64::from(self.wr_sel.code()) << 26;
        w |= u64::from(self.in_op.code()) << 28;
        w |= u64::from(self.orn_en) << 30;
        w |= u64::from(self.ab) << 31;
        w |= u64::from(self.db) << 32;
        w
    }

    /// Decode a 36-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an unknown opcode/mux code or nonzero
    /// reserved bits.
    pub fn decode(w: u64) -> Result<Self, DecodeError> {
        if w >> 33 != 0 {
            return Err(DecodeError::ReservedBits(w));
        }
        let op_code = (w & 0x1f) as u8;
        let op = Op::from_code(op_code).ok_or(DecodeError::BadOp(op_code))?;
        let ma = ((w >> 5) & 0xf) as u8;
        let mux_a = MuxSel::from_code(ma).ok_or(DecodeError::BadMux(ma))?;
        let mb = ((w >> 9) & 0xf) as u8;
        let mux_b = MuxSel::from_code(mb).ok_or(DecodeError::BadMux(mb))?;
        Ok(Instruction {
            op,
            mux_a,
            mux_b,
            reg_a: ((w >> 13) & 0xf) as u8,
            reg_b: ((w >> 17) & 0xf) as u8,
            wr_en: (w >> 21) & 1 == 1,
            wr_reg: ((w >> 22) & 0xf) as u8,
            wr_sel: WriteSel::from_code(((w >> 26) & 0x3) as u8).expect("2-bit write selector is total"),
            in_op: OrnTap::from_code(((w >> 28) & 0x3) as u8).expect("2-bit tap is total"),
            orn_en: (w >> 30) & 1 == 1,
            ab: (w >> 31) & 1 == 1,
            db: (w >> 32) & 1 == 1,
        })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} a={:?} b={:?}", self.op, self.mux_a, self.mux_b)?;
        if self.orn_en {
            write!(f, " orn({:?})", self.in_op)?;
        }
        if self.wr_en {
            write!(f, " wr r{}<-{:?}", self.wr_reg, self.wr_sel)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_fits_in_width() {
        let i = Instruction {
            op: Op::CmpLt,
            mux_a: MuxSel::Orn,
            mux_b: MuxSel::Grf,
            reg_a: 15,
            reg_b: 15,
            wr_en: true,
            wr_reg: 15,
            wr_sel: WriteSel::VBus,
            in_op: OrnTap::West,
            orn_en: true,
            ab: true,
            db: true,
        };
        assert!(i.encode() < (1u64 << WIDTH));
    }

    #[test]
    fn roundtrip_all_fields() {
        for op in Op::ALL {
            for mux in MuxSel::ALL {
                let i = Instruction {
                    op,
                    mux_a: mux,
                    mux_b: MuxSel::Reg,
                    reg_a: 7,
                    reg_b: 3,
                    wr_en: true,
                    wr_reg: 9,
                    wr_sel: WriteSel::Orn,
                    in_op: OrnTap::East,
                    orn_en: true,
                    ab: false,
                    db: true,
                };
                assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
            }
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert!(matches!(Instruction::decode(0x1f), Err(DecodeError::BadOp(0x1f))));
    }

    #[test]
    fn decode_rejects_reserved_bits() {
        assert!(matches!(Instruction::decode(1u64 << 35), Err(DecodeError::ReservedBits(_))));
    }

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(Instruction::nop().encode(), 0);
    }

    #[test]
    fn extension_detection() {
        assert!(Instruction::mac(MuxSel::HBus, MuxSel::VBus).uses_extension());
        assert!(Instruction::mul(MuxSel::HBus, MuxSel::Grf).uses_extension());
        assert!(!Instruction::mul(MuxSel::HBus, MuxSel::Reg).uses_extension());
        assert!(Instruction::mul(MuxSel::HBus, MuxSel::Reg).with_orn().uses_extension());
    }

    #[test]
    fn tap_deltas() {
        assert_eq!(OrnTap::East.delta(), (0, 1));
        assert_eq!(OrnTap::North.delta(), (-1, 0));
    }

    #[test]
    fn display_mentions_op() {
        let i = Instruction::mac(MuxSel::HBus, MuxSel::VBus).with_orn();
        let s = i.to_string();
        assert!(s.contains("mac"));
        assert!(s.contains("orn"));
    }
}
