//! The behavioural PE datapath (Fig. 2).
//!
//! A PE holds an output register, a small local register file and — on
//! NP-CGRA — the operand-reuse latch. Every cycle it selects two operands
//! through its input muxes, executes one operation on the (dual-mode) ALU,
//! and optionally writes the register file and the operand-reuse latch.
//!
//! The PE is deliberately self-contained: the simulator snapshots all
//! neighbour outputs and bus values into [`PeInputs`] *before* stepping any
//! PE, which gives the synchronous register semantics of real hardware
//! (neighbour outputs and ORN values observed by a PE are the values latched
//! at the end of the previous cycle).

use std::fmt;

use crate::isa::{Instruction, MuxSel, OrnTap, WriteSel};
use crate::mac::DualModeMac;

/// Number of registers in the PE-local register file (4-bit index).
pub const REG_FILE_SIZE: usize = 16;

/// Everything a PE can observe in one cycle.
///
/// `None` means "this source does not exist here" — e.g. `v_bus` is `None`
/// on the baseline machine, and `north` is `None` in row 0. Selecting an
/// absent source is a configuration error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeInputs {
    /// Row H-bus value (if the row bus carries valid data this cycle).
    pub h_bus: Option<i32>,
    /// Column V-bus value (NP-CGRA only).
    pub v_bus: Option<i32>,
    /// Broadcast GRF read value (NP-CGRA only).
    pub grf: Option<i32>,
    /// North neighbour's output register (previous cycle).
    pub north: Option<i32>,
    /// South neighbour's output register (previous cycle).
    pub south: Option<i32>,
    /// East neighbour's output register (previous cycle).
    pub east: Option<i32>,
    /// West neighbour's output register (previous cycle).
    pub west: Option<i32>,
    /// North neighbour's operand-reuse latch (previous cycle).
    pub orn_north: Option<i32>,
    /// South neighbour's operand-reuse latch (previous cycle).
    pub orn_south: Option<i32>,
    /// East neighbour's operand-reuse latch (previous cycle).
    pub orn_east: Option<i32>,
    /// West neighbour's operand-reuse latch (previous cycle).
    pub orn_west: Option<i32>,
}

/// What a PE produced in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeOutputs {
    /// The new output-register value.
    pub out: i32,
    /// Addressed-load request: `Some(address)` when the instruction's `AB`
    /// bit is set (the output register value is the address).
    pub load_request: Option<i32>,
    /// Addressed-store request: `Some(data)` when `DB` is set.
    pub store_request: Option<i32>,
    /// Whether this cycle counted as useful arithmetic (for utilization).
    pub arith: bool,
    /// Primitive MUL/ADD ops performed this cycle (MAC counts 2).
    pub primitive_ops: u32,
}

/// Errors raised by a PE configuration that references an absent resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeError {
    /// The selected operand source carries no value this cycle.
    SourceUnavailable {
        /// The offending selector.
        sel: MuxSel,
    },
    /// `Op::Mac` while the dual-mode MAC is in split mode.
    MacChainingDisabled,
    /// Register index out of range (should be unreachable for decoded
    /// instructions, which carry 4-bit indices).
    BadRegister(u8),
}

impl fmt::Display for PeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeError::SourceUnavailable { sel } => write!(f, "operand source {sel:?} is unavailable this cycle"),
            PeError::MacChainingDisabled => write!(f, "MAC op issued while chaining is disabled"),
            PeError::BadRegister(r) => write!(f, "register index {r} out of range"),
        }
    }
}

impl std::error::Error for PeError {}

/// One processing element.
///
/// # Example
///
/// ```
/// use npcgra_arch::{Pe, PeInputs, Instruction, MuxSel, DualModeMac, MacMode};
///
/// let mut pe = Pe::new();
/// let mac = DualModeMac::new(MacMode::Chained);
/// let ins = Instruction::mac(MuxSel::HBus, MuxSel::VBus);
/// let io = PeInputs { h_bus: Some(3), v_bus: Some(4), ..PeInputs::default() };
/// let out = pe.step(&ins, &io, mac).unwrap();
/// assert_eq!(out.out, 12);
/// let out = pe.step(&ins, &io, mac).unwrap();
/// assert_eq!(out.out, 24); // accumulated
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pe {
    out: i32,
    rf: [i32; REG_FILE_SIZE],
    orn: i32,
    orn_valid: bool,
}

impl Pe {
    /// A PE with cleared state.
    #[must_use]
    pub fn new() -> Self {
        Pe {
            out: 0,
            rf: [0; REG_FILE_SIZE],
            orn: 0,
            orn_valid: false,
        }
    }

    /// The current output-register value.
    #[must_use]
    pub fn out(&self) -> i32 {
        self.out
    }

    /// The operand-reuse latch value visible to neighbours, if valid.
    #[must_use]
    pub fn orn(&self) -> Option<i32> {
        self.orn_valid.then_some(self.orn)
    }

    /// Read a register-file entry.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= REG_FILE_SIZE`.
    #[must_use]
    pub fn reg(&self, idx: usize) -> i32 {
        self.rf[idx]
    }

    /// Directly write a register-file entry (used by test benches and the
    /// controller's initialization path).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= REG_FILE_SIZE`.
    pub fn set_reg(&mut self, idx: usize, v: i32) {
        self.rf[idx] = v;
    }

    /// Force the output register (tile initialization).
    pub fn set_out(&mut self, v: i32) {
        self.out = v;
    }

    /// Clear output, register file and ORN latch.
    pub fn reset(&mut self) {
        *self = Pe::new();
    }

    fn resolve(&self, sel: MuxSel, reg: u8, io: &PeInputs) -> Result<i32, PeError> {
        let missing = |sel| PeError::SourceUnavailable { sel };
        Ok(match sel {
            MuxSel::Zero => 0,
            MuxSel::HBus => io.h_bus.ok_or(missing(sel))?,
            MuxSel::VBus => io.v_bus.ok_or(missing(sel))?,
            MuxSel::SelfOut => self.out,
            MuxSel::North => io.north.ok_or(missing(sel))?,
            MuxSel::South => io.south.ok_or(missing(sel))?,
            MuxSel::East => io.east.ok_or(missing(sel))?,
            MuxSel::West => io.west.ok_or(missing(sel))?,
            MuxSel::Reg => {
                let r = reg as usize;
                if r >= REG_FILE_SIZE {
                    return Err(PeError::BadRegister(reg));
                }
                self.rf[r]
            }
            MuxSel::Grf => io.grf.ok_or(missing(sel))?,
            MuxSel::Orn => self.orn_in(reg_to_tap(reg), io).ok_or(missing(sel))?,
        })
    }

    fn orn_in(&self, tap: OrnTap, io: &PeInputs) -> Option<i32> {
        match tap {
            OrnTap::North => io.orn_north,
            OrnTap::South => io.orn_south,
            OrnTap::East => io.orn_east,
            OrnTap::West => io.orn_west,
        }
    }

    /// Execute one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] if the instruction selects an unavailable source
    /// or issues a MAC while chaining is disabled.
    pub fn step(&mut self, ins: &Instruction, io: &PeInputs, mac: DualModeMac) -> Result<PeOutputs, PeError> {
        // Operand selection. For MuxSel::Orn the instruction's in-op field
        // chooses the tap (reg fields are ignored for that selector).
        let a = if ins.mux_a == MuxSel::Orn {
            self.orn_in(ins.in_op, io)
                .ok_or(PeError::SourceUnavailable { sel: MuxSel::Orn })?
        } else {
            self.resolve(ins.mux_a, ins.reg_a, io)?
        };
        let b = if ins.mux_b == MuxSel::Orn {
            self.orn_in(ins.in_op, io)
                .ok_or(PeError::SourceUnavailable { sel: MuxSel::Orn })?
        } else {
            self.resolve(ins.mux_b, ins.reg_b, io)?
        };

        let new_out = mac
            .execute(ins.op, self.out, a, b)
            .map_err(|_| PeError::MacChainingDisabled)?;

        // Register-file write (end of cycle).
        if ins.wr_en {
            let wr = ins.wr_reg as usize;
            if wr >= REG_FILE_SIZE {
                return Err(PeError::BadRegister(ins.wr_reg));
            }
            let data = match ins.wr_sel {
                WriteSel::SelfOut => new_out,
                WriteSel::Orn => self
                    .orn_in(ins.in_op, io)
                    .ok_or(PeError::SourceUnavailable { sel: MuxSel::Orn })?,
                WriteSel::HBus => io.h_bus.ok_or(PeError::SourceUnavailable { sel: MuxSel::HBus })?,
                WriteSel::VBus => io.v_bus.ok_or(PeError::SourceUnavailable { sel: MuxSel::VBus })?,
            };
            self.rf[wr] = data;
        }

        // Operand-reuse latch: captures the muxA output for neighbours to
        // read next cycle.
        if ins.orn_en {
            self.orn = a;
            self.orn_valid = true;
        }

        self.out = new_out;
        Ok(PeOutputs {
            out: new_out,
            load_request: ins.ab.then_some(new_out),
            store_request: ins.db.then_some(new_out),
            arith: ins.op.is_arith(),
            primitive_ops: ins.op.primitive_ops(),
        })
    }
}

impl Default for Pe {
    fn default() -> Self {
        Pe::new()
    }
}

/// Reuse the 2-bit reg field as a tap index when muxB selects ORN without
/// touching in-op; decoded instructions normally route ORN through in-op.
fn reg_to_tap(reg: u8) -> OrnTap {
    OrnTap::from_code(reg & 0x3).expect("2-bit tap is total")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacMode;
    use crate::op::Op;

    fn chained() -> DualModeMac {
        DualModeMac::new(MacMode::Chained)
    }

    #[test]
    fn mac_accumulates_over_cycles() {
        let mut pe = Pe::new();
        let ins = Instruction::mac(MuxSel::HBus, MuxSel::VBus);
        for i in 1..=4 {
            let io = PeInputs {
                h_bus: Some(i),
                v_bus: Some(2),
                ..PeInputs::default()
            };
            pe.step(&ins, &io, chained()).unwrap();
        }
        assert_eq!(pe.out(), 2 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn mul_reinitializes_chain() {
        let mut pe = Pe::new();
        let io = PeInputs {
            h_bus: Some(5),
            v_bus: Some(5),
            ..PeInputs::default()
        };
        pe.step(&Instruction::mac(MuxSel::HBus, MuxSel::VBus), &io, chained())
            .unwrap();
        pe.step(&Instruction::mul(MuxSel::HBus, MuxSel::VBus), &io, chained())
            .unwrap();
        assert_eq!(pe.out(), 25);
    }

    #[test]
    fn missing_vbus_is_error() {
        let mut pe = Pe::new();
        let ins = Instruction::mac(MuxSel::HBus, MuxSel::VBus);
        let io = PeInputs {
            h_bus: Some(1),
            ..PeInputs::default()
        };
        assert!(matches!(
            pe.step(&ins, &io, chained()),
            Err(PeError::SourceUnavailable { sel: MuxSel::VBus })
        ));
    }

    #[test]
    fn orn_latch_is_one_cycle_delayed() {
        // PE latches its muxA value; we read it back via the accessor as the
        // simulator would for a neighbour.
        let mut pe = Pe::new();
        assert_eq!(pe.orn(), None);
        let ins = Instruction::mul(MuxSel::HBus, MuxSel::Zero).with_orn();
        let io = PeInputs {
            h_bus: Some(42),
            ..PeInputs::default()
        };
        pe.step(&ins, &io, chained()).unwrap();
        assert_eq!(pe.orn(), Some(42));
        // Without orn_en the latch holds.
        let ins2 = Instruction::mul(MuxSel::HBus, MuxSel::Zero);
        let io2 = PeInputs {
            h_bus: Some(7),
            ..PeInputs::default()
        };
        pe.step(&ins2, &io2, chained()).unwrap();
        assert_eq!(pe.orn(), Some(42));
    }

    #[test]
    fn orn_operand_reads_neighbour_latch() {
        let mut pe = Pe::new();
        let ins = Instruction {
            op: Op::Pass,
            mux_a: MuxSel::Orn,
            in_op: OrnTap::East,
            ..Instruction::default()
        };
        let io = PeInputs {
            orn_east: Some(99),
            ..PeInputs::default()
        };
        let out = pe.step(&ins, &io, chained()).unwrap();
        assert_eq!(out.out, 99);
    }

    #[test]
    fn register_file_write_and_read() {
        let mut pe = Pe::new();
        // Write the H-bus value into r3.
        let wr = Instruction {
            op: Op::Nop,
            wr_en: true,
            wr_reg: 3,
            wr_sel: WriteSel::HBus,
            ..Instruction::default()
        };
        let io = PeInputs {
            h_bus: Some(-17),
            ..PeInputs::default()
        };
        pe.step(&wr, &io, chained()).unwrap();
        assert_eq!(pe.reg(3), -17);
        // Read it back through muxA.
        let rd = Instruction {
            op: Op::Pass,
            mux_a: MuxSel::Reg,
            reg_a: 3,
            ..Instruction::default()
        };
        let out = pe.step(&rd, &PeInputs::default(), chained()).unwrap();
        assert_eq!(out.out, -17);
    }

    #[test]
    fn store_request_carries_output() {
        let mut pe = Pe::new();
        let ins = Instruction {
            op: Op::Pass,
            mux_a: MuxSel::HBus,
            db: true,
            ..Instruction::default()
        };
        let io = PeInputs {
            h_bus: Some(8),
            ..PeInputs::default()
        };
        let out = pe.step(&ins, &io, chained()).unwrap();
        assert_eq!(out.store_request, Some(8));
        assert_eq!(out.load_request, None);
    }

    #[test]
    fn grf_operand() {
        let mut pe = Pe::new();
        let ins = Instruction::mac(MuxSel::HBus, MuxSel::Grf);
        let io = PeInputs {
            h_bus: Some(3),
            grf: Some(-2),
            ..PeInputs::default()
        };
        let out = pe.step(&ins, &io, chained()).unwrap();
        assert_eq!(out.out, -6);
    }

    #[test]
    fn nop_is_not_arith() {
        let mut pe = Pe::new();
        let out = pe.step(&Instruction::nop(), &PeInputs::default(), chained()).unwrap();
        assert!(!out.arith);
        assert_eq!(out.primitive_ops, 0);
    }

    #[test]
    fn split_mode_mac_errors() {
        let mut pe = Pe::new();
        let ins = Instruction::mac(MuxSel::HBus, MuxSel::VBus);
        let io = PeInputs {
            h_bus: Some(1),
            v_bus: Some(1),
            ..PeInputs::default()
        };
        let r = pe.step(&ins, &io, DualModeMac::new(MacMode::Split));
        assert!(matches!(r, Err(PeError::MacChainingDisabled)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut pe = Pe::new();
        pe.set_out(5);
        pe.set_reg(2, 9);
        pe.reset();
        assert_eq!(pe.out(), 0);
        assert_eq!(pe.reg(2), 0);
        assert_eq!(pe.orn(), None);
    }
}
