//! The PE operation set.
//!
//! The baseline ADRES-like PE supports arithmetic/logic ops at one op per
//! cycle (MUL *or* ADD, §3.1). NP-CGRA adds the chained [`Op::Mac`], enabled
//! by the dual-mode MAC unit; the remaining ops are shared by both machines.

use std::fmt;

/// One PE operation, executed in a single cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Op {
    /// No operation; the output register holds its value.
    #[default]
    Nop = 0,
    /// `out = A`.
    Pass = 1,
    /// `out = A + B`.
    Add = 2,
    /// `out = A - B`.
    Sub = 3,
    /// `out = A * B` (also the MAC-chain initializer: it overwrites the
    /// accumulator).
    Mul = 4,
    /// `out = out + A * B` — single-cycle multiply-accumulate; requires the
    /// dual-mode MAC extension (chained mode).
    Mac = 5,
    /// `out = A & B`.
    And = 6,
    /// `out = A | B`.
    Or = 7,
    /// `out = A ^ B`.
    Xor = 8,
    /// `out = A << (B & 31)`.
    Shl = 9,
    /// `out = A >> (B & 31)` (arithmetic).
    Shr = 10,
    /// `out = max(A, B)` (ReLU and pooling building block).
    Max = 11,
    /// `out = min(A, B)`.
    Min = 12,
    /// `out = (A == B) ? 1 : 0`.
    CmpEq = 13,
    /// `out = (A < B) ? 1 : 0` (signed).
    CmpLt = 14,
}

impl Op {
    /// All operations, in encoding order.
    pub const ALL: [Op; 15] = [
        Op::Nop,
        Op::Pass,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Mac,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Shl,
        Op::Shr,
        Op::Max,
        Op::Min,
        Op::CmpEq,
        Op::CmpLt,
    ];

    /// Decode from the 5-bit opcode field.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Op> {
        Op::ALL.get(code as usize).copied()
    }

    /// The 5-bit opcode.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Whether the op requires the dual-mode MAC in chained mode.
    #[must_use]
    pub fn needs_mac_chaining(self) -> bool {
        self == Op::Mac
    }

    /// Whether this cycle performs useful arithmetic toward a convolution
    /// (the paper's utilization metric counts MUL/ADD/MAC work).
    #[must_use]
    pub fn is_arith(self) -> bool {
        !matches!(self, Op::Nop | Op::Pass)
    }

    /// Number of primitive MUL/ADD operations this op represents, used by
    /// the utilization accounting (a chained MAC counts as 2, matching the
    /// paper's "#Ops/cycle" convention in Table 6).
    #[must_use]
    pub fn primitive_ops(self) -> u32 {
        match self {
            Op::Nop | Op::Pass => 0,
            Op::Mac => 2,
            _ => 1,
        }
    }

    /// Evaluate the operation on 32-bit accumulator values with wrapping
    /// semantics. `acc` is the current output-register value (used by
    /// [`Op::Mac`] and returned unchanged for [`Op::Nop`]).
    #[must_use]
    pub fn eval(self, acc: i32, a: i32, b: i32) -> i32 {
        match self {
            Op::Nop => acc,
            Op::Pass => a,
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::Mac => acc.wrapping_add(a.wrapping_mul(b)),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Shl => a.wrapping_shl((b & 31) as u32),
            Op::Shr => a.wrapping_shr((b & 31) as u32),
            Op::Max => a.max(b),
            Op::Min => a.min(b),
            Op::CmpEq => i32::from(a == b),
            Op::CmpLt => i32::from(a < b),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Nop => "nop",
            Op::Pass => "pass",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Mac => "mac",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::Max => "max",
            Op::Min => "min",
            Op::CmpEq => "cmpeq",
            Op::CmpLt => "cmplt",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::from_code(op.code()), Some(op));
        }
        assert_eq!(Op::from_code(31), None);
    }

    #[test]
    fn mac_accumulates() {
        assert_eq!(Op::Mac.eval(10, 3, 4), 22);
        assert_eq!(Op::Mul.eval(10, 3, 4), 12);
    }

    #[test]
    fn nop_holds() {
        assert_eq!(Op::Nop.eval(7, 100, 100), 7);
    }

    #[test]
    fn wrapping_mul_does_not_panic() {
        let _ = Op::Mul.eval(0, i32::MAX, 2);
        let _ = Op::Mac.eval(i32::MAX, i32::MAX, i32::MAX);
    }

    #[test]
    fn primitive_op_counts() {
        assert_eq!(Op::Mac.primitive_ops(), 2);
        assert_eq!(Op::Add.primitive_ops(), 1);
        assert_eq!(Op::Nop.primitive_ops(), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(Op::Shl.eval(0, 1, 33), 2);
        assert_eq!(Op::Shr.eval(0, -8, 1), -4);
    }

    #[test]
    fn compare_ops() {
        assert_eq!(Op::CmpEq.eval(0, 3, 3), 1);
        assert_eq!(Op::CmpLt.eval(0, -1, 0), 1);
        assert_eq!(Op::CmpLt.eval(0, 1, 0), 0);
    }

    #[test]
    fn relu_via_max() {
        assert_eq!(Op::Max.eval(0, -5, 0), 0);
        assert_eq!(Op::Max.eval(0, 5, 0), 5);
    }
}
