//! Global register file and Weight Buffer (§3.2 "Other Changes").
//!
//! For DWC with stride 1 all PEs consume the *same* weight element each
//! cycle, so NP-CGRA broadcasts it from a small single-port global register
//! file (GRF), indexed by the controller through the per-cycle global
//! configuration bits. The GRF is filled either by DMA or from a small
//! dedicated Weight Buffer that can hold several channels' worth of kernels
//! (Table 4: 1152 bytes = 64 copies of a 3×3×16-bit kernel, padded to 18
//! B each).

use npcgra_nn::Word;

/// Default GRF capacity in words: one K×K kernel up to K = 4 (a 3×3 kernel
/// needs 9 entries; the 4-bit configuration index addresses up to 16).
pub const GRF_WORDS: usize = 16;

/// The broadcast global register file.
///
/// # Example
///
/// ```
/// use npcgra_arch::GlobalRegFile;
///
/// let mut grf = GlobalRegFile::new();
/// grf.load(&[1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();
/// assert_eq!(grf.read(4), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalRegFile {
    words: [Word; GRF_WORDS],
    valid: usize,
}

impl GlobalRegFile {
    /// An empty GRF.
    #[must_use]
    pub fn new() -> Self {
        GlobalRegFile {
            words: [0; GRF_WORDS],
            valid: 0,
        }
    }

    /// Load `data` starting at index 0 (a DMA or Weight-Buffer fill).
    ///
    /// # Errors
    ///
    /// Returns `Err` with the capacity if `data` does not fit.
    pub fn load(&mut self, data: &[Word]) -> Result<(), usize> {
        if data.len() > GRF_WORDS {
            return Err(GRF_WORDS);
        }
        self.words[..data.len()].copy_from_slice(data);
        self.valid = data.len();
        Ok(())
    }

    /// Broadcast-read entry `idx`, if it has been loaded.
    #[must_use]
    pub fn read(&self, idx: usize) -> Option<Word> {
        (idx < self.valid).then(|| self.words[idx])
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid
    }

    /// Whether no entries are loaded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }
}

impl Default for GlobalRegFile {
    fn default() -> Self {
        GlobalRegFile::new()
    }
}

/// The optional Weight Buffer: a staging store holding pre-loaded GRF images
/// (one per channel) so consecutive DWC channels switch kernels without a
/// DMA round trip.
///
/// Table 4 sizes it at 1152 bytes = 64 entries × 144 bits (one 3×3 16-bit
/// kernel each).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightBuffer {
    entries: Vec<Vec<Word>>,
    capacity: usize,
}

impl WeightBuffer {
    /// A buffer holding up to `capacity` GRF images (Table 4 uses 64).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        WeightBuffer {
            entries: Vec::new(),
            capacity,
        }
    }

    /// The Table 4 configuration: 64 kernel slots.
    #[must_use]
    pub fn table4() -> Self {
        WeightBuffer::new(64)
    }

    /// Stage one kernel image. Returns its slot index.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the capacity when full or when the image exceeds
    /// [`GRF_WORDS`].
    pub fn stage(&mut self, kernel: &[Word]) -> Result<usize, usize> {
        if self.entries.len() >= self.capacity {
            return Err(self.capacity);
        }
        if kernel.len() > GRF_WORDS {
            return Err(GRF_WORDS);
        }
        self.entries.push(kernel.to_vec());
        Ok(self.entries.len() - 1)
    }

    /// Copy slot `slot` into the GRF (the per-channel switch).
    ///
    /// # Errors
    ///
    /// Returns `Err` with the number of staged entries if `slot` is invalid.
    pub fn fill_grf(&self, slot: usize, grf: &mut GlobalRegFile) -> Result<(), usize> {
        let kernel = self.entries.get(slot).ok_or(self.entries.len())?;
        grf.load(kernel).expect("staged kernels fit the GRF by construction");
        Ok(())
    }

    /// Number of staged kernels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Size in bytes at a 16-bit word, padded to whole 64-bit rows as in
    /// Table 4 (144 bits → 3 rows of 64 bits = 24 B... the paper's 1152 B /
    /// 64 entries = 18 B per 3×3 kernel, i.e. exactly 9 words).
    #[must_use]
    pub fn capacity_bytes(&self, kernel_words: usize) -> usize {
        self.capacity * kernel_words * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grf_load_and_read() {
        let mut g = GlobalRegFile::new();
        g.load(&[10, 20, 30]).unwrap();
        assert_eq!(g.read(0), Some(10));
        assert_eq!(g.read(2), Some(30));
        assert_eq!(g.read(3), None);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn grf_rejects_oversize() {
        let mut g = GlobalRegFile::new();
        assert_eq!(g.load(&[0; 17]), Err(16));
    }

    #[test]
    fn grf_reload_shrinks_valid_range() {
        let mut g = GlobalRegFile::new();
        g.load(&[1; 9]).unwrap();
        g.load(&[2; 4]).unwrap();
        assert_eq!(g.read(3), Some(2));
        assert_eq!(g.read(4), None);
    }

    #[test]
    fn weight_buffer_stages_and_fills() {
        let mut wb = WeightBuffer::new(2);
        let s0 = wb.stage(&[1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();
        let s1 = wb.stage(&[9, 8, 7, 6, 5, 4, 3, 2, 1]).unwrap();
        assert!(wb.stage(&[0]).is_err(), "capacity 2");
        let mut grf = GlobalRegFile::new();
        wb.fill_grf(s1, &mut grf).unwrap();
        assert_eq!(grf.read(0), Some(9));
        wb.fill_grf(s0, &mut grf).unwrap();
        assert_eq!(grf.read(0), Some(1));
    }

    #[test]
    fn weight_buffer_bad_slot() {
        let wb = WeightBuffer::table4();
        let mut grf = GlobalRegFile::new();
        assert_eq!(wb.fill_grf(0, &mut grf), Err(0));
    }

    #[test]
    fn table4_capacity_bytes() {
        // 64 slots × 9 words × 2 B = 1152 B, matching Table 4.
        let wb = WeightBuffer::table4();
        assert_eq!(wb.capacity_bytes(9), 1152);
    }
}
