//! Property-based tests for the workload substrate invariants.

use npcgra_nn::{im2col, reference, ConvLayer, Matrix, Tensor};
use proptest::prelude::*;

/// Strategy for small-but-varied depthwise layer geometries.
fn dwc_layer() -> impl Strategy<Value = ConvLayer> {
    (1usize..4, 1usize..4, 1usize..3, 0usize..2, 4usize..10, 4usize..10)
        .prop_filter_map("valid geometry", |(c, k, s, pad, h, w)| {
            ConvLayer::new("p", npcgra_nn::ConvKind::Depthwise, c, c, h, w, k, s, pad, c).ok()
        })
}

fn std_layer() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..4,
        1usize..5,
        1usize..4,
        1usize..3,
        0usize..2,
        4usize..9,
        4usize..9,
        1usize..3,
    )
        .prop_filter_map("valid geometry", |(ci, co, k, s, pad, h, w, g)| {
            let (ci, co) = (ci * g, co * g);
            ConvLayer::new("p", npcgra_nn::ConvKind::Standard, ci, co, h, w, k, s, pad, g).ok()
        })
}

proptest! {
    /// im2col × weight-matrix equals the direct reference for any standard layer.
    #[test]
    fn im2col_equals_reference(layer in std_layer(), seed in 0u64..1000) {
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
        let w = layer.random_weights(seed.wrapping_add(1));
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (oh, ow) = (layer.out_h(), layer.out_w());
        let cout_per_g = layer.out_channels() / layer.groups();
        for g in 0..layer.groups() {
            let x = im2col::im2col_matrix(&layer, &ifm, g).unwrap();
            let wm = im2col::weight_matrix(&layer, &w, g).unwrap();
            let y = x.matmul(&wm);
            for oc in 0..cout_per_g {
                for p in 0..oh*ow {
                    prop_assert_eq!(y.get(p, oc), golden.get(g*cout_per_g + oc, p/ow, p%ow));
                }
            }
        }
    }

    /// Depthwise conv output only depends on its own channel.
    #[test]
    fn dwc_channels_independent(layer in dwc_layer(), seed in 0u64..1000) {
        prop_assume!(layer.in_channels() >= 2);
        let mut ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
        let w = layer.random_weights(seed ^ 0xabcd);
        let base = reference::run_layer(&layer, &ifm, &w).unwrap();
        ifm.set(1, 0, 0, ifm.get(1, 0, 0).wrapping_add(1));
        let out = reference::run_layer(&layer, &ifm, &w).unwrap();
        for y in 0..layer.out_h() {
            for x in 0..layer.out_w() {
                prop_assert_eq!(base.get(0, y, x), out.get(0, y, x));
            }
        }
    }

    /// Pre-padding the IFM and running with pad=0 matches running padded.
    #[test]
    fn prepadded_ifm_equivalent(c in 1usize..3, h in 4usize..8, w in 4usize..8, seed in 0u64..1000) {
        let padded_layer = ConvLayer::depthwise("p", c, h, w, 3, 1, 1);
        let ifm = Tensor::random(c, h, w, seed);
        let weights = padded_layer.random_weights(seed + 7);
        let a = reference::run_layer(&padded_layer, &ifm, &weights).unwrap();
        let pre = ifm.zero_padded(1);
        let unpadded_layer = ConvLayer::depthwise("q", c, h + 2, w + 2, 3, 1, 0);
        let b = reference::run_layer(&unpadded_layer, &pre, &weights).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Matmul is associative with the identity and distributes over known shapes.
    #[test]
    fn matmul_dims(r in 1usize..6, k in 1usize..6, c in 1usize..6, seed in 0u64..100) {
        let a = Matrix::random(r, k, seed);
        let b = Matrix::random(k, c, seed + 1);
        let y = a.matmul(&b);
        prop_assert_eq!((y.rows(), y.cols()), (r, c));
        // (A B)^T == B^T A^T with wrapping arithmetic.
        let lhs = y.transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        prop_assert_eq!(lhs, rhs);
    }

    /// MAC count formula consistency: macs == ofm_elems * per-output work.
    #[test]
    fn macs_consistent(layer in std_layer()) {
        let per_out = (layer.k() * layer.k() * layer.in_channels() / layer.groups()) as u64;
        prop_assert_eq!(layer.macs(), layer.ofm_elems() * per_out);
    }
}
