//! Neural-network workload substrate for the NP-CGRA reproduction.
//!
//! The NP-CGRA paper (DATE 2021) evaluates its CGRA extensions on
//! depthwise-separable convolution (DSC) layers from MobileNet V1/V2 and on
//! the standard (3-D) convolution layers of AlexNet. This crate provides
//! everything those experiments need on the *workload* side:
//!
//! - [`Tensor`] / [`Matrix`]: dense `i16` feature-map and weight containers
//!   in channel-major (CHW) layout, the layout assumed by the paper's data
//!   placement figures (Figs. 9–11).
//! - [`ConvLayer`]: a convolution layer descriptor (depthwise, pointwise or
//!   standard), with derived output geometry, MAC counts and data volumes.
//! - [`reference`]: golden software implementations of DWC, PWC and standard
//!   convolution used to validate the cycle-accurate simulator functionally.
//! - [`im2col`]: the im2col lowering the paper uses to run standard
//!   convolution (and the "Matmul DWC" comparison point) through the PWC
//!   mapping, together with the host-processor cost model for it.
//! - [`models`]: layer tables for MobileNet V1 (with width multiplier and
//!   resolution), MobileNet V2 and AlexNet.
//!
//! # Example
//!
//! ```
//! use npcgra_nn::{ConvLayer, ConvKind, Tensor, reference};
//!
//! // The first depthwise layer of MobileNet V1 (stride 1).
//! let layer = ConvLayer::depthwise("dw1", 32, 112, 112, 3, 1, 1);
//! assert_eq!(layer.out_h(), 112);
//! assert_eq!(layer.macs(), 9 * 32 * 112 * 112);
//!
//! let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 1);
//! let w = layer.random_weights(2);
//! let ofm = reference::run_layer(&layer, &ifm, &w).unwrap();
//! assert_eq!(ofm.shape(), (32, 112, 112));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod classifier;
pub mod im2col;
pub mod layer;
pub mod models;
pub mod reference;
pub mod tensor;

pub use activation::Activation;
pub use im2col::{im2col_matrix, Im2colCostModel};
pub use layer::{ConvKind, ConvLayer, LayerShapeError};
pub use models::{alexnet, mobilenet_v1, mobilenet_v2, mobilenet_v3_small, Model};
pub use tensor::{Matrix, Tensor};

/// The data word type of the NP-CGRA datapath (16-bit, Table 4).
pub type Word = i16;

/// The accumulator type used by MAC chains.
///
/// The paper's dual-mode MAC accumulates into the PE output register; we use
/// a 32-bit accumulator and truncate to [`Word`] on write-back, which is the
/// conventional fixed-point choice for a 16-bit datapath.
pub type Acc = i32;

/// Truncate an accumulator to the 16-bit datapath width (wrapping).
///
/// Both the golden reference and the simulator use this so functional
/// comparison is exact.
#[inline]
#[must_use]
pub fn truncate(acc: Acc) -> Word {
    acc as Word
}
