//! Golden reference convolutions.
//!
//! These straightforward nested-loop implementations define the functional
//! contract that the cycle-accurate NP-CGRA simulator must match exactly
//! (bit-for-bit, including 16-bit wrapping truncation of the 32-bit
//! accumulator).

use crate::layer::{ConvKind, ConvLayer, LayerShapeError};
use crate::tensor::{Matrix, Tensor};
use crate::{truncate, Acc};

/// Run any layer against its golden reference.
///
/// Weight tensor shapes follow [`ConvLayer::random_weights`]:
/// DWC `(N_i, K, K)`, PWC `(N_o, 1, N_i)`, standard
/// `(N_o, K, K*N_i/groups)`.
///
/// # Errors
///
/// Returns [`LayerShapeError`] if `ifm` or `weights` do not match the layer
/// geometry.
pub fn run_layer(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor) -> Result<Tensor, LayerShapeError> {
    check_ifm(layer, ifm)?;
    check_weights(layer, weights)?;
    Ok(match layer.kind() {
        ConvKind::Depthwise => depthwise(layer, ifm, weights),
        ConvKind::Pointwise => pointwise(layer, ifm, weights),
        ConvKind::Standard => standard(layer, ifm, weights),
    })
}

fn check_ifm(layer: &ConvLayer, ifm: &Tensor) -> Result<(), LayerShapeError> {
    if ifm.shape() != (layer.in_channels(), layer.in_h(), layer.in_w()) {
        return Err(LayerShapeError::new(format!(
            "ifm shape {:?} does not match layer input {}x{}x{}",
            ifm.shape(),
            layer.in_channels(),
            layer.in_h(),
            layer.in_w()
        )));
    }
    Ok(())
}

fn check_weights(layer: &ConvLayer, w: &Tensor) -> Result<(), LayerShapeError> {
    let expect = match layer.kind() {
        ConvKind::Depthwise => (layer.in_channels(), layer.k(), layer.k()),
        ConvKind::Pointwise => (layer.out_channels(), 1, layer.in_channels()),
        ConvKind::Standard => (
            layer.out_channels(),
            layer.k(),
            layer.k() * layer.in_channels() / layer.groups(),
        ),
    };
    if w.shape() != expect {
        return Err(LayerShapeError::new(format!(
            "weight shape {:?} does not match expected {:?}",
            w.shape(),
            expect
        )));
    }
    Ok(())
}

/// Depthwise convolution: each channel filtered independently.
fn depthwise(layer: &ConvLayer, ifm: &Tensor, w: &Tensor) -> Tensor {
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let (k, s, pad) = (layer.k(), layer.s(), layer.pad() as isize);
    Tensor::from_fn(layer.out_channels(), oh, ow, |c, oy, ox| {
        let mut acc: Acc = 0;
        for ky in 0..k {
            for kx in 0..k {
                let iy = (oy * s + ky) as isize - pad;
                let ix = (ox * s + kx) as isize - pad;
                let x = ifm.get_padded(c, iy, ix);
                let wv = w.get(c, ky, kx);
                acc = acc.wrapping_add(Acc::from(x).wrapping_mul(Acc::from(wv)));
            }
        }
        truncate(layer.activation().apply_acc(acc))
    })
}

/// Pointwise convolution: per-pixel matmul over channels.
fn pointwise(layer: &ConvLayer, ifm: &Tensor, w: &Tensor) -> Tensor {
    let (h, wd) = (layer.in_h(), layer.in_w());
    Tensor::from_fn(layer.out_channels(), h, wd, |o, y, x| {
        let mut acc: Acc = 0;
        for i in 0..layer.in_channels() {
            acc = acc.wrapping_add(Acc::from(ifm.get(i, y, x)).wrapping_mul(Acc::from(w.get(o, 0, i))));
        }
        truncate(layer.activation().apply_acc(acc))
    })
}

/// Standard convolution with optional channel groups (AlexNet conv2/4/5).
fn standard(layer: &ConvLayer, ifm: &Tensor, w: &Tensor) -> Tensor {
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let (k, s, pad) = (layer.k(), layer.s(), layer.pad() as isize);
    let g = layer.groups();
    let cin_per_g = layer.in_channels() / g;
    let cout_per_g = layer.out_channels() / g;
    Tensor::from_fn(layer.out_channels(), oh, ow, |o, oy, ox| {
        let grp = o / cout_per_g;
        let mut acc: Acc = 0;
        for ci in 0..cin_per_g {
            let c = grp * cin_per_g + ci;
            for ky in 0..k {
                for kx in 0..k {
                    let iy = (oy * s + ky) as isize - pad;
                    let ix = (ox * s + kx) as isize - pad;
                    let x = ifm.get_padded(c, iy, ix);
                    // Per-output-channel kernel row `ky`, packed (kx, ci).
                    let wv = w.get(o, ky, kx * cin_per_g + ci);
                    acc = acc.wrapping_add(Acc::from(x).wrapping_mul(Acc::from(wv)));
                }
            }
        }
        truncate(layer.activation().apply_acc(acc))
    })
}

/// PWC expressed explicitly as the matrix product the paper maps to the
/// array: the `(N_h·N_w) × N_i` pixel matrix times the `N_i × N_o` weight
/// matrix. Used to cross-check the tensor-level reference and as the golden
/// model for raw matmul mapping tests.
///
/// # Errors
///
/// Returns [`LayerShapeError`] on shape mismatch (see [`run_layer`]).
pub fn pointwise_as_matmul(layer: &ConvLayer, ifm: &Tensor, w: &Tensor) -> Result<Matrix, LayerShapeError> {
    if layer.kind() != ConvKind::Pointwise {
        return Err(LayerShapeError::new("pointwise_as_matmul requires a pointwise layer"));
    }
    check_ifm(layer, ifm)?;
    check_weights(layer, w)?;
    let pixels = layer.in_h() * layer.in_w();
    let x = Matrix::from_fn(pixels, layer.in_channels(), |p, i| {
        ifm.get(i, p / layer.in_w(), p % layer.in_w())
    });
    let wm = Matrix::from_fn(layer.in_channels(), layer.out_channels(), |i, o| w.get(o, 0, i));
    Ok(x.matmul(&wm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ConvLayer;

    #[test]
    fn depthwise_identity_kernel_passes_through() {
        // K=1 S=1: output == input * w.
        let layer = ConvLayer::depthwise("dw", 3, 5, 5, 1, 1, 0);
        let ifm = Tensor::random(3, 5, 5, 1);
        let w = Tensor::from_fn(3, 1, 1, |_, _, _| 1);
        let ofm = run_layer(&layer, &ifm, &w).unwrap();
        assert_eq!(ofm, ifm);
    }

    #[test]
    fn depthwise_all_ones_sums_window() {
        let layer = ConvLayer::depthwise("dw", 1, 4, 4, 3, 1, 0);
        let ifm = Tensor::from_fn(1, 4, 4, |_, _, _| 1);
        let w = Tensor::from_fn(1, 3, 3, |_, _, _| 1);
        let ofm = run_layer(&layer, &ifm, &w).unwrap();
        assert_eq!(ofm.shape(), (1, 2, 2));
        assert!(ofm.as_slice().iter().all(|&v| v == 9));
    }

    #[test]
    fn depthwise_padding_zeroes_border_contributions() {
        let layer = ConvLayer::depthwise("dw", 1, 3, 3, 3, 1, 1);
        let ifm = Tensor::from_fn(1, 3, 3, |_, _, _| 1);
        let w = Tensor::from_fn(1, 3, 3, |_, _, _| 1);
        let ofm = run_layer(&layer, &ifm, &w).unwrap();
        // Corner output sees only a 2x2 live window.
        assert_eq!(ofm.get(0, 0, 0), 4);
        assert_eq!(ofm.get(0, 1, 1), 9);
        assert_eq!(ofm.get(0, 0, 1), 6);
    }

    #[test]
    fn depthwise_stride2_subsamples() {
        let layer = ConvLayer::depthwise("dw", 1, 5, 5, 1, 2, 0);
        let ifm = Tensor::from_fn(1, 5, 5, |_, y, x| (y * 5 + x) as i16);
        let w = Tensor::from_fn(1, 1, 1, |_, _, _| 1);
        let ofm = run_layer(&layer, &ifm, &w).unwrap();
        assert_eq!(ofm.shape(), (1, 3, 3));
        assert_eq!(ofm.get(0, 1, 1), 12);
        assert_eq!(ofm.get(0, 2, 2), 24);
    }

    #[test]
    fn pointwise_matches_matmul_view() {
        let layer = ConvLayer::pointwise("pw", 7, 5, 6, 4);
        let ifm = Tensor::random(7, 6, 4, 11);
        let w = layer.random_weights(12);
        let ofm = run_layer(&layer, &ifm, &w).unwrap();
        let mm = pointwise_as_matmul(&layer, &ifm, &w).unwrap();
        for o in 0..5 {
            for y in 0..6 {
                for x in 0..4 {
                    assert_eq!(ofm.get(o, y, x), mm.get(y * 4 + x, o));
                }
            }
        }
    }

    #[test]
    fn standard_reduces_to_pointwise_when_k1() {
        let pw = ConvLayer::pointwise("pw", 6, 4, 5, 5);
        let st = ConvLayer::standard("st", 6, 4, 5, 5, 1, 1, 0, 1);
        let ifm = Tensor::random(6, 5, 5, 3);
        let w = pw.random_weights(4); // (4,1,6) matches standard's (N_o,K,K*N_i)
        let a = run_layer(&pw, &ifm, &w).unwrap();
        let b = run_layer(&st, &ifm, &w).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn standard_grouped_blocks_are_independent() {
        let layer = ConvLayer::standard("g", 4, 4, 4, 4, 3, 1, 1, 2);
        let mut ifm = Tensor::random(4, 4, 4, 5);
        let w = layer.random_weights(6);
        let base = run_layer(&layer, &ifm, &w).unwrap();
        // Perturb a channel in group 1; group-0 outputs must not change.
        ifm.set(3, 0, 0, ifm.get(3, 0, 0).wrapping_add(17));
        let out = run_layer(&layer, &ifm, &w).unwrap();
        for o in 0..2 {
            for y in 0..4 {
                for x in 0..4 {
                    assert_eq!(base.get(o, y, x), out.get(o, y, x));
                }
            }
        }
    }

    #[test]
    fn mismatched_ifm_rejected() {
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let ifm = Tensor::zeros(3, 4, 4);
        let w = layer.random_weights(0);
        assert!(run_layer(&layer, &ifm, &w).is_err());
    }

    #[test]
    fn mismatched_weights_rejected() {
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let ifm = Tensor::zeros(4, 4, 4);
        let w = Tensor::zeros(4, 2, 4);
        assert!(run_layer(&layer, &ifm, &w).is_err());
    }

    #[test]
    fn linearity_in_weights() {
        // conv(x, 2w) == 2*conv(x, w) for small values (no wraparound).
        let layer = ConvLayer::depthwise("dw", 2, 6, 6, 3, 1, 1);
        let ifm = Tensor::random(2, 6, 6, 21);
        let w1 = Tensor::from_fn(2, 3, 3, |c, y, x| ((c + y + x) % 3) as i16);
        let w2 = Tensor::from_fn(2, 3, 3, |c, y, x| 2 * (((c + y + x) % 3) as i16));
        let a = run_layer(&layer, &ifm, &w1).unwrap();
        let b = run_layer(&layer, &ifm, &w2).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(2 * x, *y);
        }
    }
}
