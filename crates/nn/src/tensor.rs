//! Dense `i16` tensor and matrix containers.
//!
//! Feature maps are stored channel-major (CHW): element `(c, y, x)` lives at
//! `c * h * w + y * w + x`. This is the layout the paper's external-memory
//! figures assume (one 2-D image per channel, processed one channel at a
//! time for DWC, one pixel-vector per cycle for PWC).

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Word;

/// A dense 3-D tensor of [`Word`]s in CHW layout.
///
/// # Example
///
/// ```
/// use npcgra_nn::Tensor;
///
/// let mut t = Tensor::zeros(2, 3, 4);
/// t.set(1, 2, 3, 42);
/// assert_eq!(t.get(1, 2, 3), 42);
/// assert_eq!(t.shape(), (2, 3, 4));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tensor {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<Word>,
}

impl Tensor {
    /// Create a zero-filled tensor with `c` channels of `h`×`w` elements.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        assert!(c > 0 && h > 0 && w > 0, "tensor dimensions must be nonzero");
        Tensor {
            c,
            h,
            w,
            data: vec![0; c * h * w],
        }
    }

    /// Create a tensor filled with deterministic pseudo-random values.
    ///
    /// Values are drawn from a small range (−64..=64) so that long MAC
    /// chains exercise sign handling without saturating the 32-bit
    /// accumulator in realistic layer sizes.
    #[must_use]
    pub fn random(c: usize, h: usize, w: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tensor::zeros(c, h, w);
        for v in &mut t.data {
            *v = rng.gen_range(-64..=64);
        }
        t
    }

    /// Build a tensor from a closure over `(c, y, x)`.
    #[must_use]
    pub fn from_fn(c: usize, h: usize, w: usize, mut f: impl FnMut(usize, usize, usize) -> Word) -> Self {
        let mut t = Tensor::zeros(c, h, w);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    t.set(ci, y, x, f(ci, y, x));
                }
            }
        }
        t
    }

    /// `(channels, height, width)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Height in elements.
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width in elements.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true: dims are nonzero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat CHW index of `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    #[must_use]
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        assert!(
            c < self.c && y < self.h && x < self.w,
            "tensor index ({c},{y},{x}) out of bounds for {:?}",
            self.shape()
        );
        (c * self.h + y) * self.w + x
    }

    /// Read element `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, c: usize, y: usize, x: usize) -> Word {
        self.data[self.index(c, y, x)]
    }

    /// Read element `(c, y, x)` treating out-of-bounds spatial coordinates as
    /// zero padding. `y`/`x` are signed for this reason.
    #[inline]
    #[must_use]
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> Word {
        if y < 0 || x < 0 || y as usize >= self.h || x as usize >= self.w {
            0
        } else {
            self.get(c, y as usize, x as usize)
        }
    }

    /// Write element `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: Word) {
        let i = self.index(c, y, x);
        self.data[i] = v;
    }

    /// Borrow the flat CHW data.
    #[must_use]
    pub fn as_slice(&self) -> &[Word] {
        &self.data
    }

    /// Mutably borrow the flat CHW data.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [Word] {
        &mut self.data
    }

    /// Extract one channel as an `h`×`w` [`Matrix`].
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn channel(&self, c: usize) -> Matrix {
        assert!(c < self.c, "channel {c} out of bounds for {} channels", self.c);
        let start = c * self.h * self.w;
        Matrix::from_vec(self.h, self.w, self.data[start..start + self.h * self.w].to_vec())
    }

    /// Return a copy with `pad` rows/columns of zeros added on every spatial
    /// side. Used to pre-pad IFMs in external memory so the CGRA address
    /// generators never have to special-case borders.
    #[must_use]
    pub fn zero_padded(&self, pad: usize) -> Tensor {
        if pad == 0 {
            return self.clone();
        }
        let mut out = Tensor::zeros(self.c, self.h + 2 * pad, self.w + 2 * pad);
        for c in 0..self.c {
            for y in 0..self.h {
                for x in 0..self.w {
                    out.set(c, y + pad, x + pad, self.get(c, y, x));
                }
            }
        }
        out
    }

    /// Size in bytes at the given word width in bytes.
    #[must_use]
    pub fn bytes(&self, word_bytes: usize) -> usize {
        self.len() * word_bytes
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{}x{})", self.c, self.h, self.w)
    }
}

/// A dense row-major 2-D matrix of [`Word`]s.
///
/// Used for PWC operands (IFM pixel-matrix × weight matrix) and for im2col
/// output.
///
/// # Example
///
/// ```
/// use npcgra_nn::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i16);
/// assert_eq!(m.get(1, 2), 5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Word>,
}

impl Matrix {
    /// Create a zero-filled `rows`×`cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Create a matrix from an existing row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Word>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build a matrix from a closure over `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Word) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Create a matrix filled with deterministic pseudo-random values.
    #[must_use]
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(-64..=64);
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> Word {
        assert!(r < self.rows && c < self.cols, "matrix index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Write element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Word) {
        assert!(r < self.rows && c < self.cols, "matrix index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow the flat row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[Word] {
        &self.data
    }

    /// Borrow one row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[Word] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Return the transpose. The paper notes weight matrices may need a
    /// transpose/reshape before being laid out in V-MEM; weights are constant
    /// so this happens offline.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Dense matrix product with wrapping 16-bit truncation of the 32-bit
    /// accumulator, matching the datapath semantics.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        Matrix::from_fn(self.rows, rhs.cols, |r, c| {
            let mut acc: crate::Acc = 0;
            for k in 0..self.cols {
                acc = acc.wrapping_add(crate::Acc::from(self.get(r, k)).wrapping_mul(crate::Acc::from(rhs.get(k, c))));
            }
            crate::truncate(acc)
        })
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_roundtrip() {
        let mut t = Tensor::zeros(3, 4, 5);
        t.set(2, 3, 4, -7);
        assert_eq!(t.get(2, 3, 4), -7);
        assert_eq!(t.len(), 60);
        assert!(!t.is_empty());
    }

    #[test]
    fn tensor_index_is_chw() {
        let t = Tensor::from_fn(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as Word);
        assert_eq!(t.as_slice()[0], 0);
        assert_eq!(t.as_slice()[4], 10); // (0,1,0)
        assert_eq!(t.as_slice()[12], 100); // (1,0,0)
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tensor_oob_panics() {
        let t = Tensor::zeros(1, 1, 1);
        let _ = t.get(0, 0, 1);
    }

    #[test]
    fn padded_reads_are_zero_outside() {
        let t = Tensor::from_fn(1, 2, 2, |_, _, _| 5);
        assert_eq!(t.get_padded(0, -1, 0), 0);
        assert_eq!(t.get_padded(0, 0, 2), 0);
        assert_eq!(t.get_padded(0, 1, 1), 5);
    }

    #[test]
    fn zero_padded_embeds_original() {
        let t = Tensor::from_fn(2, 2, 2, |c, y, x| (c + y + x) as Word + 1);
        let p = t.zero_padded(1);
        assert_eq!(p.shape(), (2, 4, 4));
        assert_eq!(p.get(0, 0, 0), 0);
        assert_eq!(p.get(1, 1, 1), t.get(1, 0, 0));
        assert_eq!(p.get(1, 2, 2), t.get(1, 1, 1));
    }

    #[test]
    fn channel_extracts_matrix() {
        let t = Tensor::from_fn(2, 2, 3, |c, y, x| (c * 50 + y * 3 + x) as Word);
        let m = t.channel(1);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 55);
    }

    #[test]
    fn tensor_random_is_deterministic() {
        assert_eq!(Tensor::random(2, 3, 4, 9), Tensor::random(2, 3, 4, 9));
        assert_ne!(Tensor::random(2, 3, 4, 9), Tensor::random(2, 3, 4, 10));
    }

    #[test]
    fn matrix_transpose_involution() {
        let m = Matrix::random(4, 7, 3);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::random(3, 3, 1);
        let id = Matrix::from_fn(3, 3, |r, c| i16::from(r == c));
        assert_eq!(m.matmul(&id), m);
        assert_eq!(id.matmul(&m), m);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let b = Matrix::from_vec(2, 2, vec![5, 6, 7, 8]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn bytes_scales_with_word_width() {
        let t = Tensor::zeros(1, 4, 4);
        assert_eq!(t.bytes(2), 32);
        assert_eq!(t.bytes(4), 64);
    }
}
