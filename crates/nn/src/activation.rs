//! Fused activation functions.
//!
//! The paper's introduction motivates CGRAs over hard DPUs precisely with
//! this kind of flexibility: "supporting new activation functions (e.g.,
//! leaky ReLU)". We model activations as a per-layer post-op. On NP-CGRA a
//! ReLU costs *zero extra cycles*: the pipeline-bubble cycle between the
//! MAC phase and the store phase executes `max(acc, 0)` in place on every
//! PE. Leaky ReLU (with a power-of-two slope, the common hardware choice)
//! adds one more cycle per tile: a conditional arithmetic-shift select.

use crate::{truncate, Acc, Word};

/// A per-layer activation applied to every output element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// No activation (linear output).
    #[default]
    None,
    /// `max(x, 0)`.
    Relu,
    /// `x >= 0 ? x : x >> shift` — leaky ReLU with slope `2^-shift`
    /// (arithmetic shift, the hardware-friendly form of the paper's leaky
    /// ReLU citation).
    LeakyRelu {
        /// Negative-slope shift amount (`1..=15`).
        shift: u8,
    },
}

impl Activation {
    /// Apply to an accumulator value (before 16-bit truncation).
    #[must_use]
    pub fn apply_acc(self, x: Acc) -> Acc {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0),
            Activation::LeakyRelu { shift } => {
                if x >= 0 {
                    x
                } else {
                    x >> shift
                }
            }
        }
    }

    /// Apply to a datapath word.
    #[must_use]
    pub fn apply(self, x: Word) -> Word {
        truncate(self.apply_acc(Acc::from(x)))
    }

    /// Extra tile cycles the activation costs on NP-CGRA: ReLU reuses the
    /// pipeline bubble (0); leaky ReLU runs `max(x, x >> shift)` as a
    /// save / shift / max sequence, two cycles beyond the bubble.
    #[must_use]
    pub fn extra_tile_cycles(self) -> u64 {
        match self {
            Activation::None | Activation::Relu => 0,
            Activation::LeakyRelu { .. } => 2,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Activation::None => f.write_str("linear"),
            Activation::Relu => f.write_str("relu"),
            Activation::LeakyRelu { shift } => write!(f, "leaky-relu(2^-{shift})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-5), 0);
        assert_eq!(Activation::Relu.apply(7), 7);
    }

    #[test]
    fn leaky_relu_shifts_negatives() {
        let a = Activation::LeakyRelu { shift: 2 };
        assert_eq!(a.apply(8), 8);
        assert_eq!(a.apply(-8), -2);
        // Arithmetic shift rounds toward negative infinity.
        assert_eq!(a.apply(-7), -2);
    }

    #[test]
    fn none_is_identity() {
        for x in [-100i16, 0, 100] {
            assert_eq!(Activation::None.apply(x), x);
        }
    }

    #[test]
    fn cycle_costs() {
        assert_eq!(Activation::Relu.extra_tile_cycles(), 0);
        assert_eq!(Activation::LeakyRelu { shift: 3 }.extra_tile_cycles(), 2);
    }

    #[test]
    fn leaky_relu_is_max_of_x_and_shifted_x() {
        // The hardware identity the mapping epilogue uses.
        let a = Activation::LeakyRelu { shift: 3 };
        for x in [-1000i32, -9, -1, 0, 5, 1000] {
            assert_eq!(a.apply_acc(x), x.max(x >> 3));
        }
    }

    #[test]
    fn acc_level_application_before_truncation() {
        // The activation sees the full 32-bit accumulator: a large positive
        // value is clamped at the acc level, then truncated.
        let big: Acc = 70_000;
        assert_eq!(Activation::Relu.apply_acc(big), big);
        assert_eq!(Activation::Relu.apply_acc(-big), 0);
    }
}
