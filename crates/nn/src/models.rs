//! Model layer tables: MobileNet V1, MobileNet V2 and AlexNet.
//!
//! These reproduce the workloads of the paper's evaluation:
//!
//! - Table 5 uses the first three DSC layers of MobileNet V1
//!   (width multiplier 1, resolution 224).
//! - Table 1 uses seven DWC layers of MobileNet V2, one from each
//!   bottleneck stage.
//! - Table 6 uses the full DSC stacks of MobileNet V1/V2 and the AlexNet
//!   convolution layers (Eyeriss v2's MobileNet numbers are for width
//!   multiplier 0.5, resolution 128, so NP-CGRA is evaluated on the same
//!   configuration for the ADP comparison).

use crate::layer::{ConvKind, ConvLayer};

/// A named sequence of convolution layers.
///
/// # Example
///
/// ```
/// use npcgra_nn::models::mobilenet_v1;
///
/// let m = mobilenet_v1(1.0, 224);
/// assert_eq!(m.dsc_layers().count(), 26); // 13 DW + 13 PW pairs
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    name: String,
    layers: Vec<ConvLayer>,
}

impl Model {
    /// Build a model from a layer list.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<ConvLayer>) -> Self {
        Model {
            name: name.into(),
            layers,
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers, in execution order.
    #[must_use]
    pub fn layers(&self) -> &[ConvLayer] {
        &self.layers
    }

    /// Iterator over the DSC layers only (depthwise + pointwise), the subset
    /// the paper's "DSC runtime" rows measure.
    pub fn dsc_layers(&self) -> impl Iterator<Item = &ConvLayer> {
        self.layers
            .iter()
            .filter(|l| matches!(l.kind(), ConvKind::Depthwise | ConvKind::Pointwise))
    }

    /// Iterator over standard-convolution layers only (AlexNet "conv only").
    pub fn conv_layers(&self) -> impl Iterator<Item = &ConvLayer> {
        self.layers.iter().filter(|l| l.kind() == ConvKind::Standard)
    }

    /// Total MACs over all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::macs).sum()
    }

    /// Total MACs over DSC layers only.
    #[must_use]
    pub fn dsc_macs(&self) -> u64 {
        self.dsc_layers().map(ConvLayer::macs).sum()
    }
}

/// Apply the MobileNet width multiplier: channels scale by `alpha`, rounded
/// to the nearest multiple of 8 (minimum 8), the convention of the
/// MobileNet reference implementations.
#[must_use]
fn scale_channels(c: usize, alpha: f64) -> usize {
    let scaled = (c as f64 * alpha).round() as usize;
    ((scaled + 4) / 8 * 8).max(8)
}

/// MobileNet V1 with the given width multiplier and input resolution.
///
/// Returns the standard first conv followed by 13 (DW, PW) pairs. Pooling
/// and the classifier are not convolutional and are not modelled (the paper
/// measures "DSC runtime").
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 32 (MobileNet requires it so
/// every stride-2 stage halves cleanly).
#[must_use]
pub fn mobilenet_v1(alpha: f64, resolution: usize) -> Model {
    assert!(resolution.is_multiple_of(32), "MobileNet resolution must be a multiple of 32");
    let r = |d: usize| resolution / d;
    let ch = |c: usize| scale_channels(c, alpha);

    // (in_ch, out_ch_of_pw, dw_stride, input_downsample_factor)
    let blocks: [(usize, usize, usize, usize); 13] = [
        (32, 64, 1, 2),
        (64, 128, 2, 2),
        (128, 128, 1, 4),
        (128, 256, 2, 4),
        (256, 256, 1, 8),
        (256, 512, 2, 8),
        (512, 512, 1, 16),
        (512, 512, 1, 16),
        (512, 512, 1, 16),
        (512, 512, 1, 16),
        (512, 512, 1, 16),
        (512, 1024, 2, 16),
        (1024, 1024, 1, 32),
    ];

    let mut layers = vec![ConvLayer::standard("conv1", 3, ch(32), resolution, resolution, 3, 2, 1, 1)];
    for (i, &(cin, cout, s, down)) in blocks.iter().enumerate() {
        let res = r(down);
        let n = i + 1;
        layers.push(ConvLayer::depthwise(&format!("dw{n}"), ch(cin), res, res, 3, s, 1));
        let out_res = res / s;
        layers.push(ConvLayer::pointwise(&format!("pw{n}"), ch(cin), ch(cout), out_res, out_res));
    }
    Model::new(format!("MobileNetV1-{alpha}-{resolution}"), layers)
}

/// One MobileNet V2 inverted-residual bottleneck stage description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Stage {
    /// Expansion factor `t`.
    pub t: usize,
    /// Output channels of the stage.
    pub c: usize,
    /// Number of repeated blocks.
    pub n: usize,
    /// Stride of the first block of the stage.
    pub s: usize,
}

/// The seven bottleneck stages of MobileNet V2 (the V2 paper's Table 2).
pub const V2_STAGES: [V2Stage; 7] = [
    V2Stage { t: 1, c: 16, n: 1, s: 1 },
    V2Stage { t: 6, c: 24, n: 2, s: 2 },
    V2Stage { t: 6, c: 32, n: 3, s: 2 },
    V2Stage { t: 6, c: 64, n: 4, s: 2 },
    V2Stage { t: 6, c: 96, n: 3, s: 1 },
    V2Stage {
        t: 6,
        c: 160,
        n: 3,
        s: 2,
    },
    V2Stage {
        t: 6,
        c: 320,
        n: 1,
        s: 1,
    },
];

/// MobileNet V2 with the given width multiplier and input resolution.
///
/// Each bottleneck block expands with a PWC (skipped when `t = 1` and the
/// expansion would be the identity width), filters with a 3×3 DWC, and
/// projects with a PWC. The first standard conv and the final 1×1 conv
/// (modelled as a PWC) are included.
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 32.
#[must_use]
pub fn mobilenet_v2(alpha: f64, resolution: usize) -> Model {
    assert!(resolution.is_multiple_of(32), "MobileNet resolution must be a multiple of 32");
    let ch = |c: usize| scale_channels(c, alpha);

    let mut layers = vec![ConvLayer::standard("conv1", 3, ch(32), resolution, resolution, 3, 2, 1, 1)];
    let mut res = resolution / 2;
    let mut cin = ch(32);
    for (si, st) in V2_STAGES.iter().enumerate() {
        for b in 0..st.n {
            let stride = if b == 0 { st.s } else { 1 };
            let cout = ch(st.c);
            let expanded = cin * st.t;
            let tag = format!("s{}b{}", si + 1, b + 1);
            if st.t != 1 {
                layers.push(ConvLayer::pointwise(&format!("{tag}.expand"), cin, expanded, res, res));
            }
            layers.push(ConvLayer::depthwise(&format!("{tag}.dw"), expanded, res, res, 3, stride, 1));
            res /= stride;
            layers.push(ConvLayer::pointwise(&format!("{tag}.project"), expanded, cout, res, res));
            cin = cout;
        }
    }
    layers.push(ConvLayer::pointwise(
        "conv_last",
        cin,
        scale_channels(1280, alpha.max(1.0)),
        res,
        res,
    ));
    Model::new(format!("MobileNetV2-{alpha}-{resolution}"), layers)
}

/// The seven DWC layers of Table 1: the first DWC of each MobileNet V2
/// bottleneck stage (width multiplier 1, resolution 224).
#[must_use]
pub fn mobilenet_v2_table1_dwc_layers() -> Vec<ConvLayer> {
    let m = mobilenet_v2(1.0, 224);
    let mut out = Vec::with_capacity(7);
    for si in 1..=7 {
        let name = format!("s{si}b1.dw");
        let layer = m
            .layers()
            .iter()
            .find(|l| l.name() == name)
            .expect("stage DWC present")
            .clone();
        out.push(layer);
    }
    out
}

/// The first three DSC layers of MobileNet V1 (α = 1, 224) used by Table 5:
/// the first PWC, the first stride-1 DWC and the first stride-2 DWC after
/// the initial standard convolution.
#[must_use]
pub fn table5_layers() -> (ConvLayer, ConvLayer, ConvLayer) {
    let m = mobilenet_v1(1.0, 224);
    let pw = m.layers().iter().find(|l| l.name() == "pw1").expect("pw1").clone();
    let dw1 = m.layers().iter().find(|l| l.name() == "dw1").expect("dw1").clone();
    let dw2 = m.layers().iter().find(|l| l.name() == "dw2").expect("dw2").clone();
    (pw, dw1, dw2)
}

/// One MobileNet V3-Small bottleneck description (kernel, expansion width,
/// output channels, stride). Squeeze-excite and h-swish are not
/// convolutional and are omitted, as pooling/classifiers are elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V3Block {
    /// Depthwise kernel size (3 or 5).
    pub k: usize,
    /// Expansion width.
    pub exp: usize,
    /// Output channels.
    pub out: usize,
    /// Depthwise stride.
    pub s: usize,
}

/// The eleven bottlenecks of MobileNet V3-Small (conv skeleton).
pub const V3_SMALL_BLOCKS: [V3Block; 11] = [
    V3Block {
        k: 3,
        exp: 16,
        out: 16,
        s: 2,
    },
    V3Block {
        k: 3,
        exp: 72,
        out: 24,
        s: 2,
    },
    V3Block {
        k: 3,
        exp: 88,
        out: 24,
        s: 1,
    },
    V3Block {
        k: 5,
        exp: 96,
        out: 40,
        s: 2,
    },
    V3Block {
        k: 5,
        exp: 240,
        out: 40,
        s: 1,
    },
    V3Block {
        k: 5,
        exp: 240,
        out: 40,
        s: 1,
    },
    V3Block {
        k: 5,
        exp: 120,
        out: 48,
        s: 1,
    },
    V3Block {
        k: 5,
        exp: 144,
        out: 48,
        s: 1,
    },
    V3Block {
        k: 5,
        exp: 288,
        out: 96,
        s: 2,
    },
    V3Block {
        k: 5,
        exp: 576,
        out: 96,
        s: 1,
    },
    V3Block {
        k: 5,
        exp: 576,
        out: 96,
        s: 1,
    },
];

/// The convolutional skeleton of MobileNet V3-Small: first standard conv,
/// eleven expand/depthwise/project bottlenecks (including the **5x5**
/// depthwise kernels that exercise the beyond-3x3 mapping paths), and the
/// final 1x1 conv. Beyond the paper's workloads - the paper evaluates V1
/// and V2 - but exactly the "future light-weight models" its flexibility
/// argument targets.
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 32.
#[must_use]
pub fn mobilenet_v3_small(resolution: usize) -> Model {
    assert!(resolution.is_multiple_of(32), "MobileNet resolution must be a multiple of 32");
    let mut layers = vec![ConvLayer::standard("conv1", 3, 16, resolution, resolution, 3, 2, 1, 1)];
    let mut res = resolution / 2;
    let mut cin = 16;
    for (i, b) in V3_SMALL_BLOCKS.iter().enumerate() {
        let tag = format!("b{}", i + 1);
        if b.exp != cin {
            layers.push(ConvLayer::pointwise(&format!("{tag}.expand"), cin, b.exp, res, res));
        }
        layers.push(ConvLayer::depthwise(
            &format!("{tag}.dw{}x{}", b.k, b.k),
            b.exp,
            res,
            res,
            b.k,
            b.s,
            b.k / 2,
        ));
        res /= b.s;
        layers.push(ConvLayer::pointwise(&format!("{tag}.project"), b.exp, b.out, res, res));
        cin = b.out;
    }
    layers.push(ConvLayer::pointwise("conv_last", cin, 576, res, res));
    Model::new(format!("MobileNetV3Small-{resolution}"), layers)
}

/// AlexNet's five convolution layers (227×227 input; conv2/4/5 grouped ×2,
/// as in the original Krizhevsky et al. implementation).
#[must_use]
pub fn alexnet() -> Model {
    let layers = vec![
        ConvLayer::standard("conv1", 3, 96, 227, 227, 11, 4, 0, 1),
        ConvLayer::standard("conv2", 96, 256, 27, 27, 5, 1, 2, 2),
        ConvLayer::standard("conv3", 256, 384, 13, 13, 3, 1, 1, 1),
        ConvLayer::standard("conv4", 384, 384, 13, 13, 3, 1, 1, 2),
        ConvLayer::standard("conv5", 384, 256, 13, 13, 3, 1, 1, 2),
    ];
    Model::new("AlexNet", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_layer_count() {
        let m = mobilenet_v1(1.0, 224);
        assert_eq!(m.layers().len(), 1 + 26);
        assert_eq!(m.dsc_layers().count(), 26);
    }

    #[test]
    fn v1_geometry_chain_is_consistent() {
        let m = mobilenet_v1(1.0, 224);
        for pair in m.layers().windows(2) {
            assert_eq!(pair[0].out_channels(), pair[1].in_channels(), "{} -> {}", pair[0], pair[1]);
            assert_eq!(pair[0].out_h(), pair[1].in_h(), "{} -> {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn v1_final_resolution_is_7() {
        let m = mobilenet_v1(1.0, 224);
        assert_eq!(m.layers().last().unwrap().out_h(), 7);
        assert_eq!(m.layers().last().unwrap().out_channels(), 1024);
    }

    #[test]
    fn v1_total_macs_near_published() {
        // MobileNet V1 (1.0, 224) is ~569M MACs for the conv stack.
        let m = mobilenet_v1(1.0, 224);
        let total = m.total_macs() as f64;
        assert!((5.2e8..6.2e8).contains(&total), "total MACs {total}");
    }

    #[test]
    fn v1_width_multiplier_halves_channels() {
        let m = mobilenet_v1(0.5, 128);
        assert_eq!(m.layers()[0].out_channels(), 16);
        assert_eq!(m.layers().last().unwrap().out_channels(), 512);
        assert_eq!(m.layers()[1].in_h(), 64);
    }

    #[test]
    fn v2_geometry_chain_is_consistent() {
        let m = mobilenet_v2(1.0, 224);
        for pair in m.layers().windows(2) {
            assert_eq!(pair[0].out_channels(), pair[1].in_channels(), "{} -> {}", pair[0], pair[1]);
            assert_eq!(pair[0].out_h(), pair[1].in_h(), "{} -> {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn v2_total_macs_near_published() {
        // MobileNet V2 (1.0, 224) is ~300M MACs.
        let m = mobilenet_v2(1.0, 224);
        let total = m.total_macs() as f64;
        assert!((2.6e8..3.4e8).contains(&total), "total MACs {total}");
    }

    #[test]
    fn table1_layers_are_the_stage_dwcs() {
        let layers = mobilenet_v2_table1_dwc_layers();
        assert_eq!(layers.len(), 7);
        let expect: [(usize, usize, usize); 7] = [
            (32, 112, 1),
            (96, 112, 2),
            (144, 56, 2),
            (192, 28, 2),
            (384, 14, 1),
            (576, 14, 2),
            (960, 7, 1),
        ];
        for (l, (c, h, s)) in layers.iter().zip(expect) {
            assert_eq!(l.in_channels(), c, "{l}");
            assert_eq!(l.in_h(), h, "{l}");
            assert_eq!(l.s(), s, "{l}");
        }
    }

    #[test]
    fn table5_layers_match_paper_geometry() {
        let (pw, dw1, dw2) = table5_layers();
        assert_eq!((pw.in_channels(), pw.out_channels(), pw.in_h()), (32, 64, 112));
        assert_eq!((dw1.in_channels(), dw1.s(), dw1.in_h()), (32, 1, 112));
        assert_eq!((dw2.in_channels(), dw2.s(), dw2.in_h()), (64, 2, 112));
    }

    #[test]
    fn alexnet_macs_near_published() {
        // AlexNet conv layers are ~666M MACs with grouping.
        let m = alexnet();
        let total = m.total_macs() as f64;
        assert!((6.0e8..7.2e8).contains(&total), "total MACs {total}");
        assert_eq!(m.conv_layers().count(), 5);
    }

    #[test]
    fn alexnet_conv2_shapes() {
        let m = alexnet();
        let c2 = &m.layers()[1];
        assert_eq!((c2.out_h(), c2.out_w()), (27, 27));
        assert_eq!(c2.groups(), 2);
    }

    #[test]
    fn dsc_macs_exclude_standard_conv() {
        let m = mobilenet_v1(1.0, 224);
        assert_eq!(m.dsc_macs(), m.total_macs() - m.layers()[0].macs());
    }

    #[test]
    fn v3_small_geometry_chain_is_consistent() {
        let m = mobilenet_v3_small(224);
        for pair in m.layers().windows(2) {
            assert_eq!(pair[0].out_channels(), pair[1].in_channels(), "{} -> {}", pair[0], pair[1]);
            assert_eq!(pair[0].out_h(), pair[1].in_h(), "{} -> {}", pair[0], pair[1]);
        }
        // The 5x5 depthwise layers are present (the K=5 mapping path).
        assert!(m.layers().iter().any(|l| l.kind() == ConvKind::Depthwise && l.k() == 5));
        assert_eq!(m.layers().last().unwrap().out_h(), 7);
    }

    #[test]
    fn channel_rounding_to_multiple_of_8() {
        assert_eq!(scale_channels(32, 0.5), 16);
        assert_eq!(scale_channels(32, 0.75), 24);
        assert_eq!(scale_channels(24, 0.5), 16); // 12 rounds up to 16
        assert_eq!(scale_channels(8, 0.25), 8); // floor at 8
    }
}
