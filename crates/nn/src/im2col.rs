//! im2col lowering and its host-processor cost model.
//!
//! NP-CGRA runs standard (3-D) convolution by converting it into matrix
//! multiplication with im2col and then applying the PWC mapping (§6.5). The
//! paper performs im2col on the ARMv8 host of a Xilinx Ultra96-V2 board and
//! *includes its runtime* in AlexNet latency (Table 6), so the cost model
//! here is part of the experiment reproduction.
//!
//! The same lowering, restricted to a single channel, yields the
//! "Matmul DWC" comparison point of Table 5 (DWC as a `(pixels×K²)·(K²×1)`
//! product that can only occupy one CGRA column).

use crate::layer::{ConvKind, ConvLayer, LayerShapeError};
use crate::tensor::{Matrix, Tensor};

/// Lower one group of a standard convolution into the im2col pixel matrix.
///
/// Row `p` corresponds to output pixel `p = oy*out_w + ox`; column
/// `(ky*K + kx)*cin_per_group + ci` holds the IFM element under kernel tap
/// `(ky, kx)` of group-local channel `ci` (zero for padded taps). This
/// column order matches the packed weight layout of
/// [`ConvLayer::random_weights`] for standard layers, so
/// `im2col_matrix(..) × weight_matrix` reproduces the golden reference
/// exactly.
///
/// # Errors
///
/// Returns [`LayerShapeError`] if the layer is pointwise-incompatible
/// (`kind` must be [`ConvKind::Standard`] or [`ConvKind::Depthwise`]), the
/// IFM shape mismatches, or `group` is out of range.
pub fn im2col_matrix(layer: &ConvLayer, ifm: &Tensor, group: usize) -> Result<Matrix, LayerShapeError> {
    if layer.kind() == ConvKind::Pointwise {
        return Err(LayerShapeError::new(
            "im2col of a pointwise layer is the identity; use the pixel matrix directly",
        ));
    }
    if ifm.shape() != (layer.in_channels(), layer.in_h(), layer.in_w()) {
        return Err(LayerShapeError::new("ifm shape does not match layer"));
    }
    if group >= layer.groups() {
        return Err(LayerShapeError::new(format!(
            "group {group} out of range ({} groups)",
            layer.groups()
        )));
    }
    let k = layer.k();
    let s = layer.s();
    let pad = layer.pad() as isize;
    let cin_per_g = layer.in_channels() / layer.groups();
    let (oh, ow) = (layer.out_h(), layer.out_w());
    Ok(Matrix::from_fn(oh * ow, k * k * cin_per_g, |p, col| {
        let (oy, ox) = (p / ow, p % ow);
        let tap = col / cin_per_g;
        let ci = col % cin_per_g;
        let (ky, kx) = (tap / k, tap % k);
        let iy = (oy * s + ky) as isize - pad;
        let ix = (ox * s + kx) as isize - pad;
        ifm.get_padded(group * cin_per_g + ci, iy, ix)
    }))
}

/// The weight matrix for one group, shaped `(K²·cin_per_group) × cout_per_group`,
/// with rows ordered to match [`im2col_matrix`] columns.
///
/// # Errors
///
/// Returns [`LayerShapeError`] on kind/shape/group mismatch.
pub fn weight_matrix(layer: &ConvLayer, weights: &Tensor, group: usize) -> Result<Matrix, LayerShapeError> {
    if layer.kind() == ConvKind::Pointwise {
        return Err(LayerShapeError::new("pointwise weights are already a matrix"));
    }
    if group >= layer.groups() {
        return Err(LayerShapeError::new("group out of range"));
    }
    let k = layer.k();
    let cin_per_g = layer.in_channels() / layer.groups();
    let cout_per_g = layer.out_channels() / layer.groups();
    let expected = match layer.kind() {
        ConvKind::Depthwise => (layer.in_channels(), k, k),
        _ => (layer.out_channels(), k, k * cin_per_g),
    };
    if weights.shape() != expected {
        return Err(LayerShapeError::new("weight shape mismatch"));
    }
    Ok(match layer.kind() {
        ConvKind::Depthwise => {
            // One output channel per group; rows are the K² taps.
            Matrix::from_fn(k * k, 1, |row, _| weights.get(group, row / k, row % k))
        }
        _ => Matrix::from_fn(k * k * cin_per_g, cout_per_g, |row, oc| {
            let tap = row / cin_per_g;
            let ci = row % cin_per_g;
            let (ky, kx) = (tap / k, tap % k);
            weights.get(group * cout_per_g + oc, ky, kx * cin_per_g + ci)
        }),
    })
}

/// Number of elements im2col materializes for the whole layer (all groups).
#[must_use]
pub fn im2col_elems(layer: &ConvLayer) -> u64 {
    let cin_per_g = (layer.in_channels() / layer.groups()) as u64;
    (layer.out_h() * layer.out_w()) as u64 * (layer.k() * layer.k()) as u64 * cin_per_g * layer.groups() as u64
}

/// Cost model for im2col executed on the host processor.
///
/// The paper measured im2col functions on the ARMv8 core of an Ultra96-V2
/// board. im2col is a memory-bound linear pass, so a per-element cycle cost
/// at the host clock reproduces its latency contribution. The defaults are
/// calibrated so AlexNet's five conv layers cost ≈13 ms of host time, which
/// combined with the CGRA matmul time lands near the paper's 40.07 ms total.
///
/// The paper's "further optimization" section notes that ordering im2col
/// channel-first reduces overhead; [`Im2colCostModel::channel_first`]
/// models that variant with a lower per-element cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Im2colCostModel {
    /// Host clock frequency in Hz.
    pub host_hz: f64,
    /// Average host cycles spent per materialized im2col element.
    pub cycles_per_elem: f64,
}

impl Im2colCostModel {
    /// The calibrated Ultra96-V2 ARMv8 model (1.5 GHz, ~4.5 cycles/element).
    #[must_use]
    pub fn ultra96() -> Self {
        Im2colCostModel {
            host_hz: 1.5e9,
            cycles_per_elem: 4.5,
        }
    }

    /// Channel-first traversal variant (paper §5.4 "Further optimization"):
    /// better locality, ~40 % fewer cycles per element.
    #[must_use]
    pub fn channel_first(self) -> Self {
        Im2colCostModel {
            cycles_per_elem: self.cycles_per_elem * 0.6,
            ..self
        }
    }

    /// Host seconds spent lowering `layer`.
    #[must_use]
    pub fn seconds(&self, layer: &ConvLayer) -> f64 {
        im2col_elems(layer) as f64 * self.cycles_per_elem / self.host_hz
    }
}

impl Default for Im2colCostModel {
    fn default() -> Self {
        Im2colCostModel::ultra96()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn im2col_matmul_matches_reference_standard() {
        let layer = ConvLayer::standard("c", 3, 4, 6, 6, 3, 1, 1, 1);
        let ifm = Tensor::random(3, 6, 6, 7);
        let w = layer.random_weights(8);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let x = im2col_matrix(&layer, &ifm, 0).unwrap();
        let wm = weight_matrix(&layer, &w, 0).unwrap();
        let y = x.matmul(&wm);
        for o in 0..4 {
            for p in 0..36 {
                assert_eq!(y.get(p, o), golden.get(o, p / 6, p % 6));
            }
        }
    }

    #[test]
    fn im2col_matmul_matches_reference_grouped() {
        let layer = ConvLayer::standard("c", 4, 6, 5, 5, 3, 2, 1, 2);
        let ifm = Tensor::random(4, 5, 5, 17);
        let w = layer.random_weights(18);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (oh, ow) = (layer.out_h(), layer.out_w());
        for g in 0..2 {
            let x = im2col_matrix(&layer, &ifm, g).unwrap();
            let wm = weight_matrix(&layer, &w, g).unwrap();
            let y = x.matmul(&wm);
            for oc in 0..3 {
                for p in 0..oh * ow {
                    assert_eq!(y.get(p, oc), golden.get(g * 3 + oc, p / ow, p % ow));
                }
            }
        }
    }

    #[test]
    fn im2col_matmul_matches_reference_depthwise() {
        // Matmul DWC (Table 5's middle column) functional check.
        let layer = ConvLayer::depthwise("dw", 3, 7, 7, 3, 1, 1);
        let ifm = Tensor::random(3, 7, 7, 9);
        let w = layer.random_weights(10);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        for c in 0..3 {
            let x = im2col_matrix(&layer, &ifm, c).unwrap();
            let wm = weight_matrix(&layer, &w, c).unwrap();
            assert_eq!(wm.rows(), 9);
            assert_eq!(wm.cols(), 1);
            let y = x.matmul(&wm);
            for p in 0..49 {
                assert_eq!(y.get(p, 0), golden.get(c, p / 7, p % 7));
            }
        }
    }

    #[test]
    fn im2col_stride_and_pad_geometry() {
        let layer = ConvLayer::standard("c", 1, 1, 5, 5, 3, 2, 1, 1);
        let ifm = Tensor::from_fn(1, 5, 5, |_, y, x| (y * 5 + x) as i16);
        let x = im2col_matrix(&layer, &ifm, 0).unwrap();
        assert_eq!(x.rows(), 9);
        assert_eq!(x.cols(), 9);
        // First output pixel's top-left tap is padding.
        assert_eq!(x.get(0, 0), 0);
        // Centre tap of the first window is ifm(0,0).
        assert_eq!(x.get(0, 4), 0);
        // Centre output pixel (oy=1,ox=1) centre tap is ifm(2,2)=12.
        assert_eq!(x.get(4, 4), 12);
    }

    #[test]
    fn im2col_rejects_pointwise() {
        let layer = ConvLayer::pointwise("pw", 2, 2, 4, 4);
        let ifm = Tensor::zeros(2, 4, 4);
        assert!(im2col_matrix(&layer, &ifm, 0).is_err());
    }

    #[test]
    fn im2col_rejects_bad_group() {
        let layer = ConvLayer::standard("c", 2, 2, 4, 4, 3, 1, 1, 1);
        let ifm = Tensor::zeros(2, 4, 4);
        assert!(im2col_matrix(&layer, &ifm, 1).is_err());
    }

    #[test]
    fn elems_counts_all_groups() {
        let layer = ConvLayer::standard("c", 4, 6, 8, 8, 3, 1, 1, 2);
        assert_eq!(im2col_elems(&layer), (8 * 8 * 9 * 2 * 2) as u64);
    }

    #[test]
    fn cost_model_scales_linearly() {
        let small = ConvLayer::standard("a", 3, 8, 8, 8, 3, 1, 1, 1);
        let big = ConvLayer::standard("b", 3, 8, 16, 16, 3, 1, 1, 1);
        let m = Im2colCostModel::default();
        let ratio = m.seconds(&big) / m.seconds(&small);
        assert!(
            (ratio - 4.0).abs() < 0.05,
            "doubling H and W should ~4x the cost, got {ratio}"
        );
    }

    #[test]
    fn channel_first_is_cheaper() {
        let layer = ConvLayer::standard("c", 3, 8, 16, 16, 3, 1, 1, 1);
        let base = Im2colCostModel::default();
        assert!(base.channel_first().seconds(&layer) < base.seconds(&layer));
    }
}
