//! The classifier head: global average pooling and a fully-connected layer.
//!
//! MobileNets end with GAP + FC. Neither is depthwise-separable
//! convolution — the paper's "DSC runtime" excludes them — but a usable
//! inference engine needs them: GAP is a trivial host-side reduction
//! (`N_i` sums over `H·W` values), and FC *is* a `1×N_i` by `N_i×classes`
//! matrix product, which NP-CGRA runs through the PWC mapping
//! (`NpCgra::matmul`).

use crate::tensor::{Matrix, Tensor};
use crate::{truncate, Acc, Word};

/// Global average pooling: one rounded mean per channel.
///
/// Uses round-half-away-from-zero on the exact channel sum, the usual
/// fixed-point pooling choice.
#[must_use]
pub fn global_avg_pool(t: &Tensor) -> Vec<Word> {
    let (c, h, w) = t.shape();
    let n = (h * w) as Acc;
    (0..c)
        .map(|ch| {
            let mut sum: Acc = 0;
            for y in 0..h {
                for x in 0..w {
                    sum += Acc::from(t.get(ch, y, x));
                }
            }
            let rounded = if sum >= 0 { (sum + n / 2) / n } else { (sum - n / 2) / n };
            truncate(rounded)
        })
        .collect()
}

/// Fully-connected layer, golden reference: `logits = features × weights`
/// with the datapath's wrapping 16-bit truncation. `weights` is
/// `in_features × classes`.
///
/// # Panics
///
/// Panics if `features.len() != weights.rows()`.
#[must_use]
pub fn fully_connected(features: &[Word], weights: &Matrix) -> Vec<Word> {
    assert_eq!(features.len(), weights.rows(), "feature/weight shape mismatch");
    (0..weights.cols())
        .map(|c| {
            let mut acc: Acc = 0;
            for (i, &f) in features.iter().enumerate() {
                acc = acc.wrapping_add(Acc::from(f).wrapping_mul(Acc::from(weights.get(i, c))));
            }
            truncate(acc)
        })
        .collect()
}

/// Index of the largest logit (ties resolve to the first).
#[must_use]
pub fn argmax(logits: &[Word]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_of_constant_channel_is_the_constant() {
        let t = Tensor::from_fn(3, 4, 4, |c, _, _| (c as Word + 1) * 10);
        assert_eq!(global_avg_pool(&t), vec![10, 20, 30]);
    }

    #[test]
    fn gap_rounds_half_away_from_zero() {
        // Channel sum 2 over 4 elements = 0.5 → 1; -2/4 = -0.5 → -1.
        let pos = Tensor::from_fn(1, 2, 2, |_, y, x| i16::from(y == 0 && x == 0) * 2);
        assert_eq!(global_avg_pool(&pos), vec![1]);
        let neg = Tensor::from_fn(1, 2, 2, |_, y, x| -(i16::from(y == 0 && x == 0) * 2));
        assert_eq!(global_avg_pool(&neg), vec![-1]);
    }

    #[test]
    fn fc_matches_matrix_product() {
        let features: Vec<Word> = vec![1, -2, 3];
        let w = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as Word);
        // logits = [1*0 + -2*2 + 3*4, 1*1 + -2*3 + 3*5] = [8, 10].
        assert_eq!(fully_connected(&features, &w), vec![8, 10]);
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[3, 7, 7, 1]), 1);
        assert_eq!(argmax(&[-5]), 0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn fc_shape_checked() {
        let _ = fully_connected(&[1, 2], &Matrix::zeros(3, 2));
    }
}
