//! Convolution layer descriptors.
//!
//! A [`ConvLayer`] captures the geometry of one convolution layer — kind
//! (depthwise / pointwise / standard), kernel size `K`, stride `S`, padding,
//! channel counts and spatial dimensions — and derives the quantities the
//! paper's performance models need: output geometry, MAC counts and data
//! volumes (Table 2 nomenclature: `N_i`, `N_o`, `N_h`, `N_w`, `K`, `S`).

use std::fmt;

use crate::activation::Activation;
use crate::tensor::Tensor;

/// The convolution flavour, following the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvKind {
    /// Depthwise convolution (DWC): one `K×K` filter per channel,
    /// `N_o = N_i`, no cross-channel reduction.
    Depthwise,
    /// Pointwise convolution (PWC): `1×1` convolution, algorithmically a
    /// matrix multiplication of the pixel matrix by the `N_i×N_o` weights.
    Pointwise,
    /// Standard 3-D convolution (as in AlexNet), run on NP-CGRA via
    /// im2col + the PWC mapping.
    Standard,
}

impl fmt::Display for ConvKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConvKind::Depthwise => "DWC",
            ConvKind::Pointwise => "PWC",
            ConvKind::Standard => "CONV",
        };
        f.write_str(s)
    }
}

/// Error returned when a layer description is geometrically invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerShapeError {
    message: String,
}

impl fmt::Display for LayerShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid layer shape: {}", self.message)
    }
}

impl std::error::Error for LayerShapeError {}

impl LayerShapeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        LayerShapeError { message: message.into() }
    }
}

/// A convolution layer descriptor.
///
/// # Example
///
/// ```
/// use npcgra_nn::{ConvLayer, ConvKind};
///
/// let pw = ConvLayer::pointwise("pw1", 32, 64, 112, 112);
/// assert_eq!(pw.kind(), ConvKind::Pointwise);
/// assert_eq!(pw.macs(), 112 * 112 * 32 * 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    name: String,
    kind: ConvKind,
    k: usize,
    s: usize,
    pad: usize,
    n_i: usize,
    n_o: usize,
    in_h: usize,
    in_w: usize,
    groups: usize,
    activation: Activation,
}

impl ConvLayer {
    /// General constructor.
    ///
    /// # Errors
    ///
    /// Returns [`LayerShapeError`] if any dimension is zero, the padded input
    /// is smaller than the kernel, the kind-specific constraints are violated
    /// (PWC must have `K = S = 1`, `pad = 0`; DWC must have `N_o = N_i`), or
    /// `groups` does not divide both channel counts.
    #[allow(clippy::too_many_arguments)] // one field per layer parameter
    pub fn new(
        name: impl Into<String>,
        kind: ConvKind,
        n_i: usize,
        n_o: usize,
        in_h: usize,
        in_w: usize,
        k: usize,
        s: usize,
        pad: usize,
        groups: usize,
    ) -> Result<Self, LayerShapeError> {
        if n_i == 0 || n_o == 0 || in_h == 0 || in_w == 0 || k == 0 || s == 0 || groups == 0 {
            return Err(LayerShapeError::new("dimensions must be nonzero"));
        }
        if in_h + 2 * pad < k || in_w + 2 * pad < k {
            return Err(LayerShapeError::new(format!(
                "padded input {}x{} smaller than kernel {k}",
                in_h + 2 * pad,
                in_w + 2 * pad
            )));
        }
        match kind {
            ConvKind::Pointwise => {
                if k != 1 || s != 1 || pad != 0 {
                    return Err(LayerShapeError::new("pointwise layers require K=1, S=1, pad=0"));
                }
                if groups != 1 {
                    return Err(LayerShapeError::new("grouped pointwise layers are not modelled"));
                }
            }
            ConvKind::Depthwise => {
                if n_o != n_i {
                    return Err(LayerShapeError::new("depthwise layers require N_o = N_i"));
                }
                if groups != n_i {
                    return Err(LayerShapeError::new("depthwise layers require groups = N_i"));
                }
            }
            ConvKind::Standard => {
                if !n_i.is_multiple_of(groups) || !n_o.is_multiple_of(groups) {
                    return Err(LayerShapeError::new("groups must divide both channel counts"));
                }
            }
        }
        Ok(ConvLayer {
            name: name.into(),
            kind,
            k,
            s,
            pad,
            n_i,
            n_o,
            in_h,
            in_w,
            groups,
            activation: Activation::None,
        })
    }

    /// Depthwise layer with `channels` channels, `in_h`×`in_w` input, kernel
    /// `k`, stride `s`, padding `pad`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`ConvLayer::new`]).
    #[must_use]
    pub fn depthwise(name: &str, channels: usize, in_h: usize, in_w: usize, k: usize, s: usize, pad: usize) -> Self {
        ConvLayer::new(name, ConvKind::Depthwise, channels, channels, in_h, in_w, k, s, pad, channels)
            .expect("invalid depthwise layer")
    }

    /// Pointwise (1×1) layer mapping `n_i` input channels to `n_o` output
    /// channels over an `in_h`×`in_w` feature map.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`ConvLayer::new`]).
    #[must_use]
    pub fn pointwise(name: &str, n_i: usize, n_o: usize, in_h: usize, in_w: usize) -> Self {
        ConvLayer::new(name, ConvKind::Pointwise, n_i, n_o, in_h, in_w, 1, 1, 0, 1).expect("invalid pointwise layer")
    }

    /// Standard 3-D convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`ConvLayer::new`]).
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one field per layer parameter
    pub fn standard(
        name: &str,
        n_i: usize,
        n_o: usize,
        in_h: usize,
        in_w: usize,
        k: usize,
        s: usize,
        pad: usize,
        groups: usize,
    ) -> Self {
        ConvLayer::new(name, ConvKind::Standard, n_i, n_o, in_h, in_w, k, s, pad, groups).expect("invalid standard conv layer")
    }

    /// Builder-style: attach a fused activation.
    #[must_use]
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// The fused activation applied to every output element.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Layer name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The convolution flavour.
    #[must_use]
    pub fn kind(&self) -> ConvKind {
        self.kind
    }

    /// Kernel size `K` (square kernels, as in the paper).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stride `S`.
    #[must_use]
    pub fn s(&self) -> usize {
        self.s
    }

    /// Zero padding applied on each spatial side.
    #[must_use]
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Number of input channels `N_i`.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.n_i
    }

    /// Number of output channels `N_o`.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.n_o
    }

    /// Input feature-map height.
    #[must_use]
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input feature-map width.
    #[must_use]
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Convolution group count (AlexNet conv2/4/5 use 2 groups).
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Output feature-map height `N_h`.
    #[must_use]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k) / self.s + 1
    }

    /// Output feature-map width `N_w`.
    #[must_use]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k) / self.s + 1
    }

    /// Multiply-accumulate count of the layer.
    #[must_use]
    pub fn macs(&self) -> u64 {
        let spatial = (self.out_h() * self.out_w()) as u64;
        match self.kind {
            ConvKind::Depthwise => spatial * (self.k * self.k) as u64 * self.n_i as u64,
            ConvKind::Pointwise => spatial * self.n_i as u64 * self.n_o as u64,
            ConvKind::Standard => spatial * (self.k * self.k) as u64 * (self.n_i / self.groups) as u64 * self.n_o as u64,
        }
    }

    /// IFM element count (unpadded).
    #[must_use]
    pub fn ifm_elems(&self) -> u64 {
        (self.n_i * self.in_h * self.in_w) as u64
    }

    /// OFM element count.
    #[must_use]
    pub fn ofm_elems(&self) -> u64 {
        (self.n_o * self.out_h() * self.out_w()) as u64
    }

    /// Weight element count.
    #[must_use]
    pub fn weight_elems(&self) -> u64 {
        match self.kind {
            ConvKind::Depthwise => (self.k * self.k * self.n_i) as u64,
            ConvKind::Pointwise => (self.n_i * self.n_o) as u64,
            ConvKind::Standard => (self.k * self.k * (self.n_i / self.groups) * self.n_o) as u64,
        }
    }

    /// Arithmetic intensity in MACs per transferred element
    /// (IFM + OFM + weights), the paper's
    /// "computation-to-data-transfer ratio" that makes DWC memory-bound.
    #[must_use]
    pub fn macs_per_elem(&self) -> f64 {
        self.macs() as f64 / (self.ifm_elems() + self.ofm_elems() + self.weight_elems()) as f64
    }

    /// Draw deterministic pseudo-random weights shaped for this layer:
    /// DWC → `(N_i, K, K)`; PWC → `(N_o, 1, N_i)`;
    /// standard → `(N_o, K, K*N_i/groups)` packed per output channel.
    #[must_use]
    pub fn random_weights(&self, seed: u64) -> Tensor {
        match self.kind {
            ConvKind::Depthwise => Tensor::random(self.n_i, self.k, self.k, seed),
            ConvKind::Pointwise => Tensor::random(self.n_o, 1, self.n_i, seed),
            ConvKind::Standard => Tensor::random(self.n_o, self.k, self.k * self.n_i / self.groups, seed),
        }
    }

    /// A renamed copy (useful when instantiating repeated blocks).
    #[must_use]
    pub fn renamed(&self, name: &str) -> ConvLayer {
        let mut l = self.clone();
        l.name = name.into();
        l
    }
}

impl fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}x{}x{} -> {}x{}x{} (K={}, S={}, pad={})",
            self.kind,
            self.name,
            self.n_i,
            self.in_h,
            self.in_w,
            self.n_o,
            self.out_h(),
            self.out_w(),
            self.k,
            self.s,
            self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry_same_padding() {
        let l = ConvLayer::depthwise("dw", 8, 112, 112, 3, 1, 1);
        assert_eq!((l.out_h(), l.out_w()), (112, 112));
    }

    #[test]
    fn output_geometry_stride2() {
        let l = ConvLayer::depthwise("dw", 8, 112, 112, 3, 2, 1);
        assert_eq!((l.out_h(), l.out_w()), (56, 56));
    }

    #[test]
    fn alexnet_conv1_geometry() {
        let l = ConvLayer::standard("conv1", 3, 96, 227, 227, 11, 4, 0, 1);
        assert_eq!((l.out_h(), l.out_w()), (55, 55));
        assert_eq!(l.macs(), 55 * 55 * 11 * 11 * 3 * 96);
    }

    #[test]
    fn grouped_conv_macs_halve() {
        let g1 = ConvLayer::standard("c", 48, 128, 27, 27, 5, 1, 2, 1);
        let g2 = ConvLayer::standard("c", 48, 128, 27, 27, 5, 1, 2, 2);
        assert_eq!(g1.macs(), 2 * g2.macs());
    }

    #[test]
    fn pointwise_is_matmul_sized() {
        let l = ConvLayer::pointwise("pw", 32, 64, 112, 112);
        assert_eq!(l.macs(), 112 * 112 * 32 * 64);
        assert_eq!(l.weight_elems(), 32 * 64);
    }

    #[test]
    fn pointwise_rejects_kernel() {
        let e = ConvLayer::new("x", ConvKind::Pointwise, 8, 8, 4, 4, 3, 1, 0, 1);
        assert!(e.is_err());
    }

    #[test]
    fn depthwise_rejects_channel_mismatch() {
        let e = ConvLayer::new("x", ConvKind::Depthwise, 8, 16, 4, 4, 3, 1, 1, 8);
        assert!(e.is_err());
    }

    #[test]
    fn kernel_larger_than_input_rejected() {
        let e = ConvLayer::new("x", ConvKind::Standard, 3, 8, 2, 2, 5, 1, 0, 1);
        assert!(e.is_err());
    }

    #[test]
    fn dwc_has_low_arithmetic_intensity() {
        let dw = ConvLayer::depthwise("dw", 512, 14, 14, 3, 1, 1);
        let pw = ConvLayer::pointwise("pw", 512, 512, 14, 14);
        assert!(
            dw.macs_per_elem() < pw.macs_per_elem() / 5.0,
            "DWC should be far more memory-bound than PWC"
        );
    }

    #[test]
    fn display_contains_geometry() {
        let l = ConvLayer::depthwise("dw1", 32, 112, 112, 3, 2, 1);
        let s = l.to_string();
        assert!(s.contains("DWC"));
        assert!(s.contains("S=2"));
    }

    #[test]
    fn error_display() {
        let e = ConvLayer::new("x", ConvKind::Pointwise, 0, 8, 4, 4, 1, 1, 0, 1).unwrap_err();
        assert!(e.to_string().contains("invalid layer shape"));
    }
}
