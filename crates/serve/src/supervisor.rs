//! Worker-shard supervision: panic containment, shard respawn, degraded
//! mode.
//!
//! Every worker runs its batch executions inside
//! [`catch_unwind`](std::panic::catch_unwind), with the requests' reply
//! channels held *outside* the unwind boundary — a panicking execution can
//! therefore never strand a [`Ticket`](crate::Ticket). After a caught
//! panic the supervisor rebuilds the shard's execution backend (simulator
//! state mid-panic is unspecified), charges one unit of the shard's restart
//! budget, and backs off exponentially before the next batch. A shard that
//! exhausts its budget is retired: the healthy-shard count (kept under the
//! queue lock, so admission control sees it consistently) drops, and at
//! zero healthy shards the queue is drained with
//! [`ServeError::Degraded`] — nothing would ever run those requests.
//!
//! Lock poisoning is recovered everywhere ([`PoisonError::into_inner`]):
//! the queue's invariants are maintained by the panicking thread *before*
//! any panic can propagate (executions never run under the queue lock), so
//! the poisoned state is safe to adopt.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, MutexGuard, PoisonError, RwLockReadGuard};
use std::time::{Duration, Instant};

use npcgra_nn::{ConvKind, ConvLayer, Tensor};
use npcgra_sim::{
    backend_for, run_standard_via_im2col, BackendTier, CancelToken, CompiledLayer, ExecutionBackend, FaultPlan, GrayRates,
    LayerReport, Machine, MappingKind, SimCause, SimError,
};

use crate::batch;
use crate::config::CrossCheckCorruption;
use crate::error::{RetryClass, ServeError};
use crate::overload::{self, BreakerDecision, BreakerEvent, CircuitBreaker};
use crate::retry;
use crate::server::{
    next_work, register_inflight, remove_inflight, settle, Delivery, ModelEntry, ModelId, Pending, QueueState, Response, Shared,
    Work,
};
use crate::stats::WorkerExit;

/// Lock the shared queue, adopting (not propagating) poisoned state.
pub(crate) fn lock_queue(shared: &Shared) -> MutexGuard<'_, QueueState> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock the model registry, adopting poisoned state.
pub(crate) fn read_models(shared: &Shared) -> RwLockReadGuard<'_, Vec<ModelEntry>> {
    shared.models.read().unwrap_or_else(PoisonError::into_inner)
}

/// One worker's supervised execution state: its execution backend, its
/// restart budget, and the armed chaos triggers.
pub(crate) struct Shard {
    pub(crate) worker: usize,
    /// The tiered execution backend — the cycle-accurate [`Machine`] or the
    /// functional fast tier, per [`ServeConfig::backend_tier`](crate::ServeConfig).
    backend: Box<dyn ExecutionBackend>,
    /// The most recent clean fast-tier batch, held for the periodic
    /// cycle-accurate cross-check replay (fast tier only).
    last_fast_sample: Option<FastSample>,
    /// Restarts consumed so far (== caught panics survived).
    restarts: u32,
    /// One-shot chaos trigger: panic inside the next supervised execution.
    panic_armed: bool,
    /// The shard's canary self-test, when `canary_interval > 0`.
    canary: Option<CanaryProbe>,
    /// Consecutive canary failures; two retire the shard (one may be a
    /// transient fault that an immediate re-probe would clear).
    canary_strikes: u32,
    /// Deterministic per-shard jitter stream for restart backoff (seeded
    /// from the shard id, so shards never synchronize their retries).
    backoff_rng: u64,
    /// Previous restart backoff — the decorrelated-jitter recurrence input.
    prev_backoff: Duration,
    /// Cleared when the restart budget runs out; the worker loop exits.
    pub(crate) alive: bool,
}

/// A small golden layer with precomputed reference outputs, run
/// periodically on the shard's own machine to catch *sticky* corruption
/// (a machine that keeps producing wrong words) that per-request retry
/// cannot heal.
struct CanaryProbe {
    compiled: CompiledLayer,
    ifm: Tensor,
    weights: Tensor,
    golden: Tensor,
}

/// One successful fast-tier batch, captured for the periodic golden
/// cross-check: the exact inputs that ran, the outputs the fast tier
/// produced, and the cycles it charged. Only batches whose run injected no
/// chaos faults are recorded — replaying a fault-bearing batch on a clean
/// machine would quarantine a healthy shard for chaos the operator asked
/// for.
struct FastSample {
    compiled: Arc<CompiledLayer>,
    ifm: Tensor,
    weights: Tensor,
    ofm: Tensor,
    cycles: u64,
}

impl CanaryProbe {
    fn build(shared: &Shared) -> Option<CanaryProbe> {
        let layer = ConvLayer::pointwise("canary.pw", 4, 4, 2, 2);
        let compiled = CompiledLayer::compile(&layer, &shared.config.spec, MappingKind::Auto).ok()?;
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 0xCA_11A5);
        let weights = layer.random_weights(0xCA_11A6);
        let golden = npcgra_nn::reference::run_layer(&layer, &ifm, &weights).ok()?;
        Some(CanaryProbe {
            compiled,
            ifm,
            weights,
            golden,
        })
    }
}

impl Shard {
    pub(crate) fn new(shared: &Shared, worker: usize) -> Self {
        Shard {
            worker,
            backend: build_backend(shared, worker, 0),
            last_fast_sample: None,
            restarts: 0,
            panic_armed: shared.config.chaos.panic_on_first_batch == Some(worker),
            canary: (shared.config.canary_interval > 0)
                .then(|| CanaryProbe::build(shared))
                .flatten(),
            canary_strikes: 0,
            backoff_rng: backoff_seed(worker),
            prev_backoff: shared.config.restart_backoff,
            alive: true,
        }
    }

    /// Run the canary self-test on this shard's backend: any wrong word,
    /// error or panic is a strike; two consecutive strikes retire the
    /// shard ([`WorkerExit::Unhealthy`]).
    fn run_canary(&mut self, shared: &Shared) {
        let Some(probe) = &self.canary else { return };
        shared.stats.canary_runs.fetch_add(1, Ordering::Relaxed);
        let backend = self.backend.as_mut();
        // The probe measures the backend, not the last batch's liveness
        // leftovers: a stale cancelled token must not fail it.
        backend.set_cancel_token(None);
        backend.set_cycle_budget(None);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            backend.run_layer(&probe.compiled, &probe.ifm, &probe.weights)
        }));
        let passed = matches!(outcome, Ok(Ok((ofm, _))) if ofm == probe.golden);
        if passed {
            self.canary_strikes = 0;
            return;
        }
        shared.stats.canary_failed.fetch_add(1, Ordering::Relaxed);
        self.canary_strikes += 1;
        if self.canary_strikes >= 2 {
            self.alive = false;
            mark_shard_dead(shared, self.worker);
        }
    }

    /// Replay the shard's most recent clean fast-tier batch on a scratch
    /// cycle-accurate machine (no fault plan, default integrity — the
    /// golden reference, not the chaos subject). ANY divergence — a single
    /// output bit or one charged cycle — means the fast tier mis-executed
    /// or mis-charged that batch, and the shard is quarantined on the
    /// spot: unlike a canary strike there is no benign explanation, so no
    /// second strike is granted.
    fn run_cross_check(&mut self, shared: &Shared) {
        let Some(sample) = self.last_fast_sample.take() else { return };
        shared.stats.cross_checks.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut golden = Machine::new(&shared.config.spec);
            sample.compiled.run_on(&mut golden, &sample.ifm, &sample.weights)
        }));
        let agrees = matches!(
            &outcome,
            Ok(Ok((ofm, report))) if *ofm == sample.ofm && report.cycles == sample.cycles
        );
        if agrees {
            return;
        }
        shared.stats.cross_check_failed.fetch_add(1, Ordering::Relaxed);
        self.alive = false;
        mark_shard_dead(shared, self.worker);
    }

    /// Execute one request group under supervision. A caught panic is
    /// converted to [`ServeError::WorkerPanic`] after the shard has been
    /// restarted (or retired, if its budget ran out) — the caller checks
    /// [`Shard::alive`] before dispatching more work.
    pub(crate) fn execute(
        &mut self,
        shared: &Shared,
        layer: &ConvLayer,
        weights: &Tensor,
        group: &[Pending],
    ) -> Result<(Vec<Tensor>, LayerReport), ServeError> {
        if let Some(poison) = shared.config.chaos.poison_value {
            if group.iter().any(|p| p.input.get(0, 0, 0) == poison) {
                return Err(poison_error());
            }
        }
        let chaos_panic = self.panic_armed;
        // Disarm before entering the unwind region: the retried batch must
        // succeed, proving the restarted shard serves again.
        self.panic_armed = false;
        let worker = self.worker;
        let backend = self.backend.as_mut();
        let sample_slot = &mut self.last_fast_sample;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            assert!(!chaos_panic, "chaos: injected worker panic");
            run_group(shared, worker, backend, sample_slot, layer, weights, group)
        }));
        match outcome {
            Ok(result) => {
                if result
                    .as_ref()
                    .is_err_and(|e| RetryClass::of(e) == RetryClass::RebuildAndRetry)
                {
                    // The shard itself is suspect (the watchdog cancelled a
                    // stuck run, or it blew its cycle budget): a wedged
                    // simulator's state is as unspecified as a panicked
                    // one's, so the shard walks the same restart-budget
                    // ladder. (Caught panics arrive on the `Err` arm below,
                    // so rebuild-class errors here are always preemptions.)
                    self.note_preemption(shared);
                }
                result
            }
            Err(payload) => {
                let message = panic_message(&payload);
                self.note_panic(shared);
                Err(ServeError::WorkerPanic { message })
            }
        }
    }

    /// Account a caught panic: restart the shard (rebuild the machine,
    /// jittered backoff) while budget remains, retire it otherwise.
    fn note_panic(&mut self, shared: &Shared) {
        shared.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
        self.restart_or_retire(shared);
    }

    /// Account a liveness preemption: count it, penalize the shard's
    /// health score, and walk the same restart ladder as a panic.
    fn note_preemption(&mut self, shared: &Shared) {
        shared.stats.watchdog_preemptions.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .observe_health_sample(self.worker, 0.0, shared.config.health_ewma_alpha);
        self.restart_or_retire(shared);
    }

    /// Charge one restart: rebuild the backend after a decorrelated-jitter
    /// backoff while budget remains, retire the shard otherwise.
    fn restart_or_retire(&mut self, shared: &Shared) {
        self.restarts += 1;
        if self.restarts > shared.config.restart_budget {
            self.alive = false;
            mark_shard_dead(shared, self.worker);
            return;
        }
        shared.stats.restarts.fetch_add(1, Ordering::Relaxed);
        let base = shared.config.restart_backoff;
        if !base.is_zero() {
            self.backoff_rng = splitmix64(self.backoff_rng);
            let backoff = decorrelated_backoff(base, base * 64, self.prev_backoff, self.backoff_rng);
            self.prev_backoff = backoff;
            std::thread::sleep(backoff);
        }
        self.backend = build_backend(shared, self.worker, self.restarts);
        // The captured fast sample predates the restart; drop it rather
        // than judge the fresh backend by its predecessor's work.
        self.last_fast_sample = None;
    }
}

/// SplitMix64's finalizer — the repo's standard cheap deterministic hash.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard's deterministic jitter-stream seed: a function of the shard
/// id alone, so a restarted fleet replays the same (decorrelated) backoff
/// schedule run after run.
pub(crate) fn backoff_seed(worker: usize) -> u64 {
    splitmix64(0xB0_FF ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Decorrelated-jitter backoff (the classic "full jitter, previous-sleep
/// coupled" recurrence): uniform in `[base, prev × 3]`, capped. Unlike
/// plain exponential backoff it never synchronizes a fleet of restarting
/// shards into retry convoys — each shard's draw decorrelates from both
/// its own history and its peers'.
pub(crate) fn decorrelated_backoff(base: Duration, cap: Duration, prev: Duration, draw: u64) -> Duration {
    let lo = base.as_nanos() as u64;
    let hi = (prev.as_nanos() as u64).saturating_mul(3).max(lo.saturating_add(1));
    let span = hi - lo;
    Duration::from_nanos(lo + draw % span).min(cap)
}

/// A fresh execution backend of the configured tier for `(worker, restart
/// ordinal)`, carrying the chaos fault plan when one is configured. The
/// plan's seed mixes in the worker index and restart ordinal
/// (splitmix64-style odd constants) so shards draw independent fault
/// streams, yet the whole fleet is reproducible from
/// `ChaosConfig::fault_seed` alone — on either tier, which speak the same
/// fault-plan dialect.
fn build_backend(shared: &Shared, worker: usize, restarts: u32) -> Box<dyn ExecutionBackend> {
    let mut backend = backend_for(shared.config.backend_tier, &shared.config.spec);
    backend.set_integrity_mode(shared.config.integrity);
    let chaos = &shared.config.chaos;
    if let Some(seed) = chaos.fault_seed {
        if chaos.fault_rate > 0.0 || chaos.gray_rate > 0.0 {
            let mix = seed
                ^ (worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (u64::from(restarts)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let plan = if chaos.gray_rate > 0.0 {
                // Gray chaos: temporal faults (stalls, slowdowns, wedges)
                // alongside any configured bit-flip rate, one seeded plan.
                FaultPlan::gray(
                    mix,
                    chaos.fault_rate,
                    GrayRates {
                        rate: chaos.gray_rate,
                        stall_cycles: chaos.gray_stall_cycles,
                        slowdown_factor: chaos.gray_slowdown_factor,
                    },
                )
            } else {
                FaultPlan::bernoulli(mix, chaos.fault_rate)
            };
            backend.set_fault_plan(Some(plan));
        }
    }
    backend
}

/// The synthetic failure a poison request triggers (chaos only): shaped
/// like a mapper rejection so it flows the same retry/bisect path a real
/// data-dependent failure would.
fn poison_error() -> ServeError {
    ServeError::Sim(SimError {
        block: "chaos.poison".to_string(),
        tile: 0,
        cycle: 0,
        cause: SimCause::Map("chaos: poison request sentinel in batch".to_string()),
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Retire a shard: flip its health flag, decrement the healthy count, and
/// — when no healthy shard remains — drain the queue with
/// [`ServeError::Degraded`], because nothing will ever run those requests.
pub(crate) fn mark_shard_dead(shared: &Shared, worker: usize) {
    shared.stats.mark_shard_dead(worker);
    let workers = shared.config.workers;
    let mut q = lock_queue(shared);
    q.healthy = q.healthy.saturating_sub(1);
    if q.healthy == 0 {
        for per_model in &mut q.queues {
            for queue in per_model.iter_mut() {
                while let Some(p) = queue.pop_front() {
                    shared.stats.degraded_sheds.fetch_add(1, Ordering::Relaxed);
                    settle(
                        shared,
                        p.idem_key,
                        &p.reply,
                        Err(ServeError::Degraded { healthy: 0, workers }),
                    );
                }
            }
        }
        q.class_totals = [0; crate::overload::CLASSES];
        q.total = 0;
    }
    drop(q);
    shared.ready.notify_all();
}

/// Hand work a dying shard could not finish back to the surviving shards,
/// or fail it with [`ServeError::Degraded`] when none survive. Attempt
/// counts ride along, so the per-request retry cap holds across shards.
pub(crate) fn requeue_or_fail(shared: &Shared, model: ModelId, pendings: Vec<Pending>) {
    let workers = shared.config.workers;
    let mut q = lock_queue(shared);
    if q.healthy == 0 {
        for p in pendings {
            shared.stats.degraded_sheds.fetch_add(1, Ordering::Relaxed);
            settle(
                shared,
                p.idem_key,
                &p.reply,
                Err(ServeError::Degraded { healthy: 0, workers }),
            );
        }
        return;
    }
    for p in pendings.into_iter().rev() {
        let c = p.class.index();
        q.queues[model.0][c].push_front(p);
        q.class_totals[c] += 1;
        q.total += 1;
    }
    drop(q);
    shared.ready.notify_all();
}

/// Run one request group on the shard's backend: solo path per request
/// when the group has one member (or the layer cannot batch — every
/// standard conv), the coalesced batched path otherwise. This is the body
/// the supervisor wraps in `catch_unwind`.
///
/// Standard convolutions lower through [`run_standard_via_im2col`], which
/// owns its own cycle-accurate machine — they stay on the golden tier
/// regardless of `backend_tier` (they cannot compile to a `CompiledLayer`,
/// so the fast tier has no schedule to replay).
fn run_group(
    shared: &Shared,
    worker: usize,
    backend: &mut dyn ExecutionBackend,
    sample_slot: &mut Option<FastSample>,
    layer: &ConvLayer,
    weights: &Tensor,
    group: &[Pending],
) -> Result<(Vec<Tensor>, LayerReport), ServeError> {
    let spec = &shared.config.spec;
    if group.len() == 1 || !batch::batchable(layer) {
        let mut outputs = Vec::with_capacity(group.len());
        let mut last_report: Option<LayerReport> = None;
        let (mut checked, mut failed, mut recovered) = (0u64, 0u64, 0u64);
        for p in group {
            let (ofm, report) = if layer.kind() == ConvKind::Standard {
                run_standard_via_im2col(layer, &p.input, weights, spec)?
            } else {
                let compiled = shared.cache.get_or_compile(layer, spec, MappingKind::Auto)?;
                run_with_liveness(shared, worker, backend, sample_slot, &compiled, &p.input, weights)?
            };
            outputs.push(ofm);
            checked += report.integrity_checked;
            failed += report.integrity_failed;
            recovered += report.integrity_recovered;
            last_report = Some(report);
        }
        // The group shares one report; fold the per-request integrity
        // counters into it so none are lost.
        let mut report = last_report.expect("at least one request");
        report.integrity_checked = checked;
        report.integrity_failed = failed;
        report.integrity_recovered = recovered;
        Ok((outputs, report))
    } else {
        let b = group.len();
        let big = batch::combined_layer(layer, b);
        let inputs: Vec<&Tensor> = group.iter().map(|p| &p.input).collect();
        let big_ifm = batch::combined_ifm(layer, &inputs);
        let big_w = batch::combined_weights(layer, weights, b);
        shared
            .cache
            .get_or_compile(&big, spec, preferred_kind(&big))
            .or_else(|_| shared.cache.get_or_compile(&big, spec, MappingKind::Auto))
            .map_err(ServeError::from)
            .and_then(|compiled| run_with_liveness(shared, worker, backend, sample_slot, &compiled, &big_ifm, &big_w))
            .map(|(ofm, report)| (batch::split_ofm(layer, b, &ofm), report))
    }
}

/// The watchdog's wall-deadline floor: below this, host scheduling noise
/// (a descheduled core, a page fault, a GC of the box's other tenants)
/// would masquerade as a gray failure. 25 ms dominates OS jitter on a
/// loaded host while a true wedge — pacing one simulated cycle per 100 µs
/// — still overshoots it within a few hundred wedge cycles.
const WATCHDOG_FLOOR: Duration = Duration::from_millis(25);

/// Run one compiled program under the liveness layer: a fresh
/// [`CancelToken`] and per-block cycle budget on the backend, the
/// watchdog's wall deadline armed when the backend's *own tier* is
/// calibrated (the fast tier burns wall time orders of magnitude slower
/// per charged cycle, so tiers never share an ns-per-cycle estimate), and
/// — on success — the run's timing folded into that tier's calibration and
/// the shard's health EWMA.
///
/// On the fast tier, a successful run that injected no chaos faults is
/// captured into `sample_slot` (first one per cross-check window) for the
/// periodic golden replay.
fn run_with_liveness(
    shared: &Shared,
    worker: usize,
    backend: &mut dyn ExecutionBackend,
    sample_slot: &mut Option<FastSample>,
    compiled: &Arc<CompiledLayer>,
    ifm: &Tensor,
    weights: &Tensor,
) -> Result<(Tensor, LayerReport), ServeError> {
    let cfg = &shared.config;
    let tier = backend.tier();
    let block_cycles = compiled.block_compute_cycles();
    let predicted = block_cycles.saturating_mul(compiled.num_blocks() as u64);
    backend.set_cycle_budget((cfg.cycle_budget > 0.0 && block_cycles > 0).then(|| {
        // Per run_block call, so the budget scales with the block, not the
        // whole layer; +1 keeps a healthy exact-cost run strictly inside.
        ((block_cycles as f64 * cfg.cycle_budget).ceil() as u64).max(block_cycles + 1)
    }));
    let token = CancelToken::new();
    backend.set_cancel_token(Some(token.clone()));
    let mut armed = false;
    if cfg.watchdog_slack > 0.0 && predicted > 0 {
        if let Some(ns) = shared.stats.ns_per_cycle(tier) {
            let wall = Duration::from_nanos((predicted as f64 * ns * cfg.watchdog_slack) as u64).max(WATCHDOG_FLOOR);
            shared.watchdog.arm(worker, Instant::now() + wall, token.clone());
            armed = true;
        }
    }
    let faults_before = backend.faults_injected();
    let temporal_before = backend.temporal_injected();
    let started = Instant::now();
    let result = backend.run_layer(compiled, ifm, weights);
    let wall = started.elapsed();
    if armed {
        shared.watchdog.disarm(worker);
    }
    if let Ok((ofm, report)) = &result {
        let alpha = cfg.health_ewma_alpha;
        shared.stats.observe_run_timing(tier, predicted, wall, alpha);
        shared.stats.observe_cycles_charged(tier, report.cycles);
        if let Some(ns) = shared.stats.ns_per_cycle(tier) {
            // Health observation: 1.0 when the run landed at (or under)
            // its predicted wall time, shrinking toward 0 as it overruns.
            let predicted_ns = predicted as f64 * ns;
            let obs = (predicted_ns / (wall.as_nanos() as f64).max(1.0)).min(1.0);
            shared.stats.observe_health_sample(worker, obs, alpha);
        }
        if tier == BackendTier::Fast
            && cfg.cross_check_interval > 0
            && sample_slot.is_none()
            && backend.faults_injected() == faults_before
            && backend.temporal_injected() == temporal_before
        {
            let mut sample = FastSample {
                compiled: Arc::clone(compiled),
                ifm: ifm.clone(),
                weights: weights.clone(),
                ofm: ofm.clone(),
                cycles: report.cycles,
            };
            // Chaos: corrupt one side of the captured sample so the
            // cross-check replay diverges and must quarantine the shard.
            // The *reply* stays untouched — only the audit record lies,
            // which is exactly the failure mode the cross-check exists to
            // catch (a fast tier that mis-reports what it executed).
            match cfg.chaos.cross_check_corrupt {
                Some(CrossCheckCorruption::OutputBit) => {
                    if let Some(w) = sample.ofm.as_mut_slice().first_mut() {
                        *w ^= 1;
                    }
                }
                Some(CrossCheckCorruption::ChargedCycles) => {
                    sample.cycles = sample.cycles.wrapping_add(1);
                }
                None => {}
            }
            *sample_slot = Some(sample);
        }
    }
    result.map_err(ServeError::from)
}

/// The batched mapping to prefer for a combined layer: the §5.4
/// channel-batched DWC when it applies, the paper's per-kind best otherwise.
fn preferred_kind(layer: &ConvLayer) -> MappingKind {
    if layer.kind() == ConvKind::Depthwise && layer.s() == 1 && layer.k() * layer.k() <= npcgra_arch::grf::GRF_WORDS {
        MappingKind::BatchedDwcS1
    } else {
        MappingKind::Auto
    }
}

/// Feed one batch outcome to the shard's circuit breaker and mirror the
/// resulting state (and any open/close transition) into the stats.
fn record_breaker(shared: &Shared, worker: usize, breaker: &mut CircuitBreaker, failed: bool) {
    match breaker.record(Instant::now(), failed) {
        Some(BreakerEvent::Opened) => {
            shared.stats.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
        Some(BreakerEvent::Closed) => {
            shared.stats.breaker_closes.fetch_add(1, Ordering::Relaxed);
        }
        None => {}
    }
    shared.stats.set_breaker_state(worker, breaker.state());
}

/// Re-execute another shard's slow in-flight batch (hedged execution).
/// Replies race the primary per request: [`Delivery::Delivered`] means
/// this hedge won that request (count it — the primary will see
/// `Duplicate` and skip its own counting); `Duplicate` means the primary
/// beat us. Failures send nothing — the primary owns the error/retry
/// path, so a broken hedge shard can never fail a request the primary
/// would have completed. Returns whether execution failed (the hedging
/// shard's own breaker sample).
fn run_hedge(shared: &Shared, shard: &mut Shard, model: ModelId, pendings: Vec<Pending>) -> bool {
    let now = Instant::now();
    let live: Vec<Pending> = pendings.into_iter().filter(|p| p.deadline.is_none_or(|d| d >= now)).collect();
    if live.is_empty() {
        // Nothing worth racing; the primary handles the expiries.
        shared.stats.hedge_losses.fetch_add(1, Ordering::Release);
        return false;
    }
    let (layer, weights): (ConvLayer, Arc<Tensor>) = {
        let models = read_models(shared);
        let entry = &models[model.0];
        (entry.layer.clone(), Arc::clone(&entry.weights))
    };
    let batch_size = live.len();
    match shard.execute(shared, &layer, &weights, &live) {
        Ok((outputs, report)) => {
            let done = Instant::now();
            let mut delivered_any = false;
            for (p, output) in live.into_iter().zip(outputs) {
                let latency = done.duration_since(p.enqueued);
                let delivery = settle(
                    shared,
                    p.idem_key,
                    &p.reply,
                    Ok(Response {
                        output,
                        report: report.clone(),
                        batch_size,
                        worker: shard.worker,
                        latency,
                        request_id: p.reply.request_id(),
                    }),
                );
                if delivery == Delivery::Delivered {
                    delivered_any = true;
                    shared.stats.completed.fetch_add(1, Ordering::Release);
                    shared.stats.observe_latency(latency);
                    if p.integrity_hit {
                        shared.stats.integrity_recovered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if delivered_any {
                shared.stats.hedge_wins.fetch_add(1, Ordering::Release);
            } else {
                shared.stats.hedge_losses.fetch_add(1, Ordering::Release);
            }
            false
        }
        Err(_) => {
            shared.stats.hedge_losses.fetch_add(1, Ordering::Release);
            true
        }
    }
}

/// The worker-thread body: pull work (fresh batches or hedges of other
/// shards' slow batches), run it through the retry policy, and report how
/// the thread ended. Exits `Clean` when the queue drains for shutdown,
/// `Unhealthy` when the shard's restart budget runs out mid-service or the
/// canary self-test retires it.
///
/// A per-shard circuit breaker samples batch outcomes: a shard whose
/// recent window is mostly failures stops pulling work for a cooldown,
/// then re-enters via a single probe batch. The gate is bypassed while the
/// server drains for shutdown — every queued request must still resolve.
pub(crate) fn run_worker(shared: &Arc<Shared>, worker: usize) -> WorkerExit {
    let mut shard = Shard::new(shared, worker);
    let ov = &shared.config.overload;
    let mut breaker = CircuitBreaker::new(
        ov.breaker_window,
        ov.breaker_threshold,
        ov.breaker_min_samples,
        ov.breaker_cooldown,
    );
    let canary_interval = shared.config.canary_interval;
    // The golden cross-check only exists on the fast tier: the cycle tier
    // IS the golden reference, replaying it against itself proves nothing.
    let cross_interval = if shared.config.backend_tier == BackendTier::Fast {
        shared.config.cross_check_interval
    } else {
        0
    };
    let mut batches = 0u64;
    while shard.alive {
        match breaker.poll(Instant::now()) {
            BreakerDecision::Allow => {}
            BreakerDecision::Probe => {
                shared.stats.breaker_probes.fetch_add(1, Ordering::Relaxed);
            }
            BreakerDecision::Wait(cooldown) => {
                let q = lock_queue(shared);
                if q.open {
                    shared.stats.set_breaker_state(worker, breaker.state());
                    // Park on the shared work condvar instead of
                    // sleep-polling: cooldown expiry wakes us via the
                    // timeout, shutdown (and queue churn) via the bell —
                    // an open breaker costs zero wakeups on an idle server.
                    drop(shared.ready.wait_timeout(q, cooldown).unwrap_or_else(PoisonError::into_inner));
                    continue;
                }
                // Draining: serve regardless, shutdown must complete.
            }
        }
        shared.stats.set_breaker_state(worker, breaker.state());
        // Hedge only when the latency estimate has matured and another
        // shard exists to race against.
        let hedge_threshold = if ov.hedge_quantile > 0.0 && shared.config.workers > 1 {
            overload::hedge_threshold(
                shared.stats.exec_latency_quantile(ov.hedge_quantile, ov.hedge_min_samples),
                ov.hedge_floor,
            )
        } else {
            None
        };
        match next_work(shared, worker, hedge_threshold) {
            None => return WorkerExit::Clean,
            Some(Work::Batch { model, pendings }) => {
                let busy_start = Instant::now();
                let inflight = hedge_threshold
                    .is_some()
                    .then(|| register_inflight(shared, worker, model, &pendings));
                let outcome = retry::process(shared, &mut shard, model, pendings);
                if let Some(id) = inflight {
                    remove_inflight(shared, id);
                }
                let busy = busy_start.elapsed();
                shared.stats.observe_worker_busy(worker, busy);
                if outcome.executed {
                    shared.stats.observe_exec_latency(busy);
                    record_breaker(shared, worker, &mut breaker, outcome.any_failed);
                }
                batches += 1;
                if canary_interval > 0 && batches.is_multiple_of(canary_interval) {
                    shard.run_canary(shared);
                }
                if cross_interval > 0 && batches.is_multiple_of(cross_interval) {
                    shard.run_cross_check(shared);
                }
            }
            Some(Work::Hedge { model, pendings }) => {
                let busy_start = Instant::now();
                let failed = run_hedge(shared, &mut shard, model, pendings);
                shared.stats.observe_worker_busy(worker, busy_start.elapsed());
                record_breaker(shared, worker, &mut breaker, failed);
            }
        }
    }
    WorkerExit::Unhealthy
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The backoff sequence a shard would sleep through `n` consecutive
    /// restarts, reproduced from the pure recurrence.
    fn backoff_sequence(worker: usize, base: Duration, n: usize) -> Vec<Duration> {
        let cap = base * 64;
        let mut rng = backoff_seed(worker);
        let mut prev = base;
        (0..n)
            .map(|_| {
                rng = splitmix64(rng);
                prev = decorrelated_backoff(base, cap, prev, rng);
                prev
            })
            .collect()
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_shard() {
        let base = Duration::from_millis(1);
        assert_eq!(
            backoff_sequence(0, base, 8),
            backoff_sequence(0, base, 8),
            "same shard, same schedule — the fleet replays from seeds alone"
        );
    }

    #[test]
    fn backoff_jitter_diverges_across_shards() {
        // Two shards restarting in lockstep must not sleep in lockstep:
        // their jitter streams are seeded from distinct shard ids.
        let base = Duration::from_millis(1);
        let a = backoff_sequence(0, base, 8);
        let b = backoff_sequence(1, base, 8);
        assert_ne!(a, b, "shards 0 and 1 drew identical backoff schedules");
        let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(differing >= 6, "schedules nearly synchronized: {a:?} vs {b:?}");
    }

    #[test]
    fn backoff_respects_base_and_cap() {
        let base = Duration::from_millis(1);
        let cap = base * 64;
        for worker in 0..4 {
            for d in backoff_sequence(worker, base, 32) {
                assert!(d >= base, "below base: {d:?}");
                assert!(d <= cap, "above cap: {d:?}");
            }
        }
    }

    #[test]
    fn backoff_handles_degenerate_inputs() {
        // prev = 0 (first restart with a zero-history shard) still yields
        // something in [base, cap]; a zero base collapses to zero-ish
        // waits without dividing by zero.
        let base = Duration::from_micros(100);
        let d = decorrelated_backoff(base, base * 64, Duration::ZERO, 0xDEAD_BEEF);
        assert!(d >= base);
        let z = decorrelated_backoff(Duration::ZERO, Duration::ZERO, Duration::ZERO, 7);
        assert_eq!(z, Duration::ZERO);
    }
}
