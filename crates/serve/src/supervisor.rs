//! Worker-shard supervision: panic containment, shard respawn, degraded
//! mode.
//!
//! Every worker runs its batch executions inside
//! [`catch_unwind`](std::panic::catch_unwind), with the requests' reply
//! channels held *outside* the unwind boundary — a panicking execution can
//! therefore never strand a [`Ticket`](crate::Ticket). After a caught
//! panic the supervisor rebuilds the shard's [`Machine`] (simulator state
//! mid-panic is unspecified), charges one unit of the shard's restart
//! budget, and backs off exponentially before the next batch. A shard that
//! exhausts its budget is retired: the healthy-shard count (kept under the
//! queue lock, so admission control sees it consistently) drops, and at
//! zero healthy shards the queue is drained with
//! [`ServeError::Degraded`] — nothing would ever run those requests.
//!
//! Lock poisoning is recovered everywhere ([`PoisonError::into_inner`]):
//! the queue's invariants are maintained by the panicking thread *before*
//! any panic can propagate (executions never run under the queue lock), so
//! the poisoned state is safe to adopt.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, MutexGuard, PoisonError, RwLockReadGuard};
use std::time::{Duration, Instant};

use npcgra_nn::{ConvKind, ConvLayer, Tensor};
use npcgra_sim::{run_standard_via_im2col, CompiledLayer, FaultPlan, LayerReport, Machine, MappingKind, SimCause, SimError};

use crate::batch;
use crate::error::ServeError;
use crate::overload::{self, BreakerDecision, BreakerEvent, CircuitBreaker};
use crate::retry;
use crate::server::{
    next_work, register_inflight, remove_inflight, send_reply, Delivery, ModelEntry, ModelId, Pending, QueueState, Response,
    Shared, Work,
};
use crate::stats::WorkerExit;

/// Lock the shared queue, adopting (not propagating) poisoned state.
pub(crate) fn lock_queue(shared: &Shared) -> MutexGuard<'_, QueueState> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock the model registry, adopting poisoned state.
pub(crate) fn read_models(shared: &Shared) -> RwLockReadGuard<'_, Vec<ModelEntry>> {
    shared.models.read().unwrap_or_else(PoisonError::into_inner)
}

/// One worker's supervised execution state: its machine, its restart
/// budget, and the armed chaos triggers.
pub(crate) struct Shard {
    pub(crate) worker: usize,
    machine: Machine,
    /// Restarts consumed so far (== caught panics survived).
    restarts: u32,
    /// One-shot chaos trigger: panic inside the next supervised execution.
    panic_armed: bool,
    /// The shard's canary self-test, when `canary_interval > 0`.
    canary: Option<CanaryProbe>,
    /// Consecutive canary failures; two retire the shard (one may be a
    /// transient fault that an immediate re-probe would clear).
    canary_strikes: u32,
    /// Cleared when the restart budget runs out; the worker loop exits.
    pub(crate) alive: bool,
}

/// A small golden layer with precomputed reference outputs, run
/// periodically on the shard's own machine to catch *sticky* corruption
/// (a machine that keeps producing wrong words) that per-request retry
/// cannot heal.
struct CanaryProbe {
    compiled: CompiledLayer,
    ifm: Tensor,
    weights: Tensor,
    golden: Tensor,
}

impl CanaryProbe {
    fn build(shared: &Shared) -> Option<CanaryProbe> {
        let layer = ConvLayer::pointwise("canary.pw", 4, 4, 2, 2);
        let compiled = CompiledLayer::compile(&layer, &shared.config.spec, MappingKind::Auto).ok()?;
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 0xCA_11A5);
        let weights = layer.random_weights(0xCA_11A6);
        let golden = npcgra_nn::reference::run_layer(&layer, &ifm, &weights).ok()?;
        Some(CanaryProbe {
            compiled,
            ifm,
            weights,
            golden,
        })
    }
}

impl Shard {
    pub(crate) fn new(shared: &Shared, worker: usize) -> Self {
        Shard {
            worker,
            machine: build_machine(shared, worker, 0),
            restarts: 0,
            panic_armed: shared.config.chaos.panic_on_first_batch == Some(worker),
            canary: (shared.config.canary_interval > 0)
                .then(|| CanaryProbe::build(shared))
                .flatten(),
            canary_strikes: 0,
            alive: true,
        }
    }

    /// Run the canary self-test on this shard's machine: any wrong word,
    /// error or panic is a strike; two consecutive strikes retire the
    /// shard ([`WorkerExit::Unhealthy`]).
    fn run_canary(&mut self, shared: &Shared) {
        let Some(probe) = &self.canary else { return };
        shared.stats.canary_runs.fetch_add(1, Ordering::Relaxed);
        let machine = &mut self.machine;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            probe.compiled.run_on(machine, &probe.ifm, &probe.weights)
        }));
        let passed = matches!(outcome, Ok(Ok((ofm, _))) if ofm == probe.golden);
        if passed {
            self.canary_strikes = 0;
            return;
        }
        shared.stats.canary_failed.fetch_add(1, Ordering::Relaxed);
        self.canary_strikes += 1;
        if self.canary_strikes >= 2 {
            self.alive = false;
            mark_shard_dead(shared, self.worker);
        }
    }

    /// Execute one request group under supervision. A caught panic is
    /// converted to [`ServeError::WorkerPanic`] after the shard has been
    /// restarted (or retired, if its budget ran out) — the caller checks
    /// [`Shard::alive`] before dispatching more work.
    pub(crate) fn execute(
        &mut self,
        shared: &Shared,
        layer: &ConvLayer,
        weights: &Tensor,
        group: &[Pending],
    ) -> Result<(Vec<Tensor>, LayerReport), ServeError> {
        if let Some(poison) = shared.config.chaos.poison_value {
            if group.iter().any(|p| p.input.get(0, 0, 0) == poison) {
                return Err(poison_error());
            }
        }
        let chaos_panic = self.panic_armed;
        // Disarm before entering the unwind region: the retried batch must
        // succeed, proving the restarted shard serves again.
        self.panic_armed = false;
        let machine = &mut self.machine;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            assert!(!chaos_panic, "chaos: injected worker panic");
            run_group(shared, machine, layer, weights, group)
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                let message = panic_message(&payload);
                self.note_panic(shared);
                Err(ServeError::WorkerPanic { message })
            }
        }
    }

    /// Account a caught panic: restart the shard (rebuild the machine,
    /// exponential backoff) while budget remains, retire it otherwise.
    fn note_panic(&mut self, shared: &Shared) {
        shared.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
        self.restarts += 1;
        if self.restarts > shared.config.restart_budget {
            self.alive = false;
            mark_shard_dead(shared, self.worker);
            return;
        }
        shared.stats.restarts.fetch_add(1, Ordering::Relaxed);
        let backoff = shared.config.restart_backoff * (1u32 << (self.restarts - 1).min(6));
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        self.machine = build_machine(shared, self.worker, self.restarts);
    }
}

/// A fresh simulated machine for `(worker, restart ordinal)`, carrying the
/// chaos fault plan when one is configured. The plan's seed mixes in the
/// worker index and restart ordinal (splitmix64-style odd constants) so
/// shards draw independent fault streams, yet the whole fleet is
/// reproducible from `ChaosConfig::fault_seed` alone.
fn build_machine(shared: &Shared, worker: usize, restarts: u32) -> Machine {
    let mut machine = Machine::new(&shared.config.spec);
    machine.set_integrity_mode(shared.config.integrity);
    let chaos = &shared.config.chaos;
    if let Some(seed) = chaos.fault_seed {
        if chaos.fault_rate > 0.0 {
            let mix = seed
                ^ (worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (u64::from(restarts)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            machine.set_fault_plan(Some(FaultPlan::bernoulli(mix, chaos.fault_rate)));
        }
    }
    machine
}

/// The synthetic failure a poison request triggers (chaos only): shaped
/// like a mapper rejection so it flows the same retry/bisect path a real
/// data-dependent failure would.
fn poison_error() -> ServeError {
    ServeError::Sim(SimError {
        block: "chaos.poison".to_string(),
        tile: 0,
        cycle: 0,
        cause: SimCause::Map("chaos: poison request sentinel in batch".to_string()),
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Retire a shard: flip its health flag, decrement the healthy count, and
/// — when no healthy shard remains — drain the queue with
/// [`ServeError::Degraded`], because nothing will ever run those requests.
pub(crate) fn mark_shard_dead(shared: &Shared, worker: usize) {
    shared.stats.mark_shard_dead(worker);
    let workers = shared.config.workers;
    let mut q = lock_queue(shared);
    q.healthy = q.healthy.saturating_sub(1);
    if q.healthy == 0 {
        for per_model in &mut q.queues {
            for queue in per_model.iter_mut() {
                while let Some(p) = queue.pop_front() {
                    shared.stats.degraded_sheds.fetch_add(1, Ordering::Relaxed);
                    send_reply(&shared.stats, &p.reply, Err(ServeError::Degraded { healthy: 0, workers }));
                }
            }
        }
        q.class_totals = [0; crate::overload::CLASSES];
        q.total = 0;
    }
    drop(q);
    shared.ready.notify_all();
}

/// Hand work a dying shard could not finish back to the surviving shards,
/// or fail it with [`ServeError::Degraded`] when none survive. Attempt
/// counts ride along, so the per-request retry cap holds across shards.
pub(crate) fn requeue_or_fail(shared: &Shared, model: ModelId, pendings: Vec<Pending>) {
    let workers = shared.config.workers;
    let mut q = lock_queue(shared);
    if q.healthy == 0 {
        for p in pendings {
            shared.stats.degraded_sheds.fetch_add(1, Ordering::Relaxed);
            send_reply(&shared.stats, &p.reply, Err(ServeError::Degraded { healthy: 0, workers }));
        }
        return;
    }
    for p in pendings.into_iter().rev() {
        let c = p.class.index();
        q.queues[model.0][c].push_front(p);
        q.class_totals[c] += 1;
        q.total += 1;
    }
    drop(q);
    shared.ready.notify_all();
}

/// Run one request group on the shard's machine: solo path per request
/// when the group has one member (or the layer cannot batch — every
/// standard conv), the coalesced batched path otherwise. This is the body
/// the supervisor wraps in `catch_unwind`.
fn run_group(
    shared: &Shared,
    machine: &mut Machine,
    layer: &ConvLayer,
    weights: &Tensor,
    group: &[Pending],
) -> Result<(Vec<Tensor>, LayerReport), ServeError> {
    let spec = &shared.config.spec;
    if group.len() == 1 || !batch::batchable(layer) {
        let mut outputs = Vec::with_capacity(group.len());
        let mut last_report: Option<LayerReport> = None;
        let (mut checked, mut failed, mut recovered) = (0u64, 0u64, 0u64);
        for p in group {
            let (ofm, report) = if layer.kind() == ConvKind::Standard {
                run_standard_via_im2col(layer, &p.input, weights, spec)?
            } else {
                let compiled = shared.cache.get_or_compile(layer, spec, MappingKind::Auto)?;
                compiled.run_on(machine, &p.input, weights)?
            };
            outputs.push(ofm);
            checked += report.integrity_checked;
            failed += report.integrity_failed;
            recovered += report.integrity_recovered;
            last_report = Some(report);
        }
        // The group shares one report; fold the per-request integrity
        // counters into it so none are lost.
        let mut report = last_report.expect("at least one request");
        report.integrity_checked = checked;
        report.integrity_failed = failed;
        report.integrity_recovered = recovered;
        Ok((outputs, report))
    } else {
        let b = group.len();
        let big = batch::combined_layer(layer, b);
        let inputs: Vec<&Tensor> = group.iter().map(|p| &p.input).collect();
        let big_ifm = batch::combined_ifm(layer, &inputs);
        let big_w = batch::combined_weights(layer, weights, b);
        shared
            .cache
            .get_or_compile(&big, spec, preferred_kind(&big))
            .or_else(|_| shared.cache.get_or_compile(&big, spec, MappingKind::Auto))
            .map_err(ServeError::from)
            .and_then(|compiled| compiled.run_on(machine, &big_ifm, &big_w).map_err(ServeError::from))
            .map(|(ofm, report)| (batch::split_ofm(layer, b, &ofm), report))
    }
}

/// The batched mapping to prefer for a combined layer: the §5.4
/// channel-batched DWC when it applies, the paper's per-kind best otherwise.
fn preferred_kind(layer: &ConvLayer) -> MappingKind {
    if layer.kind() == ConvKind::Depthwise && layer.s() == 1 && layer.k() * layer.k() <= npcgra_arch::grf::GRF_WORDS {
        MappingKind::BatchedDwcS1
    } else {
        MappingKind::Auto
    }
}

/// Feed one batch outcome to the shard's circuit breaker and mirror the
/// resulting state (and any open/close transition) into the stats.
fn record_breaker(shared: &Shared, worker: usize, breaker: &mut CircuitBreaker, failed: bool) {
    match breaker.record(Instant::now(), failed) {
        Some(BreakerEvent::Opened) => {
            shared.stats.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
        Some(BreakerEvent::Closed) => {
            shared.stats.breaker_closes.fetch_add(1, Ordering::Relaxed);
        }
        None => {}
    }
    shared.stats.set_breaker_state(worker, breaker.state());
}

/// Re-execute another shard's slow in-flight batch (hedged execution).
/// Replies race the primary per request: [`Delivery::Delivered`] means
/// this hedge won that request (count it — the primary will see
/// `Duplicate` and skip its own counting); `Duplicate` means the primary
/// beat us. Failures send nothing — the primary owns the error/retry
/// path, so a broken hedge shard can never fail a request the primary
/// would have completed. Returns whether execution failed (the hedging
/// shard's own breaker sample).
fn run_hedge(shared: &Shared, shard: &mut Shard, model: ModelId, pendings: Vec<Pending>) -> bool {
    let now = Instant::now();
    let live: Vec<Pending> = pendings.into_iter().filter(|p| p.deadline.is_none_or(|d| d >= now)).collect();
    if live.is_empty() {
        // Nothing worth racing; the primary handles the expiries.
        shared.stats.hedge_losses.fetch_add(1, Ordering::Release);
        return false;
    }
    let (layer, weights): (ConvLayer, Arc<Tensor>) = {
        let models = read_models(shared);
        let entry = &models[model.0];
        (entry.layer.clone(), Arc::clone(&entry.weights))
    };
    let batch_size = live.len();
    match shard.execute(shared, &layer, &weights, &live) {
        Ok((outputs, report)) => {
            let done = Instant::now();
            let mut delivered_any = false;
            for (p, output) in live.into_iter().zip(outputs) {
                let latency = done.duration_since(p.enqueued);
                let delivery = send_reply(
                    &shared.stats,
                    &p.reply,
                    Ok(Response {
                        output,
                        report: report.clone(),
                        batch_size,
                        worker: shard.worker,
                        latency,
                    }),
                );
                if delivery == Delivery::Delivered {
                    delivered_any = true;
                    shared.stats.completed.fetch_add(1, Ordering::Release);
                    shared.stats.observe_latency(latency);
                    if p.integrity_hit {
                        shared.stats.integrity_recovered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if delivered_any {
                shared.stats.hedge_wins.fetch_add(1, Ordering::Release);
            } else {
                shared.stats.hedge_losses.fetch_add(1, Ordering::Release);
            }
            false
        }
        Err(_) => {
            shared.stats.hedge_losses.fetch_add(1, Ordering::Release);
            true
        }
    }
}

/// The worker-thread body: pull work (fresh batches or hedges of other
/// shards' slow batches), run it through the retry policy, and report how
/// the thread ended. Exits `Clean` when the queue drains for shutdown,
/// `Unhealthy` when the shard's restart budget runs out mid-service or the
/// canary self-test retires it.
///
/// A per-shard circuit breaker samples batch outcomes: a shard whose
/// recent window is mostly failures stops pulling work for a cooldown,
/// then re-enters via a single probe batch. The gate is bypassed while the
/// server drains for shutdown — every queued request must still resolve.
pub(crate) fn run_worker(shared: &Arc<Shared>, worker: usize) -> WorkerExit {
    let mut shard = Shard::new(shared, worker);
    let ov = &shared.config.overload;
    let mut breaker = CircuitBreaker::new(
        ov.breaker_window,
        ov.breaker_threshold,
        ov.breaker_min_samples,
        ov.breaker_cooldown,
    );
    let canary_interval = shared.config.canary_interval;
    let mut batches = 0u64;
    while shard.alive {
        match breaker.poll(Instant::now()) {
            BreakerDecision::Allow => {}
            BreakerDecision::Probe => {
                shared.stats.breaker_probes.fetch_add(1, Ordering::Relaxed);
            }
            BreakerDecision::Wait(cooldown) => {
                if lock_queue(shared).open {
                    shared.stats.set_breaker_state(worker, breaker.state());
                    std::thread::sleep(cooldown.min(Duration::from_millis(5)));
                    continue;
                }
                // Draining: serve regardless, shutdown must complete.
            }
        }
        shared.stats.set_breaker_state(worker, breaker.state());
        // Hedge only when the latency estimate has matured and another
        // shard exists to race against.
        let hedge_threshold = if ov.hedge_quantile > 0.0 && shared.config.workers > 1 {
            overload::hedge_threshold(
                shared.stats.exec_latency_quantile(ov.hedge_quantile, ov.hedge_min_samples),
                ov.hedge_floor,
            )
        } else {
            None
        };
        match next_work(shared, worker, hedge_threshold) {
            None => return WorkerExit::Clean,
            Some(Work::Batch { model, pendings }) => {
                let busy_start = Instant::now();
                let inflight = hedge_threshold
                    .is_some()
                    .then(|| register_inflight(shared, worker, model, &pendings));
                let outcome = retry::process(shared, &mut shard, model, pendings);
                if let Some(id) = inflight {
                    remove_inflight(shared, id);
                }
                let busy = busy_start.elapsed();
                shared.stats.observe_worker_busy(worker, busy);
                if outcome.executed {
                    shared.stats.observe_exec_latency(busy);
                    record_breaker(shared, worker, &mut breaker, outcome.any_failed);
                }
                batches += 1;
                if canary_interval > 0 && batches.is_multiple_of(canary_interval) {
                    shard.run_canary(shared);
                }
            }
            Some(Work::Hedge { model, pendings }) => {
                let busy_start = Instant::now();
                let failed = run_hedge(shared, &mut shard, model, pendings);
                shared.stats.observe_worker_busy(worker, busy_start.elapsed());
                record_breaker(shared, worker, &mut breaker, failed);
            }
        }
    }
    WorkerExit::Unhealthy
}
