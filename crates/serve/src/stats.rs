//! Serving statistics: throughput, tail latency, queue depth, batch sizes
//! and per-worker utilization.
//!
//! Everything on the hot path is a relaxed atomic update; latency
//! percentiles come from a fixed log2-bucketed histogram (one bucket per
//! power of two of nanoseconds), so p50/p95/p99 are accurate to within a
//! factor of √2 with zero allocation per request.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// How a worker shard's thread ended, reported by
/// [`Server::shutdown`](crate::Server::shutdown) instead of a panic
/// cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The shard drained the queue and exited normally.
    Clean,
    /// The supervisor exhausted the shard's restart budget and retired it.
    Unhealthy,
    /// The thread died outside the supervised execution region (a bug —
    /// the supervisor is supposed to catch every batch-execution panic).
    Panicked,
}

impl std::fmt::Display for WorkerExit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerExit::Clean => write!(f, "clean"),
            WorkerExit::Unhealthy => write!(f, "unhealthy"),
            WorkerExit::Panicked => write!(f, "panicked"),
        }
    }
}

/// Number of log2 latency buckets; bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds. 2^48 ns ≈ 78 hours, far beyond any request.
const LATENCY_BUCKETS: usize = 48;

/// Live counters, shared between the submission path and the workers.
#[derive(Debug)]
pub(crate) struct Stats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub failed: AtomicU64,
    pub max_queue_depth: AtomicU64,
    /// Panics caught by the shard supervisor.
    pub panics_caught: AtomicU64,
    /// Shard respawns (a caught panic followed by a machine rebuild).
    pub restarts: AtomicU64,
    /// Batch re-executions driven by the retry/bisect policy.
    pub retries: AtomicU64,
    /// Requests isolated as poison after bisection + retry-cap exhaustion.
    pub quarantined: AtomicU64,
    /// Requests shed because the server was degraded (too few healthy
    /// shards) at admission or after a shard collapse.
    pub degraded_sheds: AtomicU64,
    /// Blocks whose outputs passed an ABFT integrity check.
    pub integrity_checked: AtomicU64,
    /// Batch executions that failed an ABFT integrity check.
    pub integrity_failed: AtomicU64,
    /// Requests that hit an integrity failure and still completed
    /// bit-exact on a later attempt (corruption caught and healed).
    pub integrity_recovered: AtomicU64,
    /// Replies dropped because the ticket was abandoned before they landed.
    pub late_replies: AtomicU64,
    /// Canary self-tests run by shards.
    pub canary_runs: AtomicU64,
    /// Canary self-tests that failed (wrong output, error or panic).
    pub canary_failed: AtomicU64,
    /// Per-shard death flags, set once when the restart budget runs out.
    shard_dead: Vec<AtomicBool>,
    latency: [AtomicU64; LATENCY_BUCKETS],
    /// `batch_hist[i]` counts batches of size `i`; index 0 is unused.
    batch_hist: Vec<AtomicU64>,
    worker_busy_ns: Vec<AtomicU64>,
}

impl Stats {
    pub(crate) fn new(workers: usize, max_batch: usize) -> Self {
        Stats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            degraded_sheds: AtomicU64::new(0),
            integrity_checked: AtomicU64::new(0),
            integrity_failed: AtomicU64::new(0),
            integrity_recovered: AtomicU64::new(0),
            late_replies: AtomicU64::new(0),
            canary_runs: AtomicU64::new(0),
            canary_failed: AtomicU64::new(0),
            shard_dead: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_hist: (0..=max_batch).map(|_| AtomicU64::new(0)).collect(),
            worker_busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn observe_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn observe_latency(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_batch(&self, size: usize) {
        let i = size.min(self.batch_hist.len() - 1);
        self.batch_hist[i].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_worker_busy(&self, worker: usize, busy: Duration) {
        self.worker_busy_ns[worker].fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn mark_shard_dead(&self, worker: usize) {
        self.shard_dead[worker].store(true, Ordering::Relaxed);
    }

    /// Latency at quantile `q` (0..1): geometric midpoint of the bucket the
    /// quantile sample falls in.
    fn latency_quantile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self.latency.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let ns = 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
                return Duration::from_nanos(ns as u64);
            }
        }
        Duration::ZERO
    }

    pub(crate) fn snapshot(&self, elapsed: Duration, queue_depth: usize) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        StatsSnapshot {
            elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            degraded_sheds: self.degraded_sheds.load(Ordering::Relaxed),
            integrity_checked: self.integrity_checked.load(Ordering::Relaxed),
            integrity_failed: self.integrity_failed.load(Ordering::Relaxed),
            integrity_recovered: self.integrity_recovered.load(Ordering::Relaxed),
            late_replies: self.late_replies.load(Ordering::Relaxed),
            canary_runs: self.canary_runs.load(Ordering::Relaxed),
            canary_failed: self.canary_failed.load(Ordering::Relaxed),
            shard_health: self.shard_dead.iter().map(|d| !d.load(Ordering::Relaxed)).collect(),
            worker_exits: Vec::new(),
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            p50: self.latency_quantile(0.50),
            p95: self.latency_quantile(0.95),
            p99: self.latency_quantile(0.99),
            queue_depth,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            batch_histogram: self.batch_hist.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            worker_utilization: self
                .worker_busy_ns
                .iter()
                .map(|b| {
                    let wall = elapsed.as_nanos().max(1) as f64;
                    (b.load(Ordering::Relaxed) as f64 / wall).min(1.0)
                })
                .collect(),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
        }
    }
}

/// A point-in-time view of the server's counters.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Wall-clock time since the server started.
    pub elapsed: Duration,
    /// Requests accepted by admission control.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests shed because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Requests shed because their deadline passed before execution.
    pub rejected_deadline: u64,
    /// Requests rejected during shutdown.
    pub rejected_shutdown: u64,
    /// Requests that failed in the simulator.
    pub failed: u64,
    /// Worker-shard panics caught by the supervisor.
    pub panics_caught: u64,
    /// Shard respawns performed by the supervisor.
    pub restarts: u64,
    /// Batch re-executions driven by the retry/bisect policy.
    pub retries: u64,
    /// Requests isolated as poison by bisection + retry-cap exhaustion.
    pub quarantined: u64,
    /// Requests shed in degraded mode (too few healthy shards).
    pub degraded_sheds: u64,
    /// Blocks whose outputs passed an ABFT integrity check.
    pub integrity_checked: u64,
    /// Batch executions that failed an ABFT integrity check (each feeds
    /// the retry/bisect policy as a retryable failure).
    pub integrity_failed: u64,
    /// Requests that hit an integrity failure and still completed
    /// bit-exact on a later attempt.
    pub integrity_recovered: u64,
    /// Replies dropped because their ticket was abandoned first.
    pub late_replies: u64,
    /// Canary self-tests run by shards.
    pub canary_runs: u64,
    /// Canary self-tests failed (a failing shard is retired
    /// [`WorkerExit::Unhealthy`] after two consecutive strikes).
    pub canary_failed: u64,
    /// `shard_health[w]` is `false` once worker `w` exhausted its restart
    /// budget and was retired by the supervisor.
    pub shard_health: Vec<bool>,
    /// How each worker thread ended. Empty until
    /// [`Server::shutdown`](crate::Server::shutdown) joins the workers.
    pub worker_exits: Vec<WorkerExit>,
    /// Completed requests per second of server lifetime.
    pub throughput_rps: f64,
    /// Median request latency (log2-bucket approximation).
    pub p50: Duration,
    /// 95th-percentile request latency.
    pub p95: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Requests queued at snapshot time.
    pub queue_depth: usize,
    /// Largest queue depth observed.
    pub max_queue_depth: u64,
    /// `batch_histogram[i]` = number of batches run with exactly `i`
    /// requests (index 0 unused).
    pub batch_histogram: Vec<u64>,
    /// Fraction of wall-clock time each worker shard spent executing.
    pub worker_utilization: Vec<f64>,
    /// Program-cache hits (filled in by the server).
    pub cache_hits: u64,
    /// Program-cache misses, i.e. compilations (filled in by the server).
    pub cache_misses: u64,
    /// Programs evicted from the bounded cache (filled in by the server).
    pub cache_evictions: u64,
}

impl StatsSnapshot {
    /// Number of worker shards still healthy (restart budget not exhausted).
    #[must_use]
    pub fn healthy_workers(&self) -> usize {
        self.shard_health.iter().filter(|h| **h).count()
    }

    /// Cache hit rate in `[0, 1]`; zero when the cache was never consulted.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean batch size over all batches run.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        let batches: u64 = self.batch_histogram.iter().sum();
        if batches == 0 {
            return 0.0;
        }
        let requests: u64 = self.batch_histogram.iter().enumerate().map(|(i, c)| i as u64 * c).sum();
        requests as f64 / batches as f64
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} completed, {} failed ({:.1} req/s over {:.2}s)",
            self.submitted,
            self.completed,
            self.failed,
            self.throughput_rps,
            self.elapsed.as_secs_f64(),
        )?;
        writeln!(
            f,
            "shed:     {} queue-full, {} deadline, {} shutdown",
            self.rejected_queue_full, self.rejected_deadline, self.rejected_shutdown
        )?;
        writeln!(
            f,
            "latency:  p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
        )?;
        writeln!(
            f,
            "queue:    {} now, {} peak (capacity bound applied at admission)",
            self.queue_depth, self.max_queue_depth
        )?;
        let batches: Vec<String> = self
            .batch_histogram
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, c)| format!("{i}:{c}"))
            .collect();
        writeln!(
            f,
            "batches:  sizes {{{}}} (mean {:.2})",
            batches.join(" "),
            self.mean_batch_size()
        )?;
        writeln!(
            f,
            "cache:    {} hits / {} misses / {} evictions (hit rate {:.1}%)",
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "faults:   {} panics caught, {} restarts, {} retries, {} quarantined, {} degraded sheds",
            self.panics_caught, self.restarts, self.retries, self.quarantined, self.degraded_sheds
        )?;
        writeln!(
            f,
            "abft:     {} blocks checked, {} failures detected, {} requests recovered; \
             {} canary runs ({} failed); {} late replies",
            self.integrity_checked,
            self.integrity_failed,
            self.integrity_recovered,
            self.canary_runs,
            self.canary_failed,
            self.late_replies
        )?;
        writeln!(
            f,
            "health:   {}/{} shards healthy",
            self.healthy_workers(),
            self.shard_health.len()
        )?;
        if !self.worker_exits.is_empty() {
            let exits: Vec<String> = self
                .worker_exits
                .iter()
                .enumerate()
                .map(|(i, e)| format!("w{i}:{e}"))
                .collect();
            writeln!(f, "exits:    {}", exits.join(" "))?;
        }
        let utils: Vec<String> = self
            .worker_utilization
            .iter()
            .enumerate()
            .map(|(i, u)| format!("w{i}:{:.0}%", u * 100.0))
            .collect();
        write!(
            f,
            "workers:  {}",
            if utils.is_empty() {
                "none".to_string()
            } else {
                utils.join(" ")
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_order() {
        let s = Stats::new(1, 4);
        for us in [100u64, 200, 400, 800, 10_000] {
            s.observe_latency(Duration::from_micros(us));
        }
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert!(snap.p50 <= snap.p95);
        assert!(snap.p95 <= snap.p99);
        assert!(snap.p99 >= Duration::from_micros(5_000), "p99 lands in the top bucket");
    }

    #[test]
    fn bucket_approximation_within_sqrt2() {
        let s = Stats::new(1, 4);
        s.observe_latency(Duration::from_micros(1000));
        let p50 = s.snapshot(Duration::from_secs(1), 0).p50;
        let ratio = p50.as_nanos() as f64 / 1_000_000.0;
        assert!(
            (1.0 / std::f64::consts::SQRT_2..=std::f64::consts::SQRT_2).contains(&ratio),
            "ratio {ratio}"
        );
    }

    #[test]
    fn batch_histogram_and_mean() {
        let s = Stats::new(2, 4);
        s.observe_batch(1);
        s.observe_batch(4);
        s.observe_batch(4);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(snap.batch_histogram[1], 1);
        assert_eq!(snap.batch_histogram[4], 2);
        assert!((snap.mean_batch_size() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_bounded() {
        let s = Stats::new(1, 2);
        s.observe_worker_busy(0, Duration::from_secs(10));
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert!((snap.worker_utilization[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = Stats::new(2, 4);
        s.completed.fetch_add(3, Ordering::Relaxed);
        let text = s.snapshot(Duration::from_secs(1), 1).to_string();
        assert!(text.contains("p99"));
        assert!(text.contains("hit rate"));
        assert!(text.contains("w1:"));
        assert!(text.contains("quarantined"));
        assert!(text.contains("2/2 shards healthy"));
        assert!(text.contains("abft:"));
        assert!(text.contains("late replies"));
    }

    #[test]
    fn shard_death_flips_health() {
        let s = Stats::new(3, 4);
        s.mark_shard_dead(1);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(snap.shard_health, vec![true, false, true]);
        assert_eq!(snap.healthy_workers(), 2);
        assert!(snap.to_string().contains("2/3 shards healthy"));
        // Exits list is absent until shutdown fills it in.
        assert!(snap.worker_exits.is_empty());
        let mut snap = snap;
        snap.worker_exits = vec![WorkerExit::Clean, WorkerExit::Unhealthy, WorkerExit::Clean];
        assert!(snap.to_string().contains("w1:unhealthy"));
    }
}
