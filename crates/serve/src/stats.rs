//! Serving statistics: throughput, tail latency, queue depth, batch sizes
//! and per-worker utilization.
//!
//! Everything on the hot path is a relaxed atomic update; latency
//! percentiles come from a fixed log2-bucketed histogram (one bucket per
//! power of two of nanoseconds), so p50/p95/p99 are accurate to within a
//! factor of √2 with zero allocation per request.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

use npcgra_sim::BackendTier;

use crate::overload::{BreakerState, BrownoutLevel, CLASSES};

/// How a worker shard's thread ended, reported by
/// [`Server::shutdown`](crate::Server::shutdown) instead of a panic
/// cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The shard drained the queue and exited normally.
    Clean,
    /// The supervisor exhausted the shard's restart budget and retired it.
    Unhealthy,
    /// The thread died outside the supervised execution region (a bug —
    /// the supervisor is supposed to catch every batch-execution panic).
    Panicked,
}

impl std::fmt::Display for WorkerExit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerExit::Clean => write!(f, "clean"),
            WorkerExit::Unhealthy => write!(f, "unhealthy"),
            WorkerExit::Panicked => write!(f, "panicked"),
        }
    }
}

/// Number of log2 latency buckets; bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds. 2^48 ns ≈ 78 hours, far beyond any request.
const LATENCY_BUCKETS: usize = 48;

/// Fixed-point scale for the per-shard health EWMA (six decimal digits).
const HEALTH_SCALE: f64 = 1e6;

/// Healthy batch timings required before the ns-per-cycle estimate (and
/// therefore the watchdog's wall deadline) is trusted. Shared with the
/// pipeline's per-stage calibration so both watchdogs arm on the same
/// evidence bar.
pub(crate) const CALIBRATION_MIN_SAMPLES: u64 = 4;

/// Per-tenant outcome counters, written by a front-end (e.g.
/// `npcgra-net`) through its [`TenantHandle`]. Writes use `Release` and
/// the snapshot reads `Acquire` — the same discipline as
/// `admitted_by_class`, so a tenant admission that happened-before a
/// captured completion is visible in the same snapshot.
#[derive(Debug)]
struct TenantCell {
    name: String,
    admitted: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    evicted_slow_loris: AtomicU64,
}

/// A front-end's write handle to one tenant's counters. Cheap to clone;
/// obtained from [`Server::register_tenant`](crate::Server::register_tenant).
#[derive(Debug, Clone)]
pub struct TenantHandle(Arc<TenantCell>);

impl TenantHandle {
    /// Count a request admitted into the serving core for this tenant.
    pub fn note_admitted(&self) {
        self.0.admitted.fetch_add(1, Ordering::Release);
    }
    /// Count a request rejected (quota, backpressure, or a serving-core
    /// rejection) for this tenant.
    pub fn note_rejected(&self) {
        self.0.rejected.fetch_add(1, Ordering::Release);
    }
    /// Count a request shed by this tenant's token bucket.
    pub fn note_rate_limited(&self) {
        self.0.rate_limited.fetch_add(1, Ordering::Release);
    }
    /// Count a slow-loris eviction of a connection authenticated as this
    /// tenant.
    pub fn note_evicted_slow_loris(&self) {
        self.0.evicted_slow_loris.fetch_add(1, Ordering::Release);
    }
}

/// One tenant's counters as captured in a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant's registered name.
    pub name: String,
    /// Requests admitted into the serving core.
    pub admitted: u64,
    /// Requests rejected (quota, backpressure or serving-core rejection).
    pub rejected: u64,
    /// Requests shed by the tenant's token bucket.
    pub rate_limited: u64,
    /// Slow-loris evictions of connections authenticated as this tenant.
    pub evicted_slow_loris: u64,
}

/// Live counters, shared between the submission path and the workers.
#[derive(Debug)]
pub(crate) struct Stats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub failed: AtomicU64,
    pub max_queue_depth: AtomicU64,
    /// Panics caught by the shard supervisor.
    pub panics_caught: AtomicU64,
    /// Shard respawns (a caught panic followed by a machine rebuild).
    pub restarts: AtomicU64,
    /// Batch re-executions driven by the retry/bisect policy.
    pub retries: AtomicU64,
    /// Requests isolated as poison after bisection + retry-cap exhaustion.
    pub quarantined: AtomicU64,
    /// Requests shed because the server was degraded (too few healthy
    /// shards) at admission or after a shard collapse.
    pub degraded_sheds: AtomicU64,
    /// Blocks whose outputs passed an ABFT integrity check.
    pub integrity_checked: AtomicU64,
    /// Batch executions that failed an ABFT integrity check.
    pub integrity_failed: AtomicU64,
    /// Requests that hit an integrity failure and still completed
    /// bit-exact on a later attempt (corruption caught and healed).
    pub integrity_recovered: AtomicU64,
    /// Replies dropped because the ticket was abandoned before they landed.
    pub late_replies: AtomicU64,
    /// Canary self-tests run by shards.
    pub canary_runs: AtomicU64,
    /// Canary self-tests that failed (wrong output, error or panic).
    pub canary_failed: AtomicU64,
    /// Requests admitted, by priority class.
    pub admitted_by_class: [AtomicU64; CLASSES],
    /// Requests shed at admission by the brownout ladder, by class.
    pub overload_sheds: [AtomicU64; CLASSES],
    /// Queued lower-priority requests evicted to admit a higher class.
    pub priority_evictions: AtomicU64,
    /// Brownout-ladder climbs (one per sustained-overload window).
    pub brownout_escalations: AtomicU64,
    /// Brownout-ladder descents (one per quiet window).
    pub brownout_deescalations: AtomicU64,
    /// Current brownout rung, as [`BrownoutLevel`]'s dense step.
    brownout_gauge: AtomicU64,
    /// Circuit-breaker trips across all shards.
    pub breaker_opens: AtomicU64,
    /// Breaker recoveries (a probe batch succeeded).
    pub breaker_closes: AtomicU64,
    /// Probe batches dispatched by half-open breakers.
    pub breaker_probes: AtomicU64,
    /// Hedge batches dispatched to a second shard.
    pub hedges_dispatched: AtomicU64,
    /// Hedge batches that delivered at least one winning (first) reply.
    pub hedge_wins: AtomicU64,
    /// Hedge batches whose every reply lost the race (or that failed).
    pub hedge_losses: AtomicU64,
    /// Batches preempted by the liveness layer — the watchdog cancelling a
    /// stuck run's token, or a run blowing its cycle budget.
    pub watchdog_preemptions: AtomicU64,
    /// Per-shard health EWMA in `[0, 1]` (scaled by [`HEALTH_SCALE`]):
    /// 1.0 = every batch lands within its predicted time; preemptions and
    /// gross slowdowns pull it toward 0.
    health_score: Vec<AtomicU64>,
    /// Observed wall nanoseconds per predicted compute cycle, as `f64`
    /// bits — the watchdog's cycles→wall conversion factor. One EWMA per
    /// backend tier (indexed by [`BackendTier::index`]): the fast tier runs
    /// orders of magnitude more cycles per wall second, so sharing one
    /// estimate across a tier switch would arm absurd deadlines and
    /// preempt honest batches.
    ns_per_cycle_bits: [AtomicU64; BackendTier::COUNT],
    /// Batch timings folded into each tier's ns-per-cycle estimate so far.
    calibration_samples: [AtomicU64; BackendTier::COUNT],
    /// Compute+DMA cycles charged by successful runs, per backend tier.
    cycles_charged: [AtomicU64; BackendTier::COUNT],
    /// Fast-tier batches replayed on a scratch cycle-accurate machine.
    pub cross_checks: AtomicU64,
    /// Cross-check replays that diverged (output bits or charged cycles) —
    /// each retires the shard that produced the fast-tier result.
    pub cross_check_failed: AtomicU64,
    /// Per-shard death flags, set once when the restart budget runs out.
    shard_dead: Vec<AtomicBool>,
    /// Per-shard breaker state gauge (the [`BreakerState`] dense index).
    breaker_state: Vec<AtomicU64>,
    /// Records appended to the admission journal (admits + acks). These
    /// six journal counters are mirrored from the writer's monotone totals
    /// under the journal lock (`Relaxed` stores), so they are all zero on
    /// a journal-less server by construction.
    pub journal_appends: AtomicU64,
    /// fsync batches the journal writer issued.
    pub journal_fsyncs: AtomicU64,
    /// Journal bytes made durable (fsynced file length).
    pub journal_bytes: AtomicU64,
    /// Admitted-but-unacknowledged requests replayed at recovery.
    pub journal_replayed: AtomicU64,
    /// Journal I/O failures absorbed at runtime (append/flush/sever).
    pub journal_errors: AtomicU64,
    /// Requests answered from the idempotency dedup table (redelivery of a
    /// remembered outcome, or a duplicate parked on the owning execution).
    pub dedup_hits: AtomicU64,
    /// Times two executions completed the same idempotency key — the
    /// exactly-once invariant failing. The crash soak gates on zero.
    pub duplicate_executions: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    /// Batch *execution* times (dequeue to reply), feeding the hedge
    /// threshold quantile — distinct from `latency`, which includes queueing.
    exec_latency: [AtomicU64; LATENCY_BUCKETS],
    /// `batch_hist[i]` counts batches of size `i`; index 0 is unused.
    batch_hist: Vec<AtomicU64>,
    worker_busy_ns: Vec<AtomicU64>,
    /// Tenants registered by a front-end; empty (and cost-free) without one.
    tenants: RwLock<Vec<Arc<TenantCell>>>,
}

impl Stats {
    pub(crate) fn new(workers: usize, max_batch: usize) -> Self {
        Stats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            degraded_sheds: AtomicU64::new(0),
            integrity_checked: AtomicU64::new(0),
            integrity_failed: AtomicU64::new(0),
            integrity_recovered: AtomicU64::new(0),
            late_replies: AtomicU64::new(0),
            canary_runs: AtomicU64::new(0),
            canary_failed: AtomicU64::new(0),
            admitted_by_class: std::array::from_fn(|_| AtomicU64::new(0)),
            overload_sheds: std::array::from_fn(|_| AtomicU64::new(0)),
            priority_evictions: AtomicU64::new(0),
            brownout_escalations: AtomicU64::new(0),
            brownout_deescalations: AtomicU64::new(0),
            brownout_gauge: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            breaker_closes: AtomicU64::new(0),
            breaker_probes: AtomicU64::new(0),
            hedges_dispatched: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            hedge_losses: AtomicU64::new(0),
            watchdog_preemptions: AtomicU64::new(0),
            health_score: (0..workers).map(|_| AtomicU64::new(HEALTH_SCALE as u64)).collect(),
            ns_per_cycle_bits: std::array::from_fn(|_| AtomicU64::new(0f64.to_bits())),
            calibration_samples: std::array::from_fn(|_| AtomicU64::new(0)),
            cycles_charged: std::array::from_fn(|_| AtomicU64::new(0)),
            cross_checks: AtomicU64::new(0),
            cross_check_failed: AtomicU64::new(0),
            shard_dead: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            breaker_state: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            journal_appends: AtomicU64::new(0),
            journal_fsyncs: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            journal_replayed: AtomicU64::new(0),
            journal_errors: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            duplicate_executions: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            exec_latency: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_hist: (0..=max_batch).map(|_| AtomicU64::new(0)).collect(),
            worker_busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            tenants: RwLock::new(Vec::new()),
        }
    }

    /// Register a tenant and return its write handle. Registration is
    /// rare (front-end startup), so a write lock here is fine; the
    /// handle's increments are lock-free.
    pub(crate) fn register_tenant(&self, name: &str) -> TenantHandle {
        let cell = Arc::new(TenantCell {
            name: name.to_string(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            evicted_slow_loris: AtomicU64::new(0),
        });
        self.tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&cell));
        TenantHandle(cell)
    }

    fn tenant_snapshots(&self) -> Vec<TenantSnapshot> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|t| TenantSnapshot {
                name: t.name.clone(),
                admitted: t.admitted.load(Ordering::Acquire),
                rejected: t.rejected.load(Ordering::Acquire),
                rate_limited: t.rate_limited.load(Ordering::Acquire),
                evicted_slow_loris: t.evicted_slow_loris.load(Ordering::Acquire),
            })
            .collect()
    }

    pub(crate) fn observe_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn observe_latency(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_exec_latency(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.exec_latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Batch execution time at quantile `q`, once at least `min_samples`
    /// executions were observed — the hedge threshold's input. `None` until
    /// the estimate is trustworthy (hedging on noise doubles load for
    /// nothing).
    pub(crate) fn exec_latency_quantile(&self, q: f64, min_samples: u64) -> Option<Duration> {
        let counts: Vec<u64> = self.exec_latency.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total < min_samples.max(1) {
            return None;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let ns = 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
                return Some(Duration::from_nanos(ns as u64));
            }
        }
        None
    }

    pub(crate) fn set_brownout_level(&self, level: BrownoutLevel) {
        let step = BrownoutLevel::ALL.iter().position(|&l| l == level).unwrap_or(0);
        self.brownout_gauge.store(step as u64, Ordering::Relaxed);
    }

    pub(crate) fn set_breaker_state(&self, worker: usize, state: BreakerState) {
        let code = match state {
            BreakerState::Closed => 0u64,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        self.breaker_state[worker].store(code, Ordering::Relaxed);
    }

    pub(crate) fn observe_batch(&self, size: usize) {
        let i = size.min(self.batch_hist.len() - 1);
        self.batch_hist[i].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_worker_busy(&self, worker: usize, busy: Duration) {
        self.worker_busy_ns[worker].fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn mark_shard_dead(&self, worker: usize) {
        self.shard_dead[worker].store(true, Ordering::Relaxed);
    }

    /// Fold one executed batch's timing into `tier`'s ns-per-cycle EWMA
    /// that converts predicted compute cycles into a wall-clock deadline.
    /// The update is load-then-store (a lost race drops one sample, which
    /// the EWMA absorbs).
    pub(crate) fn observe_run_timing(&self, tier: BackendTier, predicted_cycles: u64, wall: Duration, alpha: f64) {
        if predicted_cycles == 0 {
            return;
        }
        let t = tier.index();
        let obs = wall.as_nanos() as f64 / predicted_cycles as f64;
        let old = f64::from_bits(self.ns_per_cycle_bits[t].load(Ordering::Relaxed));
        let new = if self.calibration_samples[t].fetch_add(1, Ordering::Relaxed) == 0 {
            obs
        } else {
            old + alpha * (obs - old)
        };
        self.ns_per_cycle_bits[t].store(new.to_bits(), Ordering::Relaxed);
    }

    /// The calibrated ns-per-cycle estimate for `tier`, or `None` until
    /// enough healthy batches have been timed on that tier — an unarmed
    /// watchdog beats a trigger-happy one, and a freshly switched tier
    /// starts uncalibrated rather than inheriting the other tier's slope.
    pub(crate) fn ns_per_cycle(&self, tier: BackendTier) -> Option<f64> {
        let t = tier.index();
        if self.calibration_samples[t].load(Ordering::Relaxed) < CALIBRATION_MIN_SAMPLES {
            return None;
        }
        let v = f64::from_bits(self.ns_per_cycle_bits[t].load(Ordering::Relaxed));
        (v > 0.0).then_some(v)
    }

    /// Account the cycles a successful run charged against its tier.
    pub(crate) fn observe_cycles_charged(&self, tier: BackendTier, cycles: u64) {
        self.cycles_charged[tier.index()].fetch_add(cycles, Ordering::Relaxed);
    }

    /// Fold one health observation (`[0, 1]`: 1.0 = on-time batch, 0.0 =
    /// preemption/canary strike) into a shard's EWMA.
    pub(crate) fn observe_health_sample(&self, worker: usize, obs: f64, alpha: f64) {
        let obs = obs.clamp(0.0, 1.0);
        let cell = &self.health_score[worker];
        let old = cell.load(Ordering::Relaxed) as f64 / HEALTH_SCALE;
        let new = old + alpha * (obs - old);
        cell.store((new * HEALTH_SCALE) as u64, Ordering::Relaxed);
    }

    /// A shard's raw health EWMA in `[0, 1]`.
    pub(crate) fn health_score(&self, worker: usize) -> f64 {
        self.health_score[worker].load(Ordering::Relaxed) as f64 / HEALTH_SCALE
    }

    /// A shard's health as seen by hedge routing: the EWMA, zeroed while
    /// the shard is dead or its circuit breaker is open (routing a hedge
    /// at either is wasted work by construction).
    pub(crate) fn effective_health(&self, worker: usize) -> f64 {
        if self.shard_dead[worker].load(Ordering::Relaxed) || self.breaker_state[worker].load(Ordering::Relaxed) == 1 {
            return 0.0;
        }
        self.health_score(worker)
    }

    /// Latency at quantile `q` (0..1): geometric midpoint of the bucket the
    /// quantile sample falls in.
    fn latency_quantile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self.latency.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let ns = 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
                return Duration::from_nanos(ns as u64);
            }
        }
        Duration::ZERO
    }

    pub(crate) fn snapshot(&self, elapsed: Duration, queue_depth: usize) -> StatsSnapshot {
        // Capture order matters for self-consistency: load the *sink*
        // counters (completed/failed/quarantined — written with `Release`
        // after the request was admitted) with `Acquire` first, then the
        // source counter (`submitted`) last. Any admission that
        // happened-before a captured completion is then guaranteed visible,
        // so derived ratios and the debug invariants below never see
        // `completed > submitted` mid-flight.
        let completed = self.completed.load(Ordering::Acquire);
        let failed = self.failed.load(Ordering::Acquire);
        let quarantined = self.quarantined.load(Ordering::Acquire);
        let hedge_wins = self.hedge_wins.load(Ordering::Acquire);
        let hedge_losses = self.hedge_losses.load(Ordering::Acquire);
        let hedges_dispatched = self.hedges_dispatched.load(Ordering::Relaxed);
        let admitted_by_class = std::array::from_fn(|c| self.admitted_by_class[c].load(Ordering::Acquire));
        // Tenant counters are sinks too (written Release by the front-end
        // after its admission decision), so they join the Acquire phase.
        let tenants = self.tenant_snapshots();
        let mut snap = StatsSnapshot {
            tenants,
            elapsed,
            completed,
            failed,
            quarantined,
            hedges_dispatched,
            hedge_wins,
            hedge_losses,
            admitted_by_class,
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded_sheds: self.degraded_sheds.load(Ordering::Relaxed),
            overload_sheds: std::array::from_fn(|c| self.overload_sheds[c].load(Ordering::Relaxed)),
            priority_evictions: self.priority_evictions.load(Ordering::Relaxed),
            brownout_escalations: self.brownout_escalations.load(Ordering::Relaxed),
            brownout_deescalations: self.brownout_deescalations.load(Ordering::Relaxed),
            brownout_level: BrownoutLevel::ALL
                [(self.brownout_gauge.load(Ordering::Relaxed) as usize).min(BrownoutLevel::ALL.len() - 1)],
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            breaker_probes: self.breaker_probes.load(Ordering::Relaxed),
            breaker_states: self
                .breaker_state
                .iter()
                .map(|s| match s.load(Ordering::Relaxed) {
                    1 => BreakerState::Open,
                    2 => BreakerState::HalfOpen,
                    _ => BreakerState::Closed,
                })
                .collect(),
            integrity_checked: self.integrity_checked.load(Ordering::Relaxed),
            integrity_failed: self.integrity_failed.load(Ordering::Relaxed),
            integrity_recovered: self.integrity_recovered.load(Ordering::Relaxed),
            late_replies: self.late_replies.load(Ordering::Relaxed),
            canary_runs: self.canary_runs.load(Ordering::Relaxed),
            canary_failed: self.canary_failed.load(Ordering::Relaxed),
            watchdog_preemptions: self.watchdog_preemptions.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_fsyncs: self.journal_fsyncs.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            journal_replayed: self.journal_replayed.load(Ordering::Relaxed),
            journal_errors: self.journal_errors.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            duplicate_executions: self.duplicate_executions.load(Ordering::Relaxed),
            shard_health_score: (0..self.health_score.len()).map(|w| self.health_score(w)).collect(),
            ns_per_cycle: std::array::from_fn(|t| self.ns_per_cycle(BackendTier::ALL[t]).unwrap_or(0.0)),
            cycles_charged: std::array::from_fn(|t| self.cycles_charged[t].load(Ordering::Relaxed)),
            cross_checks: self.cross_checks.load(Ordering::Relaxed),
            cross_check_failed: self.cross_check_failed.load(Ordering::Relaxed),
            shard_health: self.shard_dead.iter().map(|d| !d.load(Ordering::Relaxed)).collect(),
            worker_exits: Vec::new(),
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            p50: self.latency_quantile(0.50),
            p95: self.latency_quantile(0.95),
            p99: self.latency_quantile(0.99),
            queue_depth,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            batch_histogram: self.batch_hist.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            worker_utilization: self
                .worker_busy_ns
                .iter()
                .map(|b| {
                    let wall = elapsed.as_nanos().max(1) as f64;
                    (b.load(Ordering::Relaxed) as f64 / wall).min(1.0)
                })
                .collect(),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            // Loaded last; see the capture-order note above.
            submitted: 0,
        };
        snap.submitted = self.submitted.load(Ordering::Relaxed);
        snap.debug_assert_consistent();
        snap
    }
}

/// A point-in-time view of the server's counters.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Wall-clock time since the server started.
    pub elapsed: Duration,
    /// Requests accepted by admission control.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests shed because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Requests shed because their deadline passed before execution.
    pub rejected_deadline: u64,
    /// Requests rejected during shutdown.
    pub rejected_shutdown: u64,
    /// Requests that failed in the simulator.
    pub failed: u64,
    /// Worker-shard panics caught by the supervisor.
    pub panics_caught: u64,
    /// Shard respawns performed by the supervisor.
    pub restarts: u64,
    /// Batch re-executions driven by the retry/bisect policy.
    pub retries: u64,
    /// Requests isolated as poison by bisection + retry-cap exhaustion.
    pub quarantined: u64,
    /// Requests shed in degraded mode (too few healthy shards).
    pub degraded_sheds: u64,
    /// Blocks whose outputs passed an ABFT integrity check.
    pub integrity_checked: u64,
    /// Batch executions that failed an ABFT integrity check (each feeds
    /// the retry/bisect policy as a retryable failure).
    pub integrity_failed: u64,
    /// Requests that hit an integrity failure and still completed
    /// bit-exact on a later attempt.
    pub integrity_recovered: u64,
    /// Replies dropped because their ticket was abandoned first.
    pub late_replies: u64,
    /// Canary self-tests run by shards.
    pub canary_runs: u64,
    /// Canary self-tests failed (a failing shard is retired
    /// [`WorkerExit::Unhealthy`] after two consecutive strikes).
    pub canary_failed: u64,
    /// Requests admitted, indexed by [`Priority`](crate::Priority) class
    /// (`[interactive, batch, best-effort]`).
    pub admitted_by_class: [u64; CLASSES],
    /// Requests shed at admission by the brownout ladder, by class.
    pub overload_sheds: [u64; CLASSES],
    /// Queued lower-priority requests evicted to admit a higher class
    /// through a full queue.
    pub priority_evictions: u64,
    /// Brownout-ladder climbs (one per sustained-overload window).
    pub brownout_escalations: u64,
    /// Brownout-ladder descents (one per quiet window).
    pub brownout_deescalations: u64,
    /// The brownout rung in force at snapshot time.
    pub brownout_level: BrownoutLevel,
    /// Circuit-breaker trips across all shards.
    pub breaker_opens: u64,
    /// Breaker recoveries (a probe batch succeeded).
    pub breaker_closes: u64,
    /// Probe batches dispatched by half-open breakers.
    pub breaker_probes: u64,
    /// Each shard's breaker state at snapshot time.
    pub breaker_states: Vec<BreakerState>,
    /// Hedge batches dispatched to a second shard.
    pub hedges_dispatched: u64,
    /// Hedge batches that delivered at least one winning (first) reply.
    pub hedge_wins: u64,
    /// Hedge batches whose every reply lost the race (or that failed).
    pub hedge_losses: u64,
    /// Batches preempted by the liveness layer (the watchdog cancelling a
    /// stuck run, or a run exceeding its cycle budget).
    pub watchdog_preemptions: u64,
    /// Records appended to the admission journal (admits + acks); zero on
    /// a journal-less server.
    pub journal_appends: u64,
    /// fsync batches the journal writer issued.
    pub journal_fsyncs: u64,
    /// Journal bytes made durable (fsynced file length).
    pub journal_bytes: u64,
    /// Admitted-but-unacknowledged requests recovered from the journal at
    /// startup (set by [`Server::start_with_journal`](crate::Server::start_with_journal)).
    pub journal_replayed: u64,
    /// Journal I/O failures absorbed at runtime instead of failing requests.
    pub journal_errors: u64,
    /// Requests answered from the idempotency dedup table instead of
    /// executing (bit-exact redelivery or parked duplicates).
    pub dedup_hits: u64,
    /// Times two executions completed the same idempotency key — the
    /// exactly-once invariant failing. The crash soak gates on zero.
    pub duplicate_executions: u64,
    /// Each shard's health EWMA in `[0, 1]` (1.0 = every batch on time;
    /// preemptions and gross slowdowns pull it down).
    pub shard_health_score: Vec<f64>,
    /// Calibrated wall nanoseconds per predicted compute cycle, one slot
    /// per backend tier (indexed by [`BackendTier::index`]); `0.0` until
    /// enough batches were timed on that tier.
    pub ns_per_cycle: [f64; BackendTier::COUNT],
    /// Compute+DMA cycles charged by successful runs, per backend tier
    /// (indexed by [`BackendTier::index`]).
    pub cycles_charged: [u64; BackendTier::COUNT],
    /// Fast-tier batches replayed on a scratch cycle-accurate machine.
    pub cross_checks: u64,
    /// Cross-check replays that diverged in output bits or charged cycles
    /// (each one retired the shard that produced the fast-tier result).
    pub cross_check_failed: u64,
    /// `shard_health[w]` is `false` once worker `w` exhausted its restart
    /// budget and was retired by the supervisor.
    pub shard_health: Vec<bool>,
    /// How each worker thread ended. Empty until
    /// [`Server::shutdown`](crate::Server::shutdown) joins the workers.
    pub worker_exits: Vec<WorkerExit>,
    /// Completed requests per second of server lifetime.
    pub throughput_rps: f64,
    /// Median request latency (log2-bucket approximation).
    pub p50: Duration,
    /// 95th-percentile request latency.
    pub p95: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Requests queued at snapshot time.
    pub queue_depth: usize,
    /// Largest queue depth observed.
    pub max_queue_depth: u64,
    /// `batch_histogram[i]` = number of batches run with exactly `i`
    /// requests (index 0 unused).
    pub batch_histogram: Vec<u64>,
    /// Fraction of wall-clock time each worker shard spent executing.
    pub worker_utilization: Vec<f64>,
    /// Program-cache hits (filled in by the server).
    pub cache_hits: u64,
    /// Program-cache misses, i.e. compilations (filled in by the server).
    pub cache_misses: u64,
    /// Programs evicted from the bounded cache (filled in by the server).
    pub cache_evictions: u64,
    /// Per-tenant outcome counters, in registration order. Empty unless a
    /// front-end registered tenants via
    /// [`Server::register_tenant`](crate::Server::register_tenant).
    pub tenants: Vec<TenantSnapshot>,
}

impl StatsSnapshot {
    /// Number of worker shards still healthy (restart budget not exhausted).
    #[must_use]
    pub fn healthy_workers(&self) -> usize {
        self.shard_health.iter().filter(|h| **h).count()
    }

    /// Cache hit rate in `[0, 1]`; zero when the cache was never consulted.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Debug-only self-consistency check on the captured counters. The
    /// capture order in `Stats::snapshot` makes these monotonic invariants
    /// hold even mid-flight; release builds skip the check.
    pub(crate) fn debug_assert_consistent(&self) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.completed + self.failed <= self.submitted,
                "resolved ({} + {}) exceeds submitted ({})",
                self.completed,
                self.failed,
                self.submitted
            );
            debug_assert!(
                self.quarantined <= self.failed,
                "quarantined ({}) exceeds failed ({})",
                self.quarantined,
                self.failed
            );
            debug_assert!(
                self.admitted_by_class.iter().sum::<u64>() <= self.submitted,
                "per-class admissions exceed submitted"
            );
            debug_assert!(
                self.hedge_wins + self.hedge_losses <= self.hedges_dispatched,
                "hedge outcomes ({} + {}) exceed dispatches ({})",
                self.hedge_wins,
                self.hedge_losses,
                self.hedges_dispatched
            );
        }
    }

    /// Mean batch size over all batches run.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        let batches: u64 = self.batch_histogram.iter().sum();
        if batches == 0 {
            return 0.0;
        }
        let requests: u64 = self.batch_histogram.iter().enumerate().map(|(i, c)| i as u64 * c).sum();
        requests as f64 / batches as f64
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} completed, {} failed ({:.1} req/s over {:.2}s)",
            self.submitted,
            self.completed,
            self.failed,
            self.throughput_rps,
            self.elapsed.as_secs_f64(),
        )?;
        writeln!(
            f,
            "shed:     {} queue-full, {} deadline, {} shutdown",
            self.rejected_queue_full, self.rejected_deadline, self.rejected_shutdown
        )?;
        writeln!(
            f,
            "latency:  p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
        )?;
        writeln!(
            f,
            "queue:    {} now, {} peak (capacity bound applied at admission)",
            self.queue_depth, self.max_queue_depth
        )?;
        let batches: Vec<String> = self
            .batch_histogram
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, c)| format!("{i}:{c}"))
            .collect();
        writeln!(
            f,
            "batches:  sizes {{{}}} (mean {:.2})",
            batches.join(" "),
            self.mean_batch_size()
        )?;
        writeln!(
            f,
            "cache:    {} hits / {} misses / {} evictions (hit rate {:.1}%)",
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "faults:   {} panics caught, {} restarts, {} retries, {} quarantined, {} degraded sheds",
            self.panics_caught, self.restarts, self.retries, self.quarantined, self.degraded_sheds
        )?;
        writeln!(
            f,
            "overload: level {} ({}↑ {}↓); admitted i:{} b:{} be:{}; shed i:{} b:{} be:{}; {} evictions",
            self.brownout_level,
            self.brownout_escalations,
            self.brownout_deescalations,
            self.admitted_by_class[0],
            self.admitted_by_class[1],
            self.admitted_by_class[2],
            self.overload_sheds[0],
            self.overload_sheds[1],
            self.overload_sheds[2],
            self.priority_evictions,
        )?;
        let breakers: Vec<String> = self
            .breaker_states
            .iter()
            .enumerate()
            .map(|(i, s)| format!("w{i}:{s}"))
            .collect();
        writeln!(
            f,
            "breaker:  {} opens, {} closes, {} probes ({})",
            self.breaker_opens,
            self.breaker_closes,
            self.breaker_probes,
            if breakers.is_empty() {
                "no shards".to_string()
            } else {
                breakers.join(" ")
            }
        )?;
        writeln!(
            f,
            "hedges:   {} dispatched, {} wins, {} losses",
            self.hedges_dispatched, self.hedge_wins, self.hedge_losses
        )?;
        writeln!(
            f,
            "abft:     {} blocks checked, {} failures detected, {} requests recovered; \
             {} canary runs ({} failed); {} late replies",
            self.integrity_checked,
            self.integrity_failed,
            self.integrity_recovered,
            self.canary_runs,
            self.canary_failed,
            self.late_replies
        )?;
        let scores: Vec<String> = self
            .shard_health_score
            .iter()
            .enumerate()
            .map(|(i, h)| format!("w{i}:{h:.2}"))
            .collect();
        writeln!(
            f,
            "health:   {}/{} shards healthy; scores {}",
            self.healthy_workers(),
            self.shard_health.len(),
            if scores.is_empty() {
                "none".to_string()
            } else {
                scores.join(" ")
            }
        )?;
        let calibrated: Vec<String> = BackendTier::ALL
            .iter()
            .filter(|t| self.ns_per_cycle[t.index()] > 0.0)
            .map(|t| format!("{t} {:.2}", self.ns_per_cycle[t.index()]))
            .collect();
        writeln!(
            f,
            "liveness: {} watchdog preemption(s); {} ns/cycle calibrated",
            self.watchdog_preemptions,
            if calibrated.is_empty() {
                "not yet".to_string()
            } else {
                calibrated.join(", ")
            }
        )?;
        writeln!(
            f,
            "tiers:    cycles charged cycle-accurate:{} fast:{}; {} cross-check(s), {} divergence(s)",
            self.cycles_charged[BackendTier::CycleAccurate.index()],
            self.cycles_charged[BackendTier::Fast.index()],
            self.cross_checks,
            self.cross_check_failed,
        )?;
        if self.journal_appends > 0 || self.journal_replayed > 0 || self.dedup_hits > 0 || self.journal_errors > 0 {
            writeln!(
                f,
                "journal:  {} appends, {} fsyncs, {} bytes durable; {} replayed, {} dedup hits, \
                 {} duplicate executions, {} errors",
                self.journal_appends,
                self.journal_fsyncs,
                self.journal_bytes,
                self.journal_replayed,
                self.dedup_hits,
                self.duplicate_executions,
                self.journal_errors,
            )?;
        }
        if !self.tenants.is_empty() {
            let tenants: Vec<String> = self
                .tenants
                .iter()
                .map(|t| {
                    format!(
                        "{}(adm:{} rej:{} rate:{} loris:{})",
                        t.name, t.admitted, t.rejected, t.rate_limited, t.evicted_slow_loris
                    )
                })
                .collect();
            writeln!(f, "tenants:  {}", tenants.join(" "))?;
        }
        if !self.worker_exits.is_empty() {
            let exits: Vec<String> = self
                .worker_exits
                .iter()
                .enumerate()
                .map(|(i, e)| format!("w{i}:{e}"))
                .collect();
            writeln!(f, "exits:    {}", exits.join(" "))?;
        }
        let utils: Vec<String> = self
            .worker_utilization
            .iter()
            .enumerate()
            .map(|(i, u)| format!("w{i}:{:.0}%", u * 100.0))
            .collect();
        write!(
            f,
            "workers:  {}",
            if utils.is_empty() {
                "none".to_string()
            } else {
                utils.join(" ")
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_order() {
        let s = Stats::new(1, 4);
        for us in [100u64, 200, 400, 800, 10_000] {
            s.observe_latency(Duration::from_micros(us));
        }
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert!(snap.p50 <= snap.p95);
        assert!(snap.p95 <= snap.p99);
        assert!(snap.p99 >= Duration::from_micros(5_000), "p99 lands in the top bucket");
    }

    #[test]
    fn bucket_approximation_within_sqrt2() {
        let s = Stats::new(1, 4);
        s.observe_latency(Duration::from_micros(1000));
        let p50 = s.snapshot(Duration::from_secs(1), 0).p50;
        let ratio = p50.as_nanos() as f64 / 1_000_000.0;
        assert!(
            (1.0 / std::f64::consts::SQRT_2..=std::f64::consts::SQRT_2).contains(&ratio),
            "ratio {ratio}"
        );
    }

    #[test]
    fn batch_histogram_and_mean() {
        let s = Stats::new(2, 4);
        s.observe_batch(1);
        s.observe_batch(4);
        s.observe_batch(4);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(snap.batch_histogram[1], 1);
        assert_eq!(snap.batch_histogram[4], 2);
        assert!((snap.mean_batch_size() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_bounded() {
        let s = Stats::new(1, 2);
        s.observe_worker_busy(0, Duration::from_secs(10));
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert!((snap.worker_utilization[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = Stats::new(2, 4);
        s.submitted.fetch_add(3, Ordering::Relaxed);
        s.completed.fetch_add(3, Ordering::Relaxed);
        let text = s.snapshot(Duration::from_secs(1), 1).to_string();
        assert!(text.contains("p99"));
        assert!(text.contains("hit rate"));
        assert!(text.contains("w1:"));
        assert!(text.contains("quarantined"));
        assert!(text.contains("2/2 shards healthy"));
        assert!(text.contains("abft:"));
        assert!(text.contains("late replies"));
    }

    #[test]
    fn exec_quantile_needs_min_samples() {
        let s = Stats::new(1, 4);
        assert_eq!(s.exec_latency_quantile(0.95, 4), None);
        for _ in 0..3 {
            s.observe_exec_latency(Duration::from_micros(100));
        }
        assert_eq!(s.exec_latency_quantile(0.95, 4), None, "3 < 4 samples");
        s.observe_exec_latency(Duration::from_micros(800));
        let q = s.exec_latency_quantile(0.95, 4).expect("estimate ready");
        assert!(q >= Duration::from_micros(500), "p95 lands in the slow bucket, got {q:?}");
    }

    #[test]
    fn display_mentions_overload_fields() {
        let s = Stats::new(2, 4);
        s.submitted.fetch_add(5, Ordering::Relaxed);
        s.admitted_by_class[0].fetch_add(5, Ordering::Relaxed);
        s.overload_sheds[2].fetch_add(2, Ordering::Relaxed);
        s.breaker_opens.fetch_add(1, Ordering::Relaxed);
        s.set_breaker_state(1, BreakerState::Open);
        s.hedges_dispatched.fetch_add(3, Ordering::Relaxed);
        s.set_brownout_level(BrownoutLevel::CapBatch);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(snap.admitted_by_class, [5, 0, 0]);
        assert_eq!(snap.overload_sheds, [0, 0, 2]);
        assert_eq!(snap.brownout_level, BrownoutLevel::CapBatch);
        assert_eq!(snap.breaker_states, vec![BreakerState::Closed, BreakerState::Open]);
        let text = snap.to_string();
        assert!(text.contains("overload: level cap-batch"));
        assert!(text.contains("breaker:  1 opens"));
        assert!(text.contains("w1:open"));
        assert!(text.contains("hedges:   3 dispatched"));
    }

    #[test]
    fn health_ewma_tracks_observations_and_breaker_state() {
        let s = Stats::new(2, 4);
        assert!((s.health_score(0) - 1.0).abs() < 1e-6, "shards start healthy");
        // A preemption (0.0 sample) pulls the EWMA down; on-time batches
        // pull it back up.
        s.observe_health_sample(0, 0.0, 0.5);
        assert!((s.health_score(0) - 0.5).abs() < 1e-6);
        s.observe_health_sample(0, 1.0, 0.5);
        assert!((s.health_score(0) - 0.75).abs() < 1e-6);
        // Effective health is zeroed by an open breaker and by shard death,
        // without touching the underlying EWMA.
        s.set_breaker_state(0, BreakerState::Open);
        assert_eq!(s.effective_health(0), 0.0);
        assert!((s.health_score(0) - 0.75).abs() < 1e-6);
        s.set_breaker_state(0, BreakerState::Closed);
        assert!((s.effective_health(0) - 0.75).abs() < 1e-6);
        s.mark_shard_dead(1);
        assert_eq!(s.effective_health(1), 0.0);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert!((snap.shard_health_score[0] - 0.75).abs() < 1e-6);
        assert!(snap.to_string().contains("scores w0:0.75"));
    }

    #[test]
    fn ns_per_cycle_calibrates_after_min_samples() {
        let s = Stats::new(1, 4);
        let tier = BackendTier::CycleAccurate;
        assert_eq!(s.ns_per_cycle(tier), None);
        // 1000 predicted cycles in 2 µs → 2 ns/cycle, four times over.
        for _ in 0..4 {
            s.observe_run_timing(tier, 1000, Duration::from_micros(2), 0.2);
        }
        let v = s.ns_per_cycle(tier).expect("calibrated after 4 samples");
        assert!((v - 2.0).abs() < 1e-9, "steady input converges exactly, got {v}");
        // Zero predicted cycles is ignored rather than dividing by zero.
        s.observe_run_timing(tier, 0, Duration::from_secs(1), 0.2);
        assert!((s.ns_per_cycle(tier).unwrap() - 2.0).abs() < 1e-9);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert!((snap.ns_per_cycle[tier.index()] - 2.0).abs() < 1e-9);
        assert!(snap.to_string().contains("liveness:"));
    }

    #[test]
    fn ns_per_cycle_is_calibrated_per_tier() {
        // The fast tier charges the same cycles in far less wall time; its
        // EWMA must neither see nor pollute the cycle tier's estimate, or a
        // tier switch would arm watchdog deadlines off by orders of
        // magnitude and preempt honest batches.
        let s = Stats::new(1, 4);
        for _ in 0..4 {
            s.observe_run_timing(BackendTier::CycleAccurate, 1000, Duration::from_micros(2), 0.2);
        }
        assert_eq!(s.ns_per_cycle(BackendTier::Fast), None, "fast tier starts uncalibrated");
        for _ in 0..4 {
            s.observe_run_timing(BackendTier::Fast, 1000, Duration::from_nanos(20), 0.2);
        }
        assert!((s.ns_per_cycle(BackendTier::CycleAccurate).unwrap() - 2.0).abs() < 1e-9);
        assert!((s.ns_per_cycle(BackendTier::Fast).unwrap() - 0.02).abs() < 1e-9);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert!((snap.ns_per_cycle[0] - 2.0).abs() < 1e-9);
        assert!((snap.ns_per_cycle[1] - 0.02).abs() < 1e-9);
        assert!(snap.to_string().contains("cycle-accurate 2.00"));
        assert!(snap.to_string().contains("fast 0.02"));
    }

    #[test]
    fn tier_cycle_totals_and_cross_checks_surface() {
        let s = Stats::new(1, 4);
        s.observe_cycles_charged(BackendTier::CycleAccurate, 100);
        s.observe_cycles_charged(BackendTier::Fast, 2500);
        s.observe_cycles_charged(BackendTier::Fast, 500);
        s.cross_checks.fetch_add(3, Ordering::Relaxed);
        s.cross_check_failed.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(snap.cycles_charged, [100, 3000]);
        assert_eq!(snap.cross_checks, 3);
        assert_eq!(snap.cross_check_failed, 1);
        let text = snap.to_string();
        assert!(text.contains("cycles charged cycle-accurate:100 fast:3000"));
        assert!(text.contains("3 cross-check(s), 1 divergence(s)"));
    }

    #[test]
    fn watchdog_preemptions_surface_in_snapshot_and_display() {
        let s = Stats::new(1, 4);
        s.watchdog_preemptions.fetch_add(3, Ordering::Relaxed);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(snap.watchdog_preemptions, 3);
        assert!(snap.to_string().contains("3 watchdog preemption(s)"));
    }

    #[test]
    fn journal_counters_surface_only_when_active() {
        let s = Stats::new(1, 4);
        let quiet = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(quiet.journal_appends, 0);
        assert_eq!(quiet.dedup_hits, 0);
        assert!(
            !quiet.to_string().contains("journal:"),
            "a journal-less server's stats never mention the journal"
        );
        s.journal_appends.store(7, Ordering::Relaxed);
        s.journal_fsyncs.store(2, Ordering::Relaxed);
        s.journal_bytes.store(640, Ordering::Relaxed);
        s.journal_replayed.store(3, Ordering::Relaxed);
        s.dedup_hits.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(snap.journal_appends, 7);
        assert_eq!(snap.journal_replayed, 3);
        assert_eq!(snap.duplicate_executions, 0);
        let text = snap.to_string();
        assert!(text.contains("journal:  7 appends, 2 fsyncs, 640 bytes durable"));
        assert!(text.contains("3 replayed, 1 dedup hits, 0 duplicate executions"));
    }

    #[test]
    fn shard_death_flips_health() {
        let s = Stats::new(3, 4);
        s.mark_shard_dead(1);
        let snap = s.snapshot(Duration::from_secs(1), 0);
        assert_eq!(snap.shard_health, vec![true, false, true]);
        assert_eq!(snap.healthy_workers(), 2);
        assert!(snap.to_string().contains("2/3 shards healthy"));
        // Exits list is absent until shutdown fills it in.
        assert!(snap.worker_exits.is_empty());
        let mut snap = snap;
        snap.worker_exits = vec![WorkerExit::Clean, WorkerExit::Unhealthy, WorkerExit::Clean];
        assert!(snap.to_string().contains("w1:unhealthy"));
    }
}
