//! Overload control: priority classes, CoDel-style adaptive admission, the
//! staged brownout ladder, weighted-fair dequeue and per-shard circuit
//! breakers.
//!
//! Everything in this module is a *pure state machine*: no threads, no
//! `Instant::now()` of its own — callers feed in the clock, so every
//! transition is unit-testable deterministically. The server keeps the
//! [`OverloadController`] and [`WfqScheduler`] inside its queue mutex (one
//! consistent view for admission and batch formation) and one
//! [`CircuitBreaker`] inside each worker shard.
//!
//! The design follows two classic serving-systems results:
//!
//! * **CoDel admission** (Nichols & Jacobson): track the *minimum* queue
//!   sojourn time over a sliding window. A small minimum means the queue
//!   drains — standing bursts are fine; a minimum persistently above the
//!   delay target means every request is waiting too long, i.e. true
//!   overload, and admitting more work only manufactures deadline misses.
//!   Sustained overload climbs the [`BrownoutLevel`] ladder one rung per
//!   window; recovery descends one rung per quiet window.
//! * **Tail-at-scale hedging** (Dean & Barroso): a dispatched batch that
//!   exceeds an observed-latency quantile is re-dispatched to another
//!   healthy shard and the first bit-exact result wins. The hedge
//!   *threshold* policy lives here ([`hedge_threshold`]); the dispatch
//!   bookkeeping lives in the server (it owns the request handles).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Request priority class, highest first. Admission, shedding and dequeue
/// order all honor it: `Interactive` is served first and shed last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic (a user is waiting). Served first, shed
    /// only when the server is fully draining.
    Interactive,
    /// Throughput traffic with loose deadlines. Weighted below interactive
    /// at dequeue; shed only at the top of the brownout ladder.
    Batch,
    /// Scavenger traffic. First to be shed — at the ladder's first rung.
    BestEffort,
}

/// Number of priority classes.
pub const CLASSES: usize = 3;

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; CLASSES] = [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Dense index: `Interactive` = 0 … `BestEffort` = 2.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::BestEffort => 2,
        }
    }

    /// The class at a dense index (panics past [`CLASSES`]).
    #[must_use]
    pub fn from_index(i: usize) -> Priority {
        Priority::ALL[i]
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Batch => write!(f, "batch"),
            Priority::BestEffort => write!(f, "best-effort"),
        }
    }
}

/// The staged brownout ladder — each rung sheds more aggressively than the
/// one below, replacing a binary healthy/degraded switch. Rung ordering is
/// meaningful: the controller escalates one rung per overloaded window and
/// de-escalates one rung per quiet window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// No overload: admit everything.
    Normal,
    /// Shed [`Priority::BestEffort`] at admission.
    ShedBestEffort,
    /// Additionally halve the batch size cap, trading batching efficiency
    /// for queue-drain latency.
    CapBatch,
    /// Additionally reject requests whose model's program is not already
    /// compiled into the cache (no compile-on-the-critical-path work).
    RejectUncached,
    /// Admit nothing until the queue drains back below the delay target.
    Drain,
}

impl BrownoutLevel {
    /// Every rung, bottom to top.
    pub const ALL: [BrownoutLevel; 5] = [
        BrownoutLevel::Normal,
        BrownoutLevel::ShedBestEffort,
        BrownoutLevel::CapBatch,
        BrownoutLevel::RejectUncached,
        BrownoutLevel::Drain,
    ];

    fn from_step(step: usize) -> BrownoutLevel {
        BrownoutLevel::ALL[step.min(BrownoutLevel::ALL.len() - 1)]
    }

    fn step(self) -> usize {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::ShedBestEffort => 1,
            BrownoutLevel::CapBatch => 2,
            BrownoutLevel::RejectUncached => 3,
            BrownoutLevel::Drain => 4,
        }
    }

    /// Whether admission sheds this class at this rung (strictly
    /// lowest-priority-first: best-effort at the first rung, everything at
    /// [`BrownoutLevel::Drain`]).
    #[must_use]
    pub fn sheds(self, class: Priority) -> bool {
        match self {
            BrownoutLevel::Normal => false,
            BrownoutLevel::ShedBestEffort | BrownoutLevel::CapBatch | BrownoutLevel::RejectUncached => {
                class == Priority::BestEffort
            }
            BrownoutLevel::Drain => true,
        }
    }

    /// Whether this rung rejects models whose program is not cached.
    #[must_use]
    pub fn rejects_uncached(self) -> bool {
        self >= BrownoutLevel::RejectUncached
    }

    /// The effective batch-size cap at this rung ([`BrownoutLevel::CapBatch`]
    /// and above halve it: smaller batches leave the queue drainable at
    /// lower latency, at some throughput cost).
    #[must_use]
    pub fn batch_cap(self, max_batch: usize) -> usize {
        if self >= BrownoutLevel::CapBatch {
            (max_batch / 2).max(1)
        } else {
            max_batch.max(1)
        }
    }

    /// Whether this rung caps in-flight work per execution unit. The
    /// single-layer server halves its batch cap here
    /// ([`batch_cap`](BrownoutLevel::batch_cap)); the pipeline — which has
    /// no batches — bounds each stage queue's depth instead, the analogous
    /// trade of throughput for queue-drain latency.
    #[must_use]
    pub fn caps_inflight(self) -> bool {
        self >= BrownoutLevel::CapBatch
    }

    /// Whether dequeue should switch to adaptive LIFO (serve the newest
    /// request of a class first): under sustained overload the oldest
    /// queued requests are the ones most likely already doomed to miss
    /// their deadlines, so serving fresh arrivals first converts the same
    /// capacity into more deadline hits, while the stale tail is shed by
    /// the existing deadline check at batch formation.
    #[must_use]
    pub fn lifo(self) -> bool {
        self >= BrownoutLevel::ShedBestEffort
    }
}

impl std::fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrownoutLevel::Normal => write!(f, "normal"),
            BrownoutLevel::ShedBestEffort => write!(f, "shed-best-effort"),
            BrownoutLevel::CapBatch => write!(f, "cap-batch"),
            BrownoutLevel::RejectUncached => write!(f, "reject-uncached"),
            BrownoutLevel::Drain => write!(f, "drain"),
        }
    }
}

/// A ladder transition reported by [`OverloadController::tick`], for the
/// server's transition counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelChange {
    /// The ladder climbed one rung (sustained overload).
    Escalated(BrownoutLevel),
    /// The ladder descended one rung (a quiet window).
    Deescalated(BrownoutLevel),
}

/// CoDel-style admission controller: sliding-window minimum sojourn time
/// against a delay target, driving the [`BrownoutLevel`] ladder.
///
/// Feed it every observed queue sojourn (at dequeue, plus the live age of
/// the queue head at admission — so a stalled queue with no dequeues still
/// registers as overloaded) and call [`tick`](OverloadController::tick)
/// whenever the clock is in hand; it rotates the window and steps the
/// ladder at window boundaries.
#[derive(Debug)]
pub struct OverloadController {
    target: Duration,
    window: Duration,
    level: BrownoutLevel,
    /// Start of the window currently accumulating samples.
    bucket_start: Instant,
    /// Minimum sojourn observed in the current window (`None` = no samples,
    /// which counts as "queue empty / draining fine").
    bucket_min: Option<Duration>,
}

impl OverloadController {
    /// A controller at [`BrownoutLevel::Normal`] whose first window starts
    /// `now`.
    #[must_use]
    pub fn new(target: Duration, window: Duration, now: Instant) -> Self {
        OverloadController {
            target,
            window: window.max(Duration::from_micros(1)),
            level: BrownoutLevel::Normal,
            bucket_start: now,
            bucket_min: None,
        }
    }

    /// The current brownout rung.
    #[must_use]
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// The configured delay target.
    #[must_use]
    pub fn target(&self) -> Duration {
        self.target
    }

    /// Record one queue sojourn sample (time spent queued before dispatch,
    /// or the live age of a still-queued head).
    pub fn observe(&mut self, now: Instant, sojourn: Duration, changes: &mut Vec<LevelChange>) {
        self.tick(now, changes);
        self.bucket_min = Some(self.bucket_min.map_or(sojourn, |m| m.min(sojourn)));
    }

    /// Rotate the window if it elapsed, stepping the ladder one rung per
    /// completed window: up when the window's *minimum* sojourn exceeded
    /// the target (every request waited too long — standing overload),
    /// down otherwise (at least one request sailed through, or the queue
    /// was empty). Appends any transitions to `changes`.
    pub fn tick(&mut self, now: Instant, changes: &mut Vec<LevelChange>) {
        // Cap the catch-up work after a long idle gap: beyond a few quiet
        // windows the ladder is at Normal anyway.
        let mut guard = BrownoutLevel::ALL.len() + 1;
        while now.duration_since(self.bucket_start) >= self.window && guard > 0 {
            guard -= 1;
            let over = self.bucket_min.is_some_and(|m| m > self.target);
            let step = self.level.step();
            let next = if over {
                BrownoutLevel::from_step(step + 1)
            } else {
                BrownoutLevel::from_step(step.saturating_sub(1))
            };
            if next > self.level {
                changes.push(LevelChange::Escalated(next));
            } else if next < self.level {
                changes.push(LevelChange::Deescalated(next));
            }
            self.level = next;
            self.bucket_min = None;
            self.bucket_start += self.window;
        }
        if now.duration_since(self.bucket_start) >= self.window {
            // Still behind after the guard ran out (a very long gap):
            // everything in between was quiet, so jump the window to now.
            self.bucket_start = now;
            self.bucket_min = None;
        }
    }
}

/// Stride-scheduling weighted-fair queueing over the priority classes.
///
/// Each class holds a *pass* value; the class with the smallest pass among
/// the backlogged classes runs next, and dispatching `n` requests advances
/// the class's pass by `n · STRIDE / weight`. Higher weight ⇒ slower pass
/// growth ⇒ more frequent dispatch, yet any class with a positive weight
/// has a pass that stays finite while others grow — so no backlogged class
/// starves, which the property tests pin down.
#[derive(Debug)]
pub struct WfqScheduler {
    weights: [u64; CLASSES],
    pass: [u64; CLASSES],
}

/// Stride numerator: large enough that integer division keeps weight
/// ratios faithful.
const STRIDE: u64 = 1 << 20;

impl WfqScheduler {
    /// A scheduler with the given per-class weights (zero weights are
    /// clamped to 1 — every class must stay schedulable).
    #[must_use]
    pub fn new(weights: [u64; CLASSES]) -> Self {
        WfqScheduler {
            weights: weights.map(|w| w.max(1)),
            pass: [0; CLASSES],
        }
    }

    /// The class to serve next among the backlogged ones (`None` when no
    /// class is backlogged). Ties break toward the higher-priority class.
    #[must_use]
    pub fn pick(&self, backlogged: [bool; CLASSES]) -> Option<Priority> {
        (0..CLASSES)
            .filter(|&c| backlogged[c])
            .min_by_key(|&c| (self.pass[c], c))
            .map(Priority::from_index)
    }

    /// Charge a dispatch of `n` requests to `class`.
    pub fn charge(&mut self, class: Priority, n: usize) {
        let c = class.index();
        self.pass[c] = self.pass[c].saturating_add(n as u64 * STRIDE / self.weights[c]);
    }

    /// Note that `class` just went from empty to backlogged: lift its pass
    /// to the smallest pass among the already-backlogged classes, so an
    /// idle class cannot bank credit and then monopolize the scheduler.
    pub fn activate(&mut self, class: Priority, backlogged: [bool; CLASSES]) {
        let floor = (0..CLASSES)
            .filter(|&c| backlogged[c] && c != class.index())
            .map(|c| self.pass[c])
            .min();
        if let Some(floor) = floor {
            let c = class.index();
            self.pass[c] = self.pass[c].max(floor);
        }
    }
}

/// Circuit-breaker state over one worker shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: batches flow normally while the error window stays below
    /// the failure threshold.
    Closed,
    /// Tripped: the shard stops pulling batches until the cooldown
    /// elapses, so a flapping shard cannot burn its restart budget (or
    /// grind requests through doomed retries) at full batch rate.
    Open,
    /// Cooldown elapsed: exactly one probe batch is allowed through; its
    /// outcome closes the breaker or re-opens it with a doubled cooldown.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// What the shard may do right now, from [`CircuitBreaker::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: pull batches normally.
    Allow,
    /// Half-open: pull exactly one probe batch.
    Probe,
    /// Open: wait this long before polling again.
    Wait(Duration),
}

/// A state transition reported by [`CircuitBreaker::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// The error window tripped (or a probe failed): the breaker opened.
    Opened,
    /// A probe succeeded: the breaker closed and the window reset.
    Closed,
}

/// Per-shard circuit breaker over a sliding window of batch outcomes.
///
/// Sits *under* the supervisor: the supervisor still catches panics and
/// spends restart budget, but an open breaker keeps new batches away from
/// a shard whose recent executions mostly fail, giving transient trouble
/// (thermal faults, a poisoned cache line in the simulated machine) time
/// to clear at the cost of one probe per cooldown instead of a failed
/// batch per dispatch.
#[derive(Debug)]
pub struct CircuitBreaker {
    /// Sliding outcome window size; `0` disables the breaker entirely.
    window: usize,
    /// Failure fraction that trips the breaker.
    threshold: f64,
    /// Minimum outcomes in the window before it may trip.
    min_samples: usize,
    /// Base cooldown; doubles per consecutive re-open, capped at 64×.
    cooldown: Duration,
    state: BreakerState,
    /// Recent outcomes, `true` = failure.
    outcomes: VecDeque<bool>,
    failures: usize,
    opened_at: Option<Instant>,
    consecutive_opens: u32,
}

impl CircuitBreaker {
    /// A closed breaker. `window == 0` disables it ([`poll`] always allows,
    /// [`record`] never trips).
    ///
    /// [`poll`]: CircuitBreaker::poll
    /// [`record`]: CircuitBreaker::record
    #[must_use]
    pub fn new(window: usize, threshold: f64, min_samples: usize, cooldown: Duration) -> Self {
        CircuitBreaker {
            window,
            threshold,
            min_samples: min_samples.max(1),
            cooldown,
            state: BreakerState::Closed,
            outcomes: VecDeque::with_capacity(window),
            failures: 0,
            opened_at: None,
            consecutive_opens: 0,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// What the owning shard may do right now. Polling an open breaker
    /// whose cooldown has elapsed transitions it to half-open.
    pub fn poll(&mut self, now: Instant) -> BreakerDecision {
        if self.window == 0 {
            return BreakerDecision::Allow;
        }
        match self.state {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::HalfOpen => BreakerDecision::Probe,
            BreakerState::Open => {
                let until = self.opened_at.expect("open breaker has an open time") + self.current_cooldown();
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Wait(until - now)
                }
            }
        }
    }

    /// Record one batch outcome (`failed` = any execution in the batch
    /// failed). Returns the transition it caused, if any.
    pub fn record(&mut self, now: Instant, failed: bool) -> Option<BreakerEvent> {
        if self.window == 0 {
            return None;
        }
        match self.state {
            BreakerState::HalfOpen => {
                if failed {
                    self.open(now);
                    Some(BreakerEvent::Opened)
                } else {
                    self.state = BreakerState::Closed;
                    self.outcomes.clear();
                    self.failures = 0;
                    self.consecutive_opens = 0;
                    self.opened_at = None;
                    Some(BreakerEvent::Closed)
                }
            }
            BreakerState::Closed => {
                self.outcomes.push_back(failed);
                if failed {
                    self.failures += 1;
                }
                while self.outcomes.len() > self.window {
                    if self.outcomes.pop_front() == Some(true) {
                        self.failures -= 1;
                    }
                }
                let n = self.outcomes.len();
                if n >= self.min_samples && self.failures as f64 >= self.threshold * n as f64 {
                    self.open(now);
                    return Some(BreakerEvent::Opened);
                }
                None
            }
            // Outcomes that were already in flight when the breaker opened
            // do not move it; the next probe decides.
            BreakerState::Open => None,
        }
    }

    fn open(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.opened_at = Some(now);
        self.consecutive_opens += 1;
        self.outcomes.clear();
        self.failures = 0;
    }

    fn current_cooldown(&self) -> Duration {
        self.cooldown * (1u32 << self.consecutive_opens.saturating_sub(1).min(6))
    }
}

/// The hedge threshold from an observed execution-latency quantile: never
/// below `floor` (hedging microsecond batches buys nothing and doubles
/// load), absent until the latency estimate exists.
#[must_use]
pub fn hedge_threshold(observed_quantile: Option<Duration>, floor: Duration) -> Option<Duration> {
    observed_quantile.map(|q| q.max(floor))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn priority_indices_round_trip() {
        for p in Priority::ALL {
            assert_eq!(Priority::from_index(p.index()), p);
        }
        assert!(Priority::Interactive < Priority::Batch);
        assert!(Priority::Batch < Priority::BestEffort);
    }

    #[test]
    fn ladder_shedding_is_lowest_class_first() {
        use BrownoutLevel::*;
        assert!(!Normal.sheds(Priority::BestEffort));
        assert!(ShedBestEffort.sheds(Priority::BestEffort));
        assert!(!ShedBestEffort.sheds(Priority::Batch));
        assert!(!RejectUncached.sheds(Priority::Interactive));
        assert!(Drain.sheds(Priority::Interactive));
        assert_eq!(CapBatch.batch_cap(8), 4);
        assert_eq!(Normal.batch_cap(8), 8);
        assert_eq!(Drain.batch_cap(1), 1, "cap never reaches zero");
        assert!(!Normal.lifo());
        assert!(CapBatch.lifo());
        assert!(RejectUncached.rejects_uncached());
        assert!(!CapBatch.rejects_uncached());
        assert!(!ShedBestEffort.caps_inflight());
        assert!(CapBatch.caps_inflight());
        assert!(Drain.caps_inflight());
    }

    #[test]
    fn controller_escalates_one_rung_per_overloaded_window() {
        let start = t0();
        let mut c = OverloadController::new(5 * MS, 10 * MS, start);
        let mut ev = Vec::new();
        // Four consecutive windows where even the best sojourn exceeds the
        // 5 ms target: the ladder climbs to Drain, one rung per window.
        for w in 0..4u32 {
            let now = start + 10 * MS * w + MS;
            c.observe(now, 8 * MS, &mut ev);
            c.tick(start + 10 * MS * (w + 1), &mut ev);
        }
        assert_eq!(c.level(), BrownoutLevel::Drain);
        assert_eq!(
            ev,
            vec![
                LevelChange::Escalated(BrownoutLevel::ShedBestEffort),
                LevelChange::Escalated(BrownoutLevel::CapBatch),
                LevelChange::Escalated(BrownoutLevel::RejectUncached),
                LevelChange::Escalated(BrownoutLevel::Drain),
            ]
        );
    }

    #[test]
    fn one_fast_sample_in_a_window_blocks_escalation() {
        // CoDel uses the window *minimum*: a single request that sailed
        // through proves the queue drains, so no escalation.
        let start = t0();
        let mut c = OverloadController::new(5 * MS, 10 * MS, start);
        let mut ev = Vec::new();
        c.observe(start + MS, 50 * MS, &mut ev);
        c.observe(start + 2 * MS, MS, &mut ev);
        c.tick(start + 11 * MS, &mut ev);
        assert_eq!(c.level(), BrownoutLevel::Normal);
        assert!(ev.is_empty());
    }

    #[test]
    fn quiet_windows_deescalate_back_to_normal() {
        let start = t0();
        let mut c = OverloadController::new(MS, 10 * MS, start);
        let mut ev = Vec::new();
        for w in 0..2u32 {
            c.observe(start + 10 * MS * w + MS, 20 * MS, &mut ev);
        }
        c.tick(start + 20 * MS, &mut ev);
        assert_eq!(c.level(), BrownoutLevel::CapBatch);
        ev.clear();
        // Two windows with sub-target sojourns, then one with no samples
        // at all (empty queue): down a rung each.
        c.observe(start + 21 * MS, Duration::ZERO, &mut ev);
        c.tick(start + 30 * MS, &mut ev);
        c.observe(start + 31 * MS, Duration::ZERO, &mut ev);
        c.tick(start + 40 * MS, &mut ev);
        c.tick(start + 50 * MS, &mut ev);
        assert_eq!(c.level(), BrownoutLevel::Normal);
        assert_eq!(
            ev,
            vec![
                LevelChange::Deescalated(BrownoutLevel::ShedBestEffort),
                LevelChange::Deescalated(BrownoutLevel::Normal),
            ]
        );
    }

    #[test]
    fn long_idle_gap_resets_to_normal_without_unbounded_catchup() {
        let start = t0();
        let mut c = OverloadController::new(MS, MS, start);
        let mut ev = Vec::new();
        c.observe(start, 10 * MS, &mut ev);
        c.tick(start + MS, &mut ev);
        assert_eq!(c.level(), BrownoutLevel::ShedBestEffort);
        // An hour of silence: the ladder must be Normal and the window
        // must land at `now` without looping millions of times.
        c.tick(start + Duration::from_secs(3600), &mut ev);
        assert_eq!(c.level(), BrownoutLevel::Normal);
        // The next window behaves normally: one over-target window
        // escalates. (Ticking a further empty window would de-escalate
        // right back — an empty window is a drained queue.)
        c.observe(start + Duration::from_secs(3600), 10 * MS, &mut ev);
        c.tick(start + Duration::from_secs(3600) + MS, &mut ev);
        assert_eq!(c.level(), BrownoutLevel::ShedBestEffort);
    }

    #[test]
    fn wfq_prefers_the_heavier_class_proportionally() {
        let mut s = WfqScheduler::new([8, 2, 1]);
        let mut served = [0usize; CLASSES];
        for _ in 0..110 {
            let c = s.pick([true, true, true]).unwrap();
            served[c.index()] += 1;
            s.charge(c, 1);
        }
        // 8:2:1 over 110 dispatches → 80/20/10.
        assert_eq!(served, [80, 20, 10]);
    }

    #[test]
    fn wfq_serves_the_only_backlogged_class() {
        let s = WfqScheduler::new([8, 2, 1]);
        assert_eq!(s.pick([false, false, true]), Some(Priority::BestEffort));
        assert_eq!(s.pick([false, false, false]), None);
    }

    #[test]
    fn wfq_low_priority_class_is_not_starved() {
        let mut s = WfqScheduler::new([1000, 10, 1]);
        // Interactive is continuously backlogged; one best-effort request
        // waits. It must be served within a bounded number of dispatches.
        let mut dispatches = 0usize;
        loop {
            dispatches += 1;
            assert!(dispatches < 10_000, "best-effort starved");
            let c = s.pick([true, false, true]).unwrap();
            s.charge(c, 1);
            if c == Priority::BestEffort {
                break;
            }
        }
    }

    #[test]
    fn wfq_idle_class_cannot_bank_credit() {
        let mut s = WfqScheduler::new([1, 1, 1]);
        // Interactive runs alone for a while.
        for _ in 0..100 {
            let c = s.pick([true, false, false]).unwrap();
            s.charge(c, 1);
        }
        // Batch wakes up: after activation it may win at most its fair
        // share, not 100 dispatches in a row.
        s.activate(Priority::Batch, [true, true, false]);
        let mut batch_run = 0;
        for _ in 0..10 {
            let c = s.pick([true, true, false]).unwrap();
            s.charge(c, 1);
            if c == Priority::Batch {
                batch_run += 1;
            }
        }
        assert!(batch_run <= 6, "idle class replayed banked credit: {batch_run}/10");
    }

    #[test]
    fn breaker_trips_at_the_failure_threshold_and_recovers_via_probe() {
        let mut b = CircuitBreaker::new(8, 0.5, 4, 10 * MS);
        let start = t0();
        assert_eq!(b.poll(start), BreakerDecision::Allow);
        // Three failures out of four: 75% ≥ 50% with min samples met.
        assert_eq!(b.record(start, true), None);
        assert_eq!(b.record(start, false), None);
        assert_eq!(b.record(start, true), None);
        assert_eq!(b.record(start, true), Some(BreakerEvent::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        match b.poll(start + MS) {
            BreakerDecision::Wait(d) => assert!(d <= 10 * MS),
            other => panic!("expected Wait, got {other:?}"),
        }
        // Cooldown elapsed → exactly one probe; success closes.
        assert_eq!(b.poll(start + 11 * MS), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.record(start + 12 * MS, false), Some(BreakerEvent::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.poll(start + 13 * MS), BreakerDecision::Allow);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_cooldown() {
        let mut b = CircuitBreaker::new(4, 0.5, 2, 10 * MS);
        let start = t0();
        b.record(start, true);
        assert_eq!(b.record(start, true), Some(BreakerEvent::Opened));
        assert_eq!(b.poll(start + 10 * MS), BreakerDecision::Probe);
        assert_eq!(b.record(start + 10 * MS, true), Some(BreakerEvent::Opened));
        // Second consecutive open: cooldown doubles to 20 ms.
        match b.poll(start + 10 * MS + 10 * MS) {
            BreakerDecision::Wait(d) => assert!(d > Duration::ZERO && d <= 10 * MS),
            other => panic!("expected Wait (doubled cooldown), got {other:?}"),
        }
        assert_eq!(b.poll(start + 10 * MS + 20 * MS), BreakerDecision::Probe);
        // Success resets the doubling.
        assert_eq!(b.record(start + 31 * MS, false), Some(BreakerEvent::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn sparse_failures_never_trip_the_breaker() {
        let mut b = CircuitBreaker::new(8, 0.5, 4, 10 * MS);
        let start = t0();
        for i in 0..100 {
            // One failure in every five outcomes: 20% < 50%.
            assert_eq!(b.record(start, i % 5 == 0), None, "outcome {i}");
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn disabled_breaker_is_inert() {
        let mut b = CircuitBreaker::new(0, 0.5, 1, MS);
        let start = t0();
        for _ in 0..50 {
            assert_eq!(b.record(start, true), None);
        }
        assert_eq!(b.poll(start), BreakerDecision::Allow);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn outcomes_landing_while_open_do_not_move_the_breaker() {
        let mut b = CircuitBreaker::new(4, 0.5, 2, 10 * MS);
        let start = t0();
        b.record(start, true);
        assert_eq!(b.record(start, true), Some(BreakerEvent::Opened));
        // In-flight batches finishing after the trip are ignored.
        assert_eq!(b.record(start + MS, false), None);
        assert_eq!(b.record(start + MS, true), None);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn hedge_threshold_applies_the_floor() {
        assert_eq!(hedge_threshold(None, MS), None);
        assert_eq!(hedge_threshold(Some(5 * MS), MS), Some(5 * MS));
        assert_eq!(hedge_threshold(Some(Duration::from_micros(10)), MS), Some(MS));
    }
}
