//! Whole-model pipeline serving with stage-level fault domains and
//! checkpointed failover.
//!
//! A [`CompiledModel`](npcgra_sim::CompiledModel) partitions a layer chain
//! into balanced stages; [`Pipeline`] gives each stage its own worker
//! thread owning its own execution backend — an independent **fault
//! domain**. An inference flows stage to stage as a [`StageJob`]; between
//! stages its activation is guarded by a [`tensor_checksum`] computed by
//! the producer and verified by the consumer (checksum forwarding), so a
//! corrupted handoff is caught *at the boundary it crossed*, not at the
//! final output.
//!
//! # Checkpoints and healing
//!
//! Every verified stage boundary (subject to
//! [`checkpoint_every`](crate::ServeConfig::checkpoint_every)) is
//! checkpointed — the activation tensor plus its checksum ride with the
//! job, so a checkpoint needs no global store and dies with its inference.
//! When a stage fails — a caught panic, an ABFT integrity trip, a
//! cycle-budget preemption (temporal wedge), or a handoff-checksum
//! mismatch — the job is **healed**: rolled back to its most recent
//! checkpoint at or before the failing stage and re-enqueued there.
//! Healing replays only the stages between the checkpoint and the failure
//! (`stage_replays` counts exactly which), never the whole inference.
//!
//! # Failover ladder
//!
//! Failures are classified by [`RetryClass`]: `Retry`-class failures heal
//! in place; `RebuildAndRetry`-class failures (panic, preemption) also walk
//! the stage's restart ladder — rebuild the backend under
//! [`restart_budget`](crate::ServeConfig::restart_budget) with
//! decorrelated-jitter backoff, then **fail over** to a spare shard
//! ([`stage_spares`](crate::ServeConfig::stage_spares), a fresh backend
//! with a fresh fault stream), and only with every spare consumed does the
//! stage go dead. A dead stage sheds *whole-model* traffic
//! ([`ServeError::Degraded`]) — in a mixed deployment the single-layer
//! [`Server`](crate::Server) keeps serving, honoring the brownout rule of
//! shedding pipeline traffic before single-layer traffic.
//!
//! # Overload and liveness
//!
//! Whole-model jobs ride the same hardening as single-layer traffic:
//!
//! * **Deadline propagation** — a job's wall deadline
//!   ([`Pipeline::submit_with_priority`]) is split across stages
//!   proportionally to each stage's [`StagePlan`](npcgra_sim::StagePlan)
//!   predicted cycles plus its DMA handoff cycles. Entry to stage `s` is
//!   shed ([`ServeError::DeadlineExceeded`]) once the wall clock passes
//!   `deadline − budget × frac_after(s)` — the proportional share of the
//!   budget that stages *after* `s` still need — so an already-doomed job
//!   never burns downstream stages. Zero deadlines are rejected at submit,
//!   matching [`Server`](crate::Server) semantics.
//! * **Stage watchdogs** — each stage calibrates its own ns-per-cycle EWMA
//!   on healthy passes; with
//!   [`pipeline.watchdog_slack`](crate::config::PipelineConfig) armed, a
//!   stage pass gets a wall deadline of `predicted cycles × ns-per-cycle ×
//!   slack` enforced by a watchdog thread that cancels the in-hand run's
//!   [`CancelToken`] — the typed [`ServeError::Preempted`] walks the same
//!   restart→spare ladder as a caught panic, so a wedged stage cannot
//!   stall the pipeline until the chaos soak notices.
//! * **Priority admission + brownout** — stage 0 holds one FIFO per
//!   [`Priority`] class, dequeued by stride WFQ
//!   ([`pipeline.weights`](crate::config::PipelineConfig)); a CoDel
//!   controller over *stage-queue* sojourn times climbs the
//!   [`BrownoutLevel`] ladder under standing delay, shedding best-effort
//!   first, then capping per-stage in-flight depth, then draining —
//!   lower-priority whole-model traffic degrades before any single-layer
//!   traffic is touched.
//!
//! Every knob defaults off
//! ([`PipelineConfig`](crate::config::PipelineConfig)): untouched configs
//! serve exactly as before these layers existed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use npcgra_nn::{Tensor, Word};
use npcgra_sim::{
    backend_for, tensor_checksum, CancelToken, CheckKind, CompiledModel, ExecutionBackend, Fault, FaultPlan, FaultSite,
    GrayRates, LayerReport, SimCause, SimError, TemporalFault, Violation,
};

use crate::config::{ServeConfig, StageFault};
use crate::error::{RetryClass, ServeError};
use crate::overload::{BrownoutLevel, LevelChange, OverloadController, Priority, WfqScheduler, CLASSES};
use crate::server::{expected_weight_shape, reply_pair, Delivery, ReplySender, Response, Ticket};
use crate::stats::CALIBRATION_MIN_SAMPLES;
use crate::supervisor::{backoff_seed, decorrelated_backoff, splitmix64};
use crate::watchdog::Watchdog;

/// When a wedge is chaos-injected but no cycle budget is configured (and
/// the stage watchdog is not armed), arm this fallback multiplier so the
/// wedge surfaces as a typed preemption instead of hanging the stage
/// forever.
const WEDGE_FALLBACK_BUDGET: f64 = 8.0;

/// The stage watchdog's wall-deadline floor, for the same reason as the
/// batch watchdog's: below this, host scheduling noise masquerades as a
/// gray failure, while a true wedge (pacing 100 µs per simulated cycle)
/// still overshoots it within a few hundred cycles.
const WATCHDOG_FLOOR: Duration = Duration::from_millis(25);

/// One inference moving through the pipeline: the current activation, its
/// handoff checksum, the checkpoints it can heal from, and the per-layer
/// reports accumulated so far.
struct StageJob {
    /// Submit ordinal (0-based) — the deterministic chaos-trigger key.
    id: u64,
    activation: Tensor,
    /// Producer-computed checksum of `activation`, verified at stage entry.
    checksum: u64,
    /// `(boundary, activation, checksum)` triples, ascending by boundary.
    /// Boundary `b` is the input to stage `b`; boundary 0 is always present.
    checkpoints: Vec<(usize, Tensor, u64)>,
    /// Failed execution attempts (all stages); caps at `max_retries`.
    attempts: u32,
    /// Per-layer reports for stages completed so far (truncated on heal so
    /// replayed layers are not double-counted).
    reports: Vec<LayerReport>,
    /// DMA cycles charged for inter-stage handoffs (replays re-charge —
    /// a replayed stage really does re-forward its output).
    handoff_cycles: u64,
    enqueued: Instant,
    /// When the job entered its *current* stage queue — the CoDel sojourn
    /// sample taken at dequeue.
    stage_enqueued: Instant,
    /// Priority class (stage-0 WFQ dequeue and brownout shedding order).
    class: Priority,
    /// Absolute wall deadline for the final-stage reply (`None` = never
    /// expires).
    deadline: Option<Instant>,
    /// The original deadline budget, split across stages proportionally to
    /// predicted work for the boundary shed rule. Zero when no deadline.
    budget: Duration,
    reply: ReplySender,
}

/// Queue-side pipeline state, under one mutex with one condvar.
struct PipeState {
    /// Per-class FIFOs feeding stage 0, dequeued by stride WFQ.
    entry: Vec<VecDeque<StageJob>>,
    /// One FIFO of jobs awaiting each stage past the first (index 0 is
    /// kept for symmetry but stays empty — stage 0 pulls from `entry`).
    queues: Vec<VecDeque<StageJob>>,
    /// Stage-0 weighted-fair scheduler over the priority classes.
    wfq: WfqScheduler,
    /// CoDel controller over stage-queue sojourns; `None` = ladder off.
    controller: Option<OverloadController>,
    /// Accepting submits; cleared by [`Pipeline::shutdown`].
    open: bool,
    /// Jobs admitted but not yet concluded (replied or shed).
    inflight: usize,
    /// Stages that exhausted restarts *and* spares; flagged dead.
    dead: Vec<bool>,
    next_id: u64,
}

impl PipeState {
    fn backlogged(&self) -> [bool; CLASSES] {
        std::array::from_fn(|c| !self.entry[c].is_empty())
    }

    /// Jobs queued before stage `s` (stage 0 sums the per-class FIFOs).
    fn stage_depth(&self, s: usize) -> usize {
        if s == 0 {
            self.entry.iter().map(VecDeque::len).sum()
        } else {
            self.queues[s].len()
        }
    }

    /// The deepest stage queue — the bound the brownout in-flight cap
    /// enforces at admission.
    fn max_stage_depth(&self) -> usize {
        (0..self.queues.len()).map(|s| self.stage_depth(s)).max().unwrap_or(0)
    }

    /// The stage-0 dequeue: WFQ-pick among backlogged classes, charge the
    /// dispatch.
    fn pop_entry(&mut self) -> Option<StageJob> {
        let class = self.wfq.pick(self.backlogged())?;
        let job = self.entry[class.index()].pop_front()?;
        self.wfq.charge(class, 1);
        Some(job)
    }

    /// Enqueue a job for stage 0, activating its class in the WFQ when the
    /// class was idle (so it cannot bank credit). Healed jobs re-enter at
    /// the front so recovery preempts fresh work.
    fn push_entry(&mut self, job: StageJob, front: bool) {
        let c = job.class.index();
        if self.entry[c].is_empty() {
            let backlogged = self.backlogged();
            self.wfq.activate(job.class, backlogged);
        }
        if front {
            self.entry[c].push_front(job);
        } else {
            self.entry[c].push_back(job);
        }
    }

    /// The oldest stage-queue head's residence start across the whole
    /// pipeline — the CoDel controller's standing-delay signal. It must
    /// span *every* stage queue, not just entry: when a downstream stage
    /// is the bottleneck the entry queue drains instantly, and a stage-0
    /// signal alone would read a drowning pipeline as healthy.
    fn oldest_head(&self) -> Option<Instant> {
        self.entry
            .iter()
            .chain(self.queues.iter())
            .filter_map(|q| q.front())
            .map(|j| j.stage_enqueued)
            .min()
    }
}

/// Pipeline counters (all relaxed atomics; exactness is per-counter, not
/// cross-counter).
struct PipeStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    checkpoints_stored: AtomicU64,
    checkpoint_restores: AtomicU64,
    handoff_corruptions: AtomicU64,
    integrity_failures: AtomicU64,
    panics_caught: AtomicU64,
    preemptions: AtomicU64,
    cycles_charged: AtomicU64,
    handoff_cycles: AtomicU64,
    rejected_deadline: AtomicU64,
    deadline_sheds: AtomicU64,
    late_replies: AtomicU64,
    watchdog_preemptions: AtomicU64,
    brownout_escalations: AtomicU64,
    brownout_deescalations: AtomicU64,
    admitted_by_class: Vec<AtomicU64>,
    overload_sheds: Vec<AtomicU64>,
    stage_replays: Vec<AtomicU64>,
    stage_restarts: Vec<AtomicU64>,
    stage_failovers: Vec<AtomicU64>,
}

impl PipeStats {
    fn new(stages: usize) -> Self {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        PipeStats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            checkpoints_stored: AtomicU64::new(0),
            checkpoint_restores: AtomicU64::new(0),
            handoff_corruptions: AtomicU64::new(0),
            integrity_failures: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            preemptions: AtomicU64::new(0),
            cycles_charged: AtomicU64::new(0),
            handoff_cycles: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            deadline_sheds: AtomicU64::new(0),
            late_replies: AtomicU64::new(0),
            watchdog_preemptions: AtomicU64::new(0),
            brownout_escalations: AtomicU64::new(0),
            brownout_deescalations: AtomicU64::new(0),
            admitted_by_class: zeros(CLASSES),
            overload_sheds: zeros(CLASSES),
            stage_replays: zeros(stages),
            stage_restarts: zeros(stages),
            stage_failovers: zeros(stages),
        }
    }

    fn snapshot(&self) -> PipelineStatsSnapshot {
        let vec = |v: &Vec<AtomicU64>| v.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        PipelineStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            checkpoints_stored: self.checkpoints_stored.load(Ordering::Relaxed),
            checkpoint_restores: self.checkpoint_restores.load(Ordering::Relaxed),
            handoff_corruptions: self.handoff_corruptions.load(Ordering::Relaxed),
            integrity_failures: self.integrity_failures.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            preemptions: self.preemptions.load(Ordering::Relaxed),
            cycles_charged: self.cycles_charged.load(Ordering::Relaxed),
            handoff_cycles: self.handoff_cycles.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            deadline_sheds: self.deadline_sheds.load(Ordering::Relaxed),
            late_replies: self.late_replies.load(Ordering::Relaxed),
            watchdog_preemptions: self.watchdog_preemptions.load(Ordering::Relaxed),
            brownout_escalations: self.brownout_escalations.load(Ordering::Relaxed),
            brownout_deescalations: self.brownout_deescalations.load(Ordering::Relaxed),
            admitted_by_class: vec(&self.admitted_by_class),
            overload_sheds: vec(&self.overload_sheds),
            stage_replays: vec(&self.stage_replays),
            stage_restarts: vec(&self.stage_restarts),
            stage_failovers: vec(&self.stage_failovers),
        }
    }
}

/// A point-in-time copy of the pipeline's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStatsSnapshot {
    /// Inferences admitted.
    pub submitted: u64,
    /// Inferences that completed with an output.
    pub completed: u64,
    /// Inferences that failed terminally (quarantine, final errors).
    pub failed: u64,
    /// Inferences shed by a dead stage ([`ServeError::Degraded`]).
    pub shed: u64,
    /// Checkpoints stored at verified stage boundaries (boundary 0 included).
    pub checkpoints_stored: u64,
    /// Heals: restorations of a job to its last checkpoint.
    pub checkpoint_restores: u64,
    /// Inter-stage activation checksum mismatches caught at stage entry.
    pub handoff_corruptions: u64,
    /// ABFT integrity trips inside stage execution.
    pub integrity_failures: u64,
    /// Stage-shard panics caught and contained.
    pub panics_caught: u64,
    /// Cycle-budget preemptions (wedged or runaway stage runs).
    pub preemptions: u64,
    /// Simulated cycles charged across completed inferences (handoffs
    /// included).
    pub cycles_charged: u64,
    /// DMA cycles charged for inter-stage activation handoffs.
    pub handoff_cycles: u64,
    /// Jobs rejected at submit for a zero (already-expired) deadline.
    pub rejected_deadline: u64,
    /// Jobs shed at a stage boundary because their proportional deadline
    /// share was already spent ([`ServeError::DeadlineExceeded`]).
    pub deadline_sheds: u64,
    /// Replies delivered after their ticket was dropped (tombstoned slots;
    /// the reply is dropped and counted instead of leaking).
    pub late_replies: u64,
    /// Stage-watchdog firings: wall-deadline preemptions of in-hand stage
    /// runs (a subset of `preemptions`, which also counts cycle-budget
    /// trips).
    pub watchdog_preemptions: u64,
    /// Brownout-ladder escalations (one per overloaded CoDel window).
    pub brownout_escalations: u64,
    /// Brownout-ladder de-escalations (one per quiet CoDel window).
    pub brownout_deescalations: u64,
    /// Jobs admitted per priority class (`[interactive, batch,
    /// best-effort]`).
    pub admitted_by_class: Vec<u64>,
    /// Jobs shed at admission by the brownout ladder, per class.
    pub overload_sheds: Vec<u64>,
    /// Per-stage count of replays: how many times each stage re-executed a
    /// healed job. A heal from the checkpoint at boundary `b` after a
    /// failure at stage `s` increments exactly `b..=s` — the proof that
    /// healing replays only from the last checkpoint.
    pub stage_replays: Vec<u64>,
    /// Per-stage backend rebuilds charged to the restart budget.
    pub stage_restarts: Vec<u64>,
    /// Per-stage failovers to a spare shard (restart budget exhausted).
    pub stage_failovers: Vec<u64>,
}

impl PipelineStatsSnapshot {
    /// Total failovers across stages.
    #[must_use]
    pub fn total_failovers(&self) -> u64 {
        self.stage_failovers.iter().sum()
    }

    /// Total replays across stages.
    #[must_use]
    pub fn total_replays(&self) -> u64 {
        self.stage_replays.iter().sum()
    }
}

impl std::fmt::Display for PipelineStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pipeline: {} submitted, {} completed, {} failed, {} shed",
            self.submitted, self.completed, self.failed, self.shed
        )?;
        writeln!(
            f,
            "  checkpoints: {} stored, {} restores; handoff corruptions {}; integrity trips {}",
            self.checkpoints_stored, self.checkpoint_restores, self.handoff_corruptions, self.integrity_failures
        )?;
        writeln!(
            f,
            "  faults: {} panics caught, {} preemptions ({} by watchdog); cycles {} ({} handoff)",
            self.panics_caught, self.preemptions, self.watchdog_preemptions, self.cycles_charged, self.handoff_cycles
        )?;
        writeln!(
            f,
            "  admission: {:?} admitted by class, {:?} overload sheds, {} deadline-rejected",
            self.admitted_by_class, self.overload_sheds, self.rejected_deadline
        )?;
        writeln!(
            f,
            "  deadlines: {} boundary sheds; late replies {}; brownout {} up / {} down",
            self.deadline_sheds, self.late_replies, self.brownout_escalations, self.brownout_deescalations
        )?;
        writeln!(f, "  replays/stage:   {:?}", self.stage_replays)?;
        writeln!(f, "  restarts/stage:  {:?}", self.stage_restarts)?;
        write!(f, "  failovers/stage: {:?}", self.stage_failovers)
    }
}

/// Everything the stage workers share.
struct PipeShared {
    config: ServeConfig,
    model: CompiledModel,
    weights: Vec<Tensor>,
    state: Mutex<PipeState>,
    ready: Condvar,
    stats: PipeStats,
    /// One arming slot per stage (a stage runs one job at a time); the
    /// watchdog thread is only spawned when `pipeline.watchdog_slack > 0`.
    watchdog: Watchdog,
    /// `frac_after[s]`: the fraction of the whole model's predicted work
    /// (stage cycles + handoff cycles) that lies in stages *after* `s`.
    /// `frac_after[last] == 0`. Precomputed once — the deadline split.
    frac_after: Vec<f64>,
    /// Per-stage ns-per-cycle EWMA (f64 bits; written only by the stage's
    /// own worker) and its healthy-sample count — the stage watchdog's
    /// calibration, mirroring the server's per-tier estimate.
    calib_ns_bits: Vec<AtomicU64>,
    calib_samples: Vec<AtomicU64>,
}

impl PipeShared {
    fn lock(&self) -> MutexGuard<'_, PipeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reply, count the outcome (late replies included), and release the
    /// job's inflight slot.
    fn conclude(&self, reply: &ReplySender, result: Result<Response, ServeError>) {
        match &result {
            Ok(_) => self.stats.completed.fetch_add(1, Ordering::Relaxed),
            Err(ServeError::Degraded { .. } | ServeError::DeadlineExceeded) => self.stats.shed.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        if reply.send(result) == Delivery::Abandoned {
            // The ticket was dropped before the reply: tombstoned slot,
            // counted instead of leaking (the server's accounting, ported).
            self.stats.late_replies.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = self.lock();
        st.inflight -= 1;
        drop(st);
        self.ready.notify_all();
    }

    fn degraded(&self, dead: &[bool]) -> ServeError {
        ServeError::Degraded {
            healthy: dead.iter().filter(|d| !**d).count(),
            workers: dead.len(),
        }
    }

    /// Count CoDel ladder transitions.
    fn apply_level_changes(&self, changes: &[LevelChange]) {
        for change in changes {
            match change {
                LevelChange::Escalated(_) => self.stats.brownout_escalations.fetch_add(1, Ordering::Relaxed),
                LevelChange::Deescalated(_) => self.stats.brownout_deescalations.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    /// Fold a healthy stage pass into the stage's ns-per-cycle EWMA.
    /// Single-writer (each stage's own worker), so load-modify-store is
    /// race-free.
    fn observe_stage_timing(&self, stage: usize, predicted: u64, wall: Duration) {
        if predicted == 0 {
            return;
        }
        let obs = wall.as_nanos() as f64 / predicted as f64;
        let alpha = self.config.health_ewma_alpha;
        let n = self.calib_samples[stage].fetch_add(1, Ordering::Relaxed);
        let bits = &self.calib_ns_bits[stage];
        let old = f64::from_bits(bits.load(Ordering::Relaxed));
        let new = if n == 0 { obs } else { old + alpha * (obs - old) };
        bits.store(new.to_bits(), Ordering::Relaxed);
    }

    /// The stage's calibrated ns-per-cycle estimate; `None` until enough
    /// healthy passes accumulated (the watchdog never arms on noise).
    fn stage_ns_per_cycle(&self, stage: usize) -> Option<f64> {
        (self.calib_samples[stage].load(Ordering::Relaxed) >= CALIBRATION_MIN_SAMPLES)
            .then(|| f64::from_bits(self.calib_ns_bits[stage].load(Ordering::Relaxed)))
    }
}

/// A whole-model serving pipeline: one supervised worker thread per stage
/// of a [`CompiledModel`], healing stage failures from per-job checkpoints
/// and failing stages over to spare shards.
///
/// ```
/// use npcgra_nn::{ConvLayer, Tensor};
/// use npcgra_serve::{Pipeline, ServeConfig};
/// use npcgra_sim::CompiledModel;
///
/// let layers = vec![
///     ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1),
///     ConvLayer::pointwise("pw", 3, 4, 8, 8),
/// ];
/// let config = ServeConfig::default().with_pipeline_stages(2);
/// let model = CompiledModel::compile("demo", &layers, &config.spec, config.pipeline_stages).unwrap();
/// let weights = layers.iter().map(|l| l.random_weights(7)).collect();
/// let pipe = Pipeline::start(config, model, weights).unwrap();
/// let ticket = pipe.submit(Tensor::random(3, 8, 8, 1)).unwrap();
/// assert_eq!(ticket.wait().unwrap().output.channels(), 4);
/// let stats = pipe.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
pub struct Pipeline {
    shared: Arc<PipeShared>,
    handles: Vec<JoinHandle<()>>,
    /// The stage-watchdog thread; only spawned when
    /// `pipeline.watchdog_slack > 0`.
    watchdog_handle: Option<JoinHandle<()>>,
}

impl Pipeline {
    /// Start one stage worker per stage of `model`.
    ///
    /// `weights` holds one tensor per model layer, in layer order.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] when `weights` disagrees with the
    /// model's layers (count or any per-layer weight shape).
    pub fn start(config: ServeConfig, model: CompiledModel, weights: Vec<Tensor>) -> Result<Pipeline, ServeError> {
        if weights.len() != model.num_layers() {
            return Err(ServeError::ShapeMismatch {
                expected: (model.num_layers(), 0, 0),
                got: (weights.len(), 0, 0),
            });
        }
        for (i, w) in weights.iter().enumerate() {
            let expected = expected_weight_shape(model.layer(i).layer());
            if w.shape() != expected {
                return Err(ServeError::ShapeMismatch {
                    expected,
                    got: w.shape(),
                });
            }
        }
        let stages = model.num_stages();
        // The deadline split: weight each stage by its predicted compute
        // plus its outbound handoff, then precompute the fraction of total
        // work remaining *after* each stage.
        let stage_work: Vec<u64> = (0..stages)
            .map(|s| model.stages()[s].predicted_cycles() + model.handoff_cycles(s))
            .collect();
        let total_work: u64 = stage_work.iter().sum();
        let frac_after: Vec<f64> = (0..stages)
            .map(|s| {
                if total_work == 0 {
                    0.0
                } else {
                    stage_work[s + 1..].iter().sum::<u64>() as f64 / total_work as f64
                }
            })
            .collect();
        let controller = config
            .pipeline
            .delay_target
            .map(|target| OverloadController::new(target, config.pipeline.delay_window, Instant::now()));
        let shared = Arc::new(PipeShared {
            stats: PipeStats::new(stages),
            state: Mutex::new(PipeState {
                entry: (0..CLASSES).map(|_| VecDeque::new()).collect(),
                queues: (0..stages).map(|_| VecDeque::new()).collect(),
                wfq: WfqScheduler::new(config.pipeline.weights),
                controller,
                open: true,
                inflight: 0,
                dead: vec![false; stages],
                next_id: 0,
            }),
            ready: Condvar::new(),
            model,
            weights,
            watchdog: Watchdog::new(stages),
            frac_after,
            calib_ns_bits: (0..stages).map(|_| AtomicU64::new(0)).collect(),
            calib_samples: (0..stages).map(|_| AtomicU64::new(0)).collect(),
            config,
        });
        let handles = (0..stages)
            .map(|s| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    // The `npcgra-serve-` prefix keeps chaos-bench's panic
                    // silencer effective for injected stage kills.
                    .name(format!("npcgra-serve-pipe-{s}"))
                    .spawn(move || StageWorker::new(&shared, s).run())
                    .expect("spawn stage worker")
            })
            .collect();
        let watchdog_handle = (shared.config.pipeline.watchdog_slack > 0.0).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("npcgra-serve-pipe-watchdog".to_string())
                .spawn(move || {
                    shared.watchdog.run(|_stage| {
                        shared.stats.watchdog_preemptions.fetch_add(1, Ordering::Relaxed);
                    });
                })
                .expect("spawn pipeline watchdog")
        });
        Ok(Pipeline {
            shared,
            handles,
            watchdog_handle,
        })
    }

    /// Submit one inference; the [`Ticket`] redeems the final-stage output.
    ///
    /// Interactive class, with the configured
    /// [`pipeline.default_deadline`](crate::config::PipelineConfig) (none
    /// by default) — the same convenience contract as
    /// [`Server::submit`](crate::Server::submit).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] after [`Pipeline::shutdown`] began,
    /// [`ServeError::Degraded`] while any stage is dead (whole-model
    /// traffic sheds first), [`ServeError::Overloaded`] when the brownout
    /// ladder sheds this class, [`ServeError::QueueFull`] at capacity,
    /// [`ServeError::DeadlineExceeded`] for a zero deadline, and
    /// [`ServeError::ShapeMismatch`] for a wrong input shape.
    pub fn submit(&self, input: Tensor) -> Result<Ticket, ServeError> {
        self.submit_with_priority(input, self.shared.config.pipeline.default_deadline, Priority::Interactive)
    }

    /// [`Pipeline::submit`] with an explicit wall deadline for the final
    /// reply (`None` = never expires).
    pub fn submit_with_deadline(&self, input: Tensor, deadline: Option<Duration>) -> Result<Ticket, ServeError> {
        self.submit_with_priority(input, deadline, Priority::Interactive)
    }

    /// The full-control submit: explicit deadline and priority class.
    ///
    /// The deadline is split across stages proportionally to predicted
    /// work; a job that can no longer make it is shed at the next stage
    /// boundary instead of burning downstream stages. Zero (already
    /// expired) deadlines are rejected here, before queueing, matching
    /// [`Server`](crate::Server) semantics.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::submit`].
    pub fn submit_with_priority(&self, input: Tensor, deadline: Option<Duration>, class: Priority) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let expected = shared.model.input_shape();
        if input.shape() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                got: input.shape(),
            });
        }
        // An already-expired deadline is rejected before it queues: the
        // caller finds out now, not after the pipeline burned stages on it.
        if deadline.is_some_and(|d| d.is_zero()) {
            shared.stats.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExceeded);
        }
        let now = Instant::now();
        let mut st = shared.lock();
        if !st.open {
            return Err(ServeError::ShuttingDown);
        }
        if st.dead.iter().any(|d| *d) {
            let e = shared.degraded(&st.dead);
            drop(st);
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        // Feed the CoDel controller the pipeline's standing delay (the
        // oldest stage-queue head's residence time, any stage), or just
        // let its window tick over. Admission is the only sampling site:
        // per-stage dequeue sojourns would poison the window minimum,
        // because every stage that is *not* the bottleneck pops its jobs
        // near-instantly.
        let oldest = st.oldest_head();
        let level = if let Some(ctrl) = st.controller.as_mut() {
            let mut changes = Vec::new();
            match oldest {
                Some(oldest) => ctrl.observe(now, now.duration_since(oldest), &mut changes),
                None => ctrl.tick(now, &mut changes),
            }
            let level = ctrl.level();
            shared.apply_level_changes(&changes);
            level
        } else {
            BrownoutLevel::Normal
        };
        if level.sheds(class) {
            drop(st);
            shared.stats.overload_sheds[class.index()].fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { level, class });
        }
        // NOTE: `level.rejects_uncached()` is inert here by construction —
        // the pipeline serves exactly one model, compiled at start, so
        // every submit is a cache hit. The in-flight cap is the pipeline's
        // analogue: under deep brownout, bound the deepest stage queue.
        if level.caps_inflight() && st.max_stage_depth() >= self.stage_inflight_cap() {
            drop(st);
            shared.stats.overload_sheds[class.index()].fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { level, class });
        }
        if st.inflight >= shared.config.queue_capacity {
            return Err(ServeError::QueueFull {
                capacity: shared.config.queue_capacity,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let checksum = tensor_checksum(&input);
        let (reply, ticket) = reply_pair();
        st.push_entry(
            StageJob {
                id,
                checkpoints: vec![(0, input.clone(), checksum)],
                activation: input,
                checksum,
                attempts: 0,
                reports: Vec::new(),
                handoff_cycles: 0,
                enqueued: now,
                stage_enqueued: now,
                class,
                deadline: deadline.map(|d| now + d),
                budget: deadline.unwrap_or(Duration::ZERO),
                reply,
            },
            false,
        );
        shared.stats.checkpoints_stored.fetch_add(1, Ordering::Relaxed);
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        shared.stats.admitted_by_class[class.index()].fetch_add(1, Ordering::Relaxed);
        st.inflight += 1;
        drop(st);
        shared.ready.notify_all();
        Ok(ticket)
    }

    /// The brownout in-flight cap: the configured
    /// [`stage_inflight_cap`](crate::config::PipelineConfig), or a derived
    /// per-stage share of the queue capacity when left at 0.
    fn stage_inflight_cap(&self) -> usize {
        let cfg = &self.shared.config;
        if cfg.pipeline.stage_inflight_cap > 0 {
            cfg.pipeline.stage_inflight_cap
        } else {
            (cfg.queue_capacity / (2 * self.shared.model.num_stages())).max(1)
        }
    }

    /// A point-in-time copy of the pipeline's counters.
    #[must_use]
    pub fn stats(&self) -> PipelineStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stop admitting, drain every in-flight inference to a reply, join the
    /// stage workers and return the final counters.
    #[must_use]
    pub fn shutdown(mut self) -> PipelineStatsSnapshot {
        self.close_and_join();
        self.shared.stats.snapshot()
    }

    fn close_and_join(&mut self) {
        {
            let mut st = self.shared.lock();
            st.open = false;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Stage workers are drained; nothing is (or can become) armed.
        self.shared.watchdog.shutdown();
        if let Some(h) = self.watchdog_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        // A dropped pipeline still drains: every admitted job gets its
        // reply (or its shed) before the threads are released.
        self.close_and_join();
    }
}

/// One stage's worker: its backend, restart/spare ladders, backoff stream
/// and one-shot chaos trigger latches.
struct StageWorker<'a> {
    shared: &'a PipeShared,
    stage: usize,
    backend: Box<dyn ExecutionBackend>,
    /// Restarts charged against the budget since the last failover.
    restarts: u32,
    spares_used: usize,
    /// Monotonic rebuild ordinal (never reset) — the fault-plan seed mix,
    /// so every rebuilt or spare shard draws a fresh fault stream.
    rebuilds: u64,
    backoff_rng: u64,
    prev_backoff: Duration,
    kill_fired: bool,
    wedge_fired: bool,
    corrupt_fired: bool,
}

/// Whether a one-shot stage trigger fires for this `(stage, job)`.
fn fires(trigger: Option<StageFault>, stage: usize, job: u64, fired: &mut bool) -> bool {
    if *fired || trigger != Some(StageFault { stage, job }) {
        return false;
    }
    *fired = true;
    true
}

/// A fresh backend for stage `stage`, rebuild ordinal `generation`:
/// the configured tier and integrity mode, plus the chaos fault plan when
/// one is configured (seed mixed per stage and generation, the same
/// convention as the batch supervisor's shards).
fn build_stage_backend(config: &ServeConfig, stage: usize, generation: u64) -> Box<dyn ExecutionBackend> {
    let mut backend = backend_for(config.backend_tier, &config.spec);
    backend.set_integrity_mode(config.integrity);
    backend.set_fault_plan(stage_fault_plan(config, stage, generation));
    backend
}

fn stage_fault_plan(config: &ServeConfig, stage: usize, generation: u64) -> Option<FaultPlan> {
    let chaos = &config.chaos;
    let seed = chaos.fault_seed?;
    if chaos.fault_rate <= 0.0 && chaos.gray_rate <= 0.0 {
        return None;
    }
    let mix = seed ^ (stage as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ generation.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    Some(if chaos.gray_rate > 0.0 {
        FaultPlan::gray(
            mix,
            chaos.fault_rate,
            GrayRates {
                rate: chaos.gray_rate,
                stall_cycles: chaos.gray_stall_cycles,
                slowdown_factor: chaos.gray_slowdown_factor,
            },
        )
    } else {
        FaultPlan::bernoulli(mix, chaos.fault_rate)
    })
}

/// The typed failure a handoff-checksum mismatch surfaces as: an integrity
/// violation localized to the stage boundary (retryable — healing replays
/// the producer, which regenerates the activation).
fn handoff_error(stage: usize, expected: u64, actual: u64) -> ServeError {
    ServeError::Integrity(SimError {
        block: format!("pipeline.stage{stage}.handoff"),
        tile: 0,
        cycle: 0,
        cause: SimCause::IntegrityViolation(Violation {
            kind: CheckKind::Element,
            lane: stage,
            expected: (expected & 0x7FFF) as Word,
            actual: (actual & 0x7FFF) as Word,
        }),
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl<'a> StageWorker<'a> {
    fn new(shared: &'a PipeShared, stage: usize) -> Self {
        StageWorker {
            shared,
            stage,
            backend: build_stage_backend(&shared.config, stage, 0),
            restarts: 0,
            spares_used: 0,
            rebuilds: 0,
            backoff_rng: backoff_seed(stage),
            prev_backoff: shared.config.restart_backoff,
            kill_fired: false,
            wedge_fired: false,
            corrupt_fired: false,
        }
    }

    /// The worker loop: pop a job for this stage, process it, repeat until
    /// the pipeline drains (closed and nothing in flight) or the stage dies.
    fn run(mut self) {
        loop {
            let mut st = self.shared.lock();
            let job = loop {
                if st.dead[self.stage] {
                    return;
                }
                let popped = if self.stage == 0 {
                    st.pop_entry()
                } else {
                    st.queues[self.stage].pop_front()
                };
                if let Some(job) = popped {
                    break job;
                }
                if !st.open && st.inflight == 0 {
                    return;
                }
                st = self.shared.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
            };
            drop(st);
            if !self.process(job) {
                return;
            }
        }
    }

    /// Process one job at this stage. Returns `false` when the stage died
    /// doing it.
    fn process(&mut self, mut job: StageJob) -> bool {
        let shared = self.shared;
        let cfg = &shared.config;
        let s = self.stage;

        // Deadline propagation: shed at this boundary if the remaining
        // budget can no longer cover this stage and everything after it.
        // `frac_after[s]` is the share of predicted work in stages *after*
        // `s`, so the cut-off at stage `s` is the final deadline minus the
        // downstream stages' proportional slice — a job past it would burn
        // this stage and still miss.
        if let Some(final_deadline) = job.deadline {
            let downstream = job.budget.mul_f64(shared.frac_after[s]);
            if Instant::now() + downstream >= final_deadline {
                shared.stats.deadline_sheds.fetch_add(1, Ordering::Relaxed);
                shared.conclude(&job.reply, Err(ServeError::DeadlineExceeded));
                return true;
            }
        }

        // Chaos: corrupt the handoff before entry verification sees it.
        if fires(cfg.chaos.stage_corrupt, s, job.id, &mut self.corrupt_fired) {
            if let Some(w) = job.activation.as_mut_slice().first_mut() {
                *w ^= 1;
            }
        }

        // Handoff integrity: verify the producer's checksum at entry.
        let actual = tensor_checksum(&job.activation);
        if actual != job.checksum {
            shared.stats.handoff_corruptions.fetch_add(1, Ordering::Relaxed);
            let e = handoff_error(s, job.checksum, actual);
            return self.fail(job, e, RetryClass::Retry);
        }

        // Checkpoint this verified boundary (dedup: boundary 0 was stored
        // at submit; a healed job re-enters with its checkpoint intact).
        let on_stride = cfg.checkpoint_every > 0 && s.is_multiple_of(cfg.checkpoint_every);
        if (s == 0 || on_stride) && job.checkpoints.last().map(|(b, _, _)| *b) != Some(s) {
            job.checkpoints.push((s, job.activation.clone(), job.checksum));
            shared.stats.checkpoints_stored.fetch_add(1, Ordering::Relaxed);
        }

        // Chaos triggers for this pass.
        let kill = fires(cfg.chaos.stage_kill, s, job.id, &mut self.kill_fired);
        let wedge = fires(cfg.chaos.stage_wedge, s, job.id, &mut self.wedge_fired);
        if wedge {
            self.backend.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
                tile: 0,
                cycle: 1,
                site: FaultSite::Temporal(TemporalFault::Wedge),
            }])));
        }
        // Stage watchdog: once this stage's ns-per-cycle estimate has
        // calibrated, arm a wall deadline over the whole stage pass. The
        // watchdog thread cancels the run's token past it; the run surfaces
        // [`ServeError::Preempted`] and walks the restart→spare ladder.
        let predicted = shared.model.stages()[s].predicted_cycles();
        let slack = cfg.pipeline.watchdog_slack;
        let armed = if slack > 0.0 && predicted > 0 {
            shared.stage_ns_per_cycle(s).map(|ns| {
                let wall = Duration::from_nanos((predicted as f64 * ns * slack) as u64).max(WATCHDOG_FLOOR);
                let token = CancelToken::new();
                self.backend.set_cancel_token(Some(token.clone()));
                shared.watchdog.arm(s, Instant::now() + wall, token);
            })
        } else {
            None
        };
        let budget_mult = if cfg.cycle_budget > 0.0 {
            cfg.cycle_budget
        } else if wedge && armed.is_none() {
            // No budget and no armed watchdog: fall back so the injected
            // wedge still surfaces as a typed preemption. With the watchdog
            // armed the wedge is caught on the wall clock instead — the
            // path the combined soak gate exercises.
            WEDGE_FALLBACK_BUDGET
        } else {
            0.0
        };

        // Run the stage's layers under supervision.
        let started = Instant::now();
        let layers = shared.model.stages()[s].layers();
        let backend = self.backend.as_mut();
        let activation = &job.activation;
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(Tensor, Vec<LayerReport>), ServeError> {
            assert!(!kill, "chaos: injected stage kill");
            let mut act = activation.clone();
            let mut reports = Vec::with_capacity(layers.len());
            for i in layers.clone() {
                let compiled = shared.model.layer(i);
                let block_cycles = compiled.block_compute_cycles();
                backend.set_cycle_budget((budget_mult > 0.0 && block_cycles > 0).then(|| {
                    // Per run_block call; +1 keeps an exact-cost run inside.
                    ((block_cycles as f64 * budget_mult).ceil() as u64).max(block_cycles + 1)
                }));
                let (out, report) = backend.run_layer(compiled, &act, &shared.weights[i])?;
                reports.push(report);
                act = out;
            }
            Ok((act, reports))
        }));
        if armed.is_some() {
            shared.watchdog.disarm(s);
            self.backend.set_cancel_token(None);
        }
        if wedge {
            // Put the configured (non-wedge) plan back for later passes.
            self.backend.set_fault_plan(stage_fault_plan(cfg, s, self.rebuilds));
        }

        match outcome {
            Ok(Ok((out, reports))) => {
                // A healthy pass is a calibration sample for the stage's
                // ns-per-cycle estimate.
                shared.observe_stage_timing(s, predicted, started.elapsed());
                self.forward(job, out, reports);
                true
            }
            Ok(Err(e)) => {
                if matches!(e, ServeError::Integrity(_)) {
                    shared.stats.integrity_failures.fetch_add(1, Ordering::Relaxed);
                }
                if e.is_preemption() {
                    shared.stats.preemptions.fetch_add(1, Ordering::Relaxed);
                }
                let class = RetryClass::of(&e);
                self.fail(job, e, class)
            }
            Err(payload) => {
                shared.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                let message = panic_message(payload.as_ref());
                self.fail(job, ServeError::WorkerPanic { message }, RetryClass::RebuildAndRetry)
            }
        }
    }

    /// Hand a completed stage's output onward: reply when this was the last
    /// stage, otherwise checksum and enqueue for the next one (charging the
    /// DMA handoff).
    fn forward(&mut self, mut job: StageJob, out: Tensor, reports: Vec<LayerReport>) {
        let shared = self.shared;
        let s = self.stage;
        job.reports.extend(reports);
        job.activation = out;
        if s + 1 == shared.model.num_stages() {
            let mut report = LayerReport::total(shared.model.name(), &job.reports);
            report.cycles += job.handoff_cycles;
            report.dma_cycles += job.handoff_cycles;
            shared.stats.cycles_charged.fetch_add(report.cycles, Ordering::Relaxed);
            let response = Response {
                output: job.activation,
                report,
                batch_size: 1,
                worker: s,
                latency: job.enqueued.elapsed(),
                request_id: job.reply.request_id(),
            };
            shared.conclude(&job.reply, Ok(response));
            return;
        }
        job.checksum = tensor_checksum(&job.activation);
        let hand = shared.model.handoff_cycles(s);
        job.handoff_cycles += hand;
        shared.stats.handoff_cycles.fetch_add(hand, Ordering::Relaxed);
        let mut st = shared.lock();
        if st.dead[s + 1] {
            let e = shared.degraded(&st.dead);
            drop(st);
            shared.conclude(&job.reply, Err(e));
            return;
        }
        job.stage_enqueued = Instant::now();
        st.queues[s + 1].push_back(job);
        drop(st);
        shared.ready.notify_all();
    }

    /// Handle a failed pass per its [`RetryClass`]: reply finally, or heal
    /// from the last checkpoint (walking the rebuild/failover ladder first
    /// for rebuild-class failures). Returns `false` when the stage died.
    fn fail(&mut self, mut job: StageJob, e: ServeError, class: RetryClass) -> bool {
        let shared = self.shared;
        match class {
            RetryClass::Final => {
                shared.conclude(&job.reply, Err(e));
                true
            }
            RetryClass::Retry | RetryClass::RebuildAndRetry => {
                if class == RetryClass::RebuildAndRetry && !self.rebuild_or_die() {
                    self.die(job);
                    return false;
                }
                job.attempts += 1;
                if job.attempts > shared.config.max_retries {
                    let attempts = job.attempts;
                    shared.conclude(
                        &job.reply,
                        Err(ServeError::Quarantined {
                            attempts,
                            cause: Box::new(e),
                        }),
                    );
                    return true;
                }
                self.heal(&mut job);
                let mut st = shared.lock();
                // Healing may target an earlier stage; hand the job to that
                // queue's front so recovery preempts fresh work.
                let b = job.checkpoints.last().map_or(0, |(b, _, _)| *b);
                job.stage_enqueued = Instant::now();
                if b == 0 {
                    st.push_entry(job, true);
                } else {
                    st.queues[b].push_front(job);
                }
                drop(st);
                shared.ready.notify_all();
                true
            }
        }
    }

    /// Roll `job` back to its most recent checkpoint at or before this
    /// stage. Replay counters cover exactly the stages that will re-run.
    fn heal(&mut self, job: &mut StageJob) {
        let shared = self.shared;
        let s = self.stage;
        let (b, act, sum) = job
            .checkpoints
            .iter()
            .rev()
            .find(|(b, _, _)| *b <= s)
            .expect("boundary 0 is always checkpointed")
            .clone();
        job.activation = act;
        job.checksum = sum;
        job.checkpoints.retain(|(x, _, _)| *x <= b);
        // Drop reports (and their cycles) for the layers being replayed.
        job.reports.truncate(shared.model.stages()[b].layers().start);
        for x in b..=s {
            shared.stats.stage_replays[x].fetch_add(1, Ordering::Relaxed);
        }
        shared.stats.checkpoint_restores.fetch_add(1, Ordering::Relaxed);
    }

    /// Walk the restart ladder after a rebuild-class failure: rebuild under
    /// the restart budget (with decorrelated-jitter backoff), fail over to
    /// a spare shard past it, and report `false` with everything exhausted.
    fn rebuild_or_die(&mut self) -> bool {
        let shared = self.shared;
        let cfg = &shared.config;
        let s = self.stage;
        self.restarts += 1;
        if self.restarts > cfg.restart_budget {
            if self.spares_used >= cfg.stage_spares {
                return false;
            }
            self.spares_used += 1;
            self.restarts = 0;
            shared.stats.stage_failovers[s].fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.stage_restarts[s].fetch_add(1, Ordering::Relaxed);
        }
        let base = cfg.restart_backoff;
        if !base.is_zero() {
            self.backoff_rng = splitmix64(self.backoff_rng);
            let backoff = decorrelated_backoff(base, base * 64, self.prev_backoff, self.backoff_rng);
            self.prev_backoff = backoff;
            std::thread::sleep(backoff);
        }
        self.rebuilds += 1;
        self.backend = build_stage_backend(cfg, s, self.rebuilds);
        true
    }

    /// Retire this stage: flag it dead, shed its queue and the in-hand job
    /// with [`ServeError::Degraded`]. Upstream stages shed at forward time;
    /// new submits shed at admission — whole-model traffic degrades before
    /// any single-layer traffic would.
    fn die(&mut self, job: StageJob) {
        let shared = self.shared;
        let s = self.stage;
        let mut st = shared.lock();
        st.dead[s] = true;
        let e = shared.degraded(&st.dead);
        let mut drained: Vec<StageJob> = st.queues[s].drain(..).collect();
        if s == 0 {
            // Stage 0 also owns the per-class entry FIFOs.
            for q in &mut st.entry {
                drained.extend(q.drain(..));
            }
        }
        drop(st);
        shared.conclude(&job.reply, Err(e.clone()));
        for j in drained {
            shared.conclude(&j.reply, Err(e.clone()));
        }
        shared.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_arch::CgraSpec;
    use npcgra_nn::ConvLayer;

    fn small_model(stages: usize) -> (CompiledModel, Vec<Tensor>, Vec<ConvLayer>) {
        let layers = vec![
            ConvLayer::depthwise("dw1", 3, 8, 8, 3, 1, 1),
            ConvLayer::pointwise("pw1", 3, 4, 8, 8),
            ConvLayer::depthwise("dw2", 4, 8, 8, 3, 1, 1),
            ConvLayer::pointwise("pw2", 4, 4, 8, 8),
        ];
        let spec = CgraSpec::np_cgra(4, 4);
        let model = CompiledModel::compile("tiny", &layers, &spec, stages).unwrap();
        let weights: Vec<Tensor> = layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.random_weights(10 + i as u64))
            .collect();
        (model, weights, layers)
    }

    fn config(spec: &CgraSpec) -> ServeConfig {
        ServeConfig::for_spec(spec).with_restart_backoff(Duration::ZERO)
    }

    #[test]
    fn pipeline_serves_bit_exact_end_to_end() {
        let (model, weights, layers) = small_model(2);
        let cfg = config(model.spec());
        let input = Tensor::random(3, 8, 8, 77);
        let mut golden = input.clone();
        for (l, w) in layers.iter().zip(&weights) {
            golden = npcgra_nn::reference::run_layer(l, &golden, w).unwrap();
        }
        let pipe = Pipeline::start(cfg, model, weights).unwrap();
        let ticket = pipe.submit(input).unwrap();
        let response = ticket.wait().unwrap();
        assert_eq!(response.output, golden, "pipeline output diverged from the reference");
        assert!(response.report.cycles > 0);
        let stats = pipe.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.total_replays(), 0, "a clean run heals nothing");
        assert_eq!(stats.total_failovers(), 0);
    }

    #[test]
    fn submit_validates_shape_and_capacity() {
        let (model, weights, _) = small_model(2);
        let cfg = config(model.spec()).with_queue_capacity(64);
        let pipe = Pipeline::start(cfg, model, weights).unwrap();
        let err = pipe.submit(Tensor::zeros(2, 8, 8)).unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { expected: (3, 8, 8), .. }));
        drop(pipe);
    }

    #[test]
    fn start_rejects_wrong_weights() {
        let (model, mut weights, _) = small_model(2);
        weights.pop();
        let cfg = config(&CgraSpec::np_cgra(4, 4));
        assert!(matches!(
            Pipeline::start(cfg, model, weights),
            Err(ServeError::ShapeMismatch { .. })
        ));
        let (model, mut weights, _) = small_model(2);
        weights[0] = Tensor::zeros(1, 1, 1);
        assert!(matches!(
            Pipeline::start(cfg, model, weights),
            Err(ServeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn shutdown_rejects_new_submits_but_drains_inflight() {
        let (model, weights, _) = small_model(2);
        let cfg = config(model.spec());
        let pipe = Pipeline::start(cfg, model, weights).unwrap();
        let tickets: Vec<Ticket> = (0..4).map(|i| pipe.submit(Tensor::random(3, 8, 8, i)).unwrap()).collect();
        let stats = pipe.shutdown();
        assert_eq!(stats.completed, 4, "shutdown drains all in-flight inferences");
        for t in tickets {
            assert!(t.wait_timeout(Duration::ZERO).is_ok(), "every ticket resolved");
        }
    }

    #[test]
    fn stage_kill_heals_from_checkpoint_and_fails_over() {
        let (model, weights, layers) = small_model(2);
        let mut cfg = config(model.spec())
            .with_restart_budget(0)
            .with_stage_spares(1)
            .with_checkpoint_every(1);
        cfg.chaos.stage_kill = Some(StageFault { stage: 1, job: 1 });
        let inputs: Vec<Tensor> = (0..3).map(|i| Tensor::random(3, 8, 8, 100 + i)).collect();
        let goldens: Vec<Tensor> = inputs
            .iter()
            .map(|input| {
                let mut g = input.clone();
                for (l, w) in layers.iter().zip(&weights) {
                    g = npcgra_nn::reference::run_layer(l, &g, w).unwrap();
                }
                g
            })
            .collect();
        let pipe = Pipeline::start(cfg, model, weights).unwrap();
        let tickets: Vec<Ticket> = inputs.into_iter().map(|i| pipe.submit(i).unwrap()).collect();
        for (t, golden) in tickets.into_iter().zip(&goldens) {
            assert_eq!(&t.wait().unwrap().output, golden, "healed inference stayed bit-exact");
        }
        let stats = pipe.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.panics_caught, 1);
        assert_eq!(stats.stage_failovers, vec![0, 1], "budget 0 fails straight over to the spare");
        assert_eq!(stats.stage_replays, vec![0, 1], "healing replayed only the killed stage");
        assert_eq!(stats.checkpoint_restores, 1);
    }

    #[test]
    fn spare_exhaustion_sheds_whole_model_traffic() {
        let (model, weights, _) = small_model(2);
        let mut cfg = config(model.spec())
            .with_restart_budget(0)
            .with_stage_spares(0)
            .with_checkpoint_every(1);
        cfg.chaos.stage_kill = Some(StageFault { stage: 1, job: 0 });
        let pipe = Pipeline::start(cfg, model, weights).unwrap();
        let t = pipe.submit(Tensor::random(3, 8, 8, 5)).unwrap();
        let err = t.wait().unwrap_err();
        assert!(
            matches!(err, ServeError::Degraded { healthy: 1, workers: 2 }),
            "no spares: the killed stage dies and sheds, got {err}"
        );
        // Follow-up whole-model submits shed at admission.
        let err = loop {
            match pipe.submit(Tensor::random(3, 8, 8, 6)) {
                Err(e) => break e,
                // The death races admission; a briefly accepted job sheds
                // at the dead stage instead.
                Ok(t) => {
                    let _ = t.wait();
                }
            }
        };
        assert!(matches!(err, ServeError::Degraded { .. }));
        let stats = pipe.shutdown();
        assert_eq!(stats.completed, 0);
        assert!(stats.shed >= 2);
    }

    #[test]
    fn checkpoint_stride_replays_from_the_earlier_boundary() {
        let (model, _weights, _) = small_model(4);
        assert_eq!(model.num_stages(), 2, "two fused units cap the stage count");
        let (model4, weights4, layers4) = {
            // A 4-unit chain so stride-2 checkpointing has a gap to prove.
            let layers = vec![
                ConvLayer::pointwise("a", 3, 3, 8, 8),
                ConvLayer::pointwise("b", 3, 3, 8, 8),
                ConvLayer::pointwise("c", 3, 3, 8, 8),
                ConvLayer::pointwise("d", 3, 3, 8, 8),
            ];
            let spec = CgraSpec::np_cgra(4, 4);
            let model = CompiledModel::compile("four", &layers, &spec, 4).unwrap();
            let weights: Vec<Tensor> = layers
                .iter()
                .enumerate()
                .map(|(i, l)| l.random_weights(30 + i as u64))
                .collect();
            (model, weights, layers)
        };
        assert_eq!(model4.num_stages(), 4);
        let mut cfg = config(model4.spec()).with_checkpoint_every(2).with_max_retries(4);
        // Corrupt the handoff INTO stage 3: with checkpoints only at 0 and
        // 2, healing must land on boundary 2 and replay stages 2 and 3.
        cfg.chaos.stage_corrupt = Some(StageFault { stage: 3, job: 0 });
        let input = Tensor::random(3, 8, 8, 41);
        let mut golden = input.clone();
        for (l, w) in layers4.iter().zip(&weights4) {
            golden = npcgra_nn::reference::run_layer(l, &golden, w).unwrap();
        }
        let pipe = Pipeline::start(cfg, model4, weights4).unwrap();
        let t = pipe.submit(input).unwrap();
        assert_eq!(t.wait().unwrap().output, golden);
        let stats = pipe.shutdown();
        assert_eq!(stats.handoff_corruptions, 1);
        assert_eq!(
            stats.stage_replays,
            vec![0, 0, 1, 1],
            "stride-2 checkpoints heal from boundary 2, replaying stages 2..=3"
        );
        assert_eq!(stats.checkpoints_stored, 2, "boundaries 0 and 2 only");
        drop(layers4);
    }

    #[test]
    fn wedge_preempts_and_heals_via_cycle_budget() {
        let (model, weights, layers) = small_model(2);
        let mut cfg = config(model.spec())
            .with_cycle_budget(8.0)
            .with_restart_budget(0)
            .with_stage_spares(1);
        cfg.chaos.stage_wedge = Some(StageFault { stage: 0, job: 0 });
        let input = Tensor::random(3, 8, 8, 9);
        let mut golden = input.clone();
        for (l, w) in layers.iter().zip(&weights) {
            golden = npcgra_nn::reference::run_layer(l, &golden, w).unwrap();
        }
        let pipe = Pipeline::start(cfg, model, weights).unwrap();
        let t = pipe.submit(input).unwrap();
        assert_eq!(t.wait().unwrap().output, golden, "wedged inference healed bit-exact");
        let stats = pipe.shutdown();
        assert_eq!(stats.preemptions, 1, "the wedge became a typed cycle-budget preemption");
        assert_eq!(stats.stage_failovers, vec![1, 0]);
        assert_eq!(stats.stage_replays, vec![1, 0]);
    }
}
