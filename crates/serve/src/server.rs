//! The worker-shard server: admission, queueing, batching, execution.
//!
//! Each worker thread owns one simulated [`Machine`] (a "shard") and drains
//! a shared, bounded, per-model work queue. A worker forms a batch when a
//! model's queue reaches `max_batch`, when its oldest request has lingered
//! `max_linger`, or when the server is draining for shutdown — whichever
//! comes first — then coalesces the requests with [`crate::batch`], fetches
//! the compiled program from the shared [`ProgramCache`], and runs the
//! batch on its own machine. Requests whose deadline passed while queued
//! are shed at batch formation, before any simulation work is spent on
//! them.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use npcgra_nn::{ConvKind, ConvLayer, Tensor};
use npcgra_sim::{run_standard_via_im2col, LayerReport, Machine, MappingKind};

use crate::batch;
use crate::cache::ProgramCache;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::stats::{Stats, StatsSnapshot};

/// Handle to a registered model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(usize);

/// A completed inference.
#[derive(Debug, Clone)]
pub struct Response {
    /// The output feature map, bit-exact with a solo run of the model.
    pub output: Tensor,
    /// Simulated-hardware performance report for the run that produced
    /// this output (shared by all requests coalesced into the batch).
    pub report: LayerReport,
    /// How many requests the executing batch coalesced.
    pub batch_size: usize,
    /// Which worker shard ran the batch.
    pub worker: usize,
    /// Queue + execution time, from admission to reply.
    pub latency: Duration,
}

/// The receive side of one request; redeemed with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the request completes or is shed.
    ///
    /// # Errors
    ///
    /// Returns the typed rejection ([`ServeError::DeadlineExceeded`],
    /// [`ServeError::ShuttingDown`], …) or the simulation failure.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

struct ModelEntry {
    name: String,
    layer: ConvLayer,
    weights: Arc<Tensor>,
}

struct Pending {
    input: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Response, ServeError>>,
}

struct QueueState {
    /// One FIFO per registered model, indexed by [`ModelId`].
    queues: Vec<VecDeque<Pending>>,
    /// Total requests queued across all models (admission-control bound).
    total: usize,
    /// Cleared by shutdown; workers then drain and exit.
    open: bool,
}

struct Shared {
    config: ServeConfig,
    models: RwLock<Vec<ModelEntry>>,
    queue: Mutex<QueueState>,
    ready: Condvar,
    cache: ProgramCache,
    stats: Stats,
    started: Instant,
}

/// A sharded, batching inference server over the cycle-accurate simulator.
///
/// See the [crate docs](crate) for the architecture; see
/// [`ServeConfig`] for tuning knobs.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start the server: spawns `config.workers` worker-shard threads.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            stats: Stats::new(config.workers, config.max_batch),
            config,
            models: RwLock::new(Vec::new()),
            queue: Mutex::new(QueueState {
                queues: Vec::new(),
                total: 0,
                open: true,
            }),
            ready: Condvar::new(),
            cache: ProgramCache::new(),
            started: Instant::now(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("npcgra-serve-{i}"))
                    .spawn(move || worker_main(&shared, i))
                    .expect("spawn worker shard")
            })
            .collect();
        Server { shared, workers }
    }

    /// Register a model (one DSC or standard layer with its weights) and
    /// eagerly compile its program into the shared cache, so no request
    /// ever pays for mapping compilation.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] if `weights` does not have the shape
    /// [`ConvLayer::random_weights`] documents for the layer kind;
    /// [`ServeError::Sim`] if the layer cannot be mapped onto the spec.
    pub fn register(&self, name: &str, layer: ConvLayer, weights: Tensor) -> Result<ModelId, ServeError> {
        let expected = expected_weight_shape(&layer);
        let got = (weights.channels(), weights.height(), weights.width());
        if got != expected {
            return Err(ServeError::ShapeMismatch { expected, got });
        }
        if layer.kind() != ConvKind::Standard {
            self.shared
                .cache
                .get_or_compile(&layer, &self.shared.config.spec, MappingKind::Auto)?;
        }
        let mut models = self.shared.models.write().expect("models lock");
        let id = ModelId(models.len());
        models.push(ModelEntry {
            name: name.to_string(),
            layer,
            weights: Arc::new(weights),
        });
        drop(models);
        self.shared.queue.lock().expect("queue lock").queues.push(VecDeque::new());
        Ok(id)
    }

    /// Submit a request with the configured default deadline.
    ///
    /// # Errors
    ///
    /// As [`Server::submit_with_deadline`].
    pub fn submit(&self, model: ModelId, input: Tensor) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(model, input, self.shared.config.default_deadline)
    }

    /// Submit a request that must *start executing* within `deadline`
    /// (`None` = never expires). Admission control applies here: a full
    /// queue or a draining server rejects synchronously, typed.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::ShapeMismatch`],
    /// [`ServeError::QueueFull`] or [`ServeError::ShuttingDown`].
    pub fn submit_with_deadline(&self, model: ModelId, input: Tensor, deadline: Option<Duration>) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        {
            let models = shared.models.read().expect("models lock");
            let entry = models.get(model.0).ok_or(ServeError::UnknownModel)?;
            let expected = (entry.layer.in_channels(), entry.layer.in_h(), entry.layer.in_w());
            let got = (input.channels(), input.height(), input.width());
            if got != expected {
                return Err(ServeError::ShapeMismatch { expected, got });
            }
        }
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let mut q = shared.queue.lock().expect("queue lock");
        if !q.open {
            shared.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        if q.total >= shared.config.queue_capacity {
            shared.stats.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                capacity: shared.config.queue_capacity,
            });
        }
        q.queues[model.0].push_back(Pending {
            input,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            reply: tx,
        });
        q.total += 1;
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        shared.stats.observe_queue_depth(q.total as u64);
        drop(q);
        shared.ready.notify_one();
        Ok(Ticket { rx })
    }

    /// A live statistics snapshot (cache counters included).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let depth = self.shared.queue.lock().expect("queue lock").total;
        let mut snap = self.shared.stats.snapshot(self.shared.started.elapsed(), depth);
        snap.cache_hits = self.shared.cache.hits();
        snap.cache_misses = self.shared.cache.misses();
        snap
    }

    /// The name a model was registered under.
    #[must_use]
    pub fn model_name(&self, model: ModelId) -> Option<String> {
        self.shared
            .models
            .read()
            .expect("models lock")
            .get(model.0)
            .map(|e| e.name.clone())
    }

    /// The IFM shape `(channels, height, width)` a model's requests must
    /// carry.
    #[must_use]
    pub fn model_shape(&self, model: ModelId) -> Option<(usize, usize, usize)> {
        self.shared
            .models
            .read()
            .expect("models lock")
            .get(model.0)
            .map(|e| (e.layer.in_channels(), e.layer.in_h(), e.layer.in_w()))
    }

    /// Graceful shutdown: stop admitting, let the workers drain every
    /// queued request (batching as usual), join them, and return the final
    /// statistics. With zero workers the queue cannot drain, so remaining
    /// requests are rejected with [`ServeError::ShuttingDown`].
    #[must_use]
    pub fn shutdown(self) -> StatsSnapshot {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.open = false;
        }
        self.shared.ready.notify_all();
        for h in self.workers {
            h.join().expect("worker shard panicked");
        }
        let mut q = self.shared.queue.lock().expect("queue lock");
        let mut shed = 0usize;
        for queue in &mut q.queues {
            while let Some(p) = queue.pop_front() {
                shed += 1;
                self.shared.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                let _ = p.reply.send(Err(ServeError::ShuttingDown));
            }
        }
        q.total -= shed;
        let depth = q.total;
        drop(q);
        let mut snap = self.shared.stats.snapshot(self.shared.started.elapsed(), depth);
        snap.cache_hits = self.shared.cache.hits();
        snap.cache_misses = self.shared.cache.misses();
        snap
    }
}

fn expected_weight_shape(layer: &ConvLayer) -> (usize, usize, usize) {
    match layer.kind() {
        ConvKind::Depthwise => (layer.in_channels(), layer.k(), layer.k()),
        ConvKind::Pointwise => (layer.out_channels(), 1, layer.in_channels()),
        ConvKind::Standard => (
            layer.out_channels(),
            layer.k(),
            layer.k() * layer.in_channels() / layer.groups(),
        ),
    }
}

/// The batched mapping to prefer for a combined layer: the §5.4
/// channel-batched DWC when it applies, the paper's per-kind best otherwise.
fn preferred_kind(layer: &ConvLayer) -> MappingKind {
    if layer.kind() == ConvKind::Depthwise && layer.s() == 1 && layer.k() * layer.k() <= npcgra_arch::grf::GRF_WORDS {
        MappingKind::BatchedDwcS1
    } else {
        MappingKind::Auto
    }
}

/// Pull the next batch off the shared queue, blocking until one is ready
/// or the server drains empty during shutdown (→ `None`, worker exits).
fn next_batch(shared: &Shared) -> Option<(ModelId, Vec<Pending>)> {
    let config = &shared.config;
    let mut q = shared.queue.lock().expect("queue lock");
    loop {
        // The model whose head request has waited longest: it is both the
        // fairness choice and the first to hit its linger deadline.
        let oldest = q
            .queues
            .iter()
            .enumerate()
            .filter_map(|(i, dq)| dq.front().map(|p| (i, p.enqueued)))
            .min_by_key(|&(_, t)| t);
        match oldest {
            None => {
                if !q.open {
                    return None;
                }
                q = shared.ready.wait(q).expect("queue lock");
            }
            Some((m, head_enqueued)) => {
                let now = Instant::now();
                let len = q.queues[m].len();
                let lingered = now.duration_since(head_enqueued) >= config.max_linger;
                if len >= config.max_batch || lingered || !q.open {
                    let take = len.min(config.max_batch);
                    let items: Vec<Pending> = q.queues[m].drain(..take).collect();
                    q.total -= take;
                    return Some((ModelId(m), items));
                }
                let wait = config.max_linger - now.duration_since(head_enqueued);
                q = shared.ready.wait_timeout(q, wait).expect("queue lock").0;
            }
        }
    }
}

fn worker_main(shared: &Shared, worker: usize) {
    let mut machine = Machine::new(&shared.config.spec);
    while let Some((model, pendings)) = next_batch(shared) {
        let busy_start = Instant::now();
        run_batch(shared, worker, &mut machine, model, pendings);
        shared.stats.observe_worker_busy(worker, busy_start.elapsed());
    }
}

fn run_batch(shared: &Shared, worker: usize, machine: &mut Machine, model: ModelId, pendings: Vec<Pending>) {
    // Shed requests whose deadline passed while queued — before spending
    // any simulation time on them.
    let now = Instant::now();
    let mut live = Vec::with_capacity(pendings.len());
    for p in pendings {
        if p.deadline.is_some_and(|d| d < now) {
            shared.stats.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            let _ = p.reply.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }

    let (layer, weights) = {
        let models = shared.models.read().expect("models lock");
        let entry = &models[model.0];
        (entry.layer.clone(), Arc::clone(&entry.weights))
    };
    let spec = &shared.config.spec;

    let outcome: Result<(Vec<Tensor>, LayerReport), ServeError> = if live.len() == 1 || !batch::batchable(&layer) {
        // Solo path (also every standard-conv request): no coalescing.
        let mut outputs = Vec::with_capacity(live.len());
        let mut last_report = None;
        let mut solo = || -> Result<(), ServeError> {
            for p in &live {
                let (ofm, report) = if layer.kind() == ConvKind::Standard {
                    run_standard_via_im2col(&layer, &p.input, &weights, spec)?
                } else {
                    let compiled = shared.cache.get_or_compile(&layer, spec, MappingKind::Auto)?;
                    compiled.run_on(machine, &p.input, &weights)?
                };
                outputs.push(ofm);
                last_report = Some(report);
            }
            Ok(())
        };
        solo().map(|()| (outputs, last_report.expect("at least one request")))
    } else {
        let b = live.len();
        let big = batch::combined_layer(&layer, b);
        let inputs: Vec<&Tensor> = live.iter().map(|p| &p.input).collect();
        let big_ifm = batch::combined_ifm(&layer, &inputs);
        let big_w = batch::combined_weights(&layer, &weights, b);
        shared
            .cache
            .get_or_compile(&big, spec, preferred_kind(&big))
            .or_else(|_| shared.cache.get_or_compile(&big, spec, MappingKind::Auto))
            .map_err(ServeError::from)
            .and_then(|compiled| compiled.run_on(machine, &big_ifm, &big_w).map_err(ServeError::from))
            .map(|(ofm, report)| (batch::split_ofm(&layer, b, &ofm), report))
    };

    let batch_size = live.len();
    shared.stats.observe_batch(batch_size);
    match outcome {
        Ok((outputs, report)) => {
            let done = Instant::now();
            for (p, output) in live.into_iter().zip(outputs) {
                let latency = done.duration_since(p.enqueued);
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                shared.stats.observe_latency(latency);
                let _ = p.reply.send(Ok(Response {
                    output,
                    report: report.clone(),
                    batch_size,
                    worker,
                    latency,
                }));
            }
        }
        Err(e) => {
            for p in live {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                let _ = p.reply.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_arch::CgraSpec;

    fn config() -> ServeConfig {
        ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
            .with_workers(2)
            .with_max_batch(2)
            .with_max_linger(Duration::from_millis(1))
    }

    #[test]
    fn serve_one_request_end_to_end() {
        let server = Server::start(config());
        let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
        let w = layer.random_weights(1);
        let id = server.register("m", layer.clone(), w.clone()).unwrap();
        let ifm = Tensor::random(3, 8, 8, 2);
        let golden = npcgra_nn::reference::run_layer(&layer, &ifm, &w).unwrap();
        let resp = server.submit(id, ifm).unwrap().wait().unwrap();
        assert_eq!(resp.output, golden);
        assert!(resp.report.cycles > 0);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn unknown_model_and_bad_shape_are_rejected() {
        let server = Server::start(config().with_workers(0));
        assert_eq!(
            server.submit(ModelId(7), Tensor::zeros(1, 1, 1)).unwrap_err(),
            ServeError::UnknownModel
        );
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let err = server.submit(id, Tensor::zeros(4, 2, 4)).unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { .. }));
        let _ = server.shutdown();
    }

    #[test]
    fn bad_weight_shape_is_rejected_at_registration() {
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
        let err = server.register("m", layer, Tensor::zeros(3, 2, 2)).unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { .. }));
        let _ = server.shutdown();
    }

    #[test]
    fn model_name_round_trips() {
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server
            .register("mobilenet.pw1", layer.clone(), layer.random_weights(1))
            .unwrap();
        assert_eq!(server.model_name(id).as_deref(), Some("mobilenet.pw1"));
        assert_eq!(server.model_name(ModelId(9)), None);
        let _ = server.shutdown();
    }
}
