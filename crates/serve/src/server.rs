//! The worker-shard server: admission, queueing, batching, execution.
//!
//! Each worker thread owns one simulated [`Machine`](npcgra_sim::Machine)
//! (a "shard") and drains a shared, bounded, per-model work queue. A worker
//! forms a batch when a model's queue reaches `max_batch`, when its oldest
//! request has lingered `max_linger`, or when the server is draining for
//! shutdown — whichever comes first — then coalesces the requests with
//! [`crate::batch`], fetches the compiled program from the shared
//! [`ProgramCache`], and runs the batch on its own machine. Requests whose
//! deadline passed while queued are shed at batch formation, before any
//! simulation work is spent on them.
//!
//! Execution is supervised ([`crate::supervisor`]): worker panics are
//! caught, the shard's machine is rebuilt, and a restart budget bounds how
//! many panics a shard survives before it is retired. Failed batches flow
//! through the bisecting retry policy ([`crate::retry`]) that isolates
//! poison requests so their batch-mates still complete.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use npcgra_nn::{ConvKind, ConvLayer, Tensor};
use npcgra_sim::{LayerReport, MappingKind};

use crate::cache::ProgramCache;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::journal::{self, DedupEntry, DedupTable, JournalConfig, JournalWriter, Record, RecoveredAdmit, RecoveryReport};
use crate::overload::{BrownoutLevel, LevelChange, OverloadController, Priority, WfqScheduler, CLASSES};
use crate::stats::{Stats, StatsSnapshot, WorkerExit};
use crate::supervisor;
use crate::watchdog::Watchdog;

/// Handle to a registered model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(pub(crate) usize);

impl ModelId {
    /// The id as a dense registration index (what the wire protocol
    /// carries).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuild an id from its dense index. An index that was never
    /// registered is not dangerous — submitting with it yields
    /// [`ServeError::UnknownModel`].
    #[must_use]
    pub fn from_index(i: usize) -> ModelId {
        ModelId(i)
    }
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct Response {
    /// The output feature map, bit-exact with a solo run of the model.
    pub output: Tensor,
    /// Simulated-hardware performance report for the run that produced
    /// this output (shared by all requests coalesced into the batch).
    pub report: LayerReport,
    /// How many requests the executing batch coalesced.
    pub batch_size: usize,
    /// Which worker shard ran the batch.
    pub worker: usize,
    /// Queue + execution time, from admission to reply.
    pub latency: Duration,
    /// The request's id (assigned at submit, unique within the process) —
    /// the trace key matching this reply to its client-side record.
    pub request_id: u64,
}

/// The reply slot backing one request: a one-shot rendezvous between the
/// worker that eventually replies and the [`Ticket`] that redeems it.
/// Unlike a channel, the slot has an explicit *tombstoned* state: a
/// dropped (abandoned) ticket marks it, so a late worker reply is dropped
/// and counted (`late_replies`) instead of leaking into a buffer nobody
/// will ever read.
#[derive(Debug)]
struct ReplySlot {
    state: Mutex<SlotState>,
    ready: Condvar,
    /// Live [`ReplySender`] clones. Hedged execution holds one sender per
    /// racer; the slot is `Lost` only when the *last* sender drops without
    /// a reply — a hedge loser's drop must not strand the ticket.
    senders: AtomicUsize,
    /// The request id minted when this slot was created at submit.
    request_id: u64,
}

/// Source of request ids: process-wide, monotonically increasing from 1.
/// Process-wide (rather than per-server) so an id in a log line is
/// unambiguous even with several servers (or a pipeline) in one process.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
enum SlotState {
    /// No reply yet; the ticket is still live.
    Waiting,
    /// The reply landed and awaits redemption.
    Ready(Box<Result<Response, ServeError>>),
    /// The reply was redeemed.
    Taken,
    /// The ticket was dropped before a reply arrived; any reply is late.
    Tombstoned,
    /// The send side was dropped without ever replying (a worker died
    /// outside the supervised region).
    Lost,
}

/// How one attempted reply landed, from [`ReplySender::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// The reply landed in a waiting slot: this sender won.
    Delivered,
    /// The ticket was abandoned (or its senders all died) before any reply
    /// arrived; the reply is dropped and counted late.
    Abandoned,
    /// Another sender already replied — this is a hedge race's losing
    /// reply, dropped without touching the outcome counters.
    Duplicate,
}

/// The send side of one request's reply slot, held by `Pending` as the
/// request moves through queues, batches and retries. Cloning produces a
/// second racer for the same slot (hedged execution); the first
/// [`send`](ReplySender::send) wins.
#[derive(Debug)]
pub(crate) struct ReplySender {
    slot: Arc<ReplySlot>,
}

impl ReplySender {
    /// The request id minted for this slot at submit.
    pub(crate) fn request_id(&self) -> u64 {
        self.slot.request_id
    }

    /// Deliver the reply, reporting how it landed.
    pub(crate) fn send(&self, result: Result<Response, ServeError>) -> Delivery {
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        match *s {
            SlotState::Waiting => {
                *s = SlotState::Ready(Box::new(result));
                self.slot.ready.notify_all();
                Delivery::Delivered
            }
            SlotState::Tombstoned | SlotState::Lost => Delivery::Abandoned,
            SlotState::Ready(_) | SlotState::Taken => Delivery::Duplicate,
        }
    }
}

impl Clone for ReplySender {
    fn clone(&self) -> Self {
        self.slot.senders.fetch_add(1, Ordering::Relaxed);
        ReplySender {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl Drop for ReplySender {
    fn drop(&mut self) {
        if self.slot.senders.fetch_sub(1, Ordering::AcqRel) != 1 {
            // Another racer (hedge) still holds the slot; it will reply.
            return;
        }
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*s, SlotState::Waiting) {
            *s = SlotState::Lost;
            self.slot.ready.notify_all();
        }
    }
}

/// Build one request's reply-slot pair.
pub(crate) fn reply_pair() -> (ReplySender, Ticket) {
    let slot = Arc::new(ReplySlot {
        state: Mutex::new(SlotState::Waiting),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        request_id: NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed),
    });
    (ReplySender { slot: Arc::clone(&slot) }, Ticket { slot })
}

/// Deliver a reply, counting it under `late_replies` when the ticket was
/// already abandoned. Every worker-side reply goes through here; callers
/// that count outcomes (completed, failed, quarantined) must skip the
/// count on [`Delivery::Duplicate`] — the hedge winner already counted it.
pub(crate) fn send_reply(stats: &Stats, reply: &ReplySender, result: Result<Response, ServeError>) -> Delivery {
    let delivery = reply.send(result);
    if delivery == Delivery::Abandoned {
        stats.late_replies.fetch_add(1, Ordering::Relaxed);
    }
    delivery
}

/// The receive side of one request; redeemed with [`Ticket::wait`] or
/// polled with [`Ticket::wait_timeout`]. Dropping an unredeemed ticket
/// tombstones its reply slot: a reply arriving afterwards is dropped and
/// counted (`late_replies`) rather than left behind unread.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ReplySlot>,
}

impl Ticket {
    /// The request's id, assigned at submit (unique within the process).
    /// Pairs a client-side record with server-side error text and audit
    /// output ([`ServeError::for_request`](crate::ServeError::for_request)).
    #[must_use]
    pub fn request_id(&self) -> u64 {
        self.slot.request_id
    }

    /// Block until the request completes or is shed.
    ///
    /// # Errors
    ///
    /// Returns the typed rejection ([`ServeError::DeadlineExceeded`],
    /// [`ServeError::ShuttingDown`], …) or the simulation failure. If the
    /// reply slot's send side was dropped without a reply — the worker
    /// shard died outside the supervised region — this is
    /// [`ServeError::WorkerLost`], never a hang.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*s {
                SlotState::Ready(_) => match std::mem::replace(&mut *s, SlotState::Taken) {
                    SlotState::Ready(r) => return *r,
                    _ => unreachable!("state checked under the lock"),
                },
                SlotState::Lost | SlotState::Taken => return Err(ServeError::WorkerLost),
                SlotState::Waiting | SlotState::Tombstoned => {
                    s = self.slot.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Block until the request completes, is shed, or `timeout` elapses.
    ///
    /// A timeout does not cancel the request: the ticket stays redeemable,
    /// so the caller may keep polling (or switch to [`Ticket::wait`]).
    /// Only *dropping* the ticket gives up on the reply (tombstoning the
    /// slot).
    ///
    /// # Errors
    ///
    /// [`ServeError::ReplyTimeout`] when no reply arrived in time,
    /// [`ServeError::WorkerLost`] when the send side was dropped,
    /// otherwise exactly as [`Ticket::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Response, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*s {
                SlotState::Ready(_) => match std::mem::replace(&mut *s, SlotState::Taken) {
                    SlotState::Ready(r) => return *r,
                    _ => unreachable!("state checked under the lock"),
                },
                SlotState::Lost | SlotState::Taken => return Err(ServeError::WorkerLost),
                SlotState::Waiting | SlotState::Tombstoned => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServeError::ReplyTimeout { waited: timeout });
                    }
                    s = match self.slot.ready.wait_timeout(s, deadline - now) {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            }
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*s, SlotState::Waiting) {
            *s = SlotState::Tombstoned;
        }
    }
}

pub(crate) struct ModelEntry {
    pub(crate) name: String,
    pub(crate) layer: ConvLayer,
    pub(crate) weights: Arc<Tensor>,
}

pub(crate) struct Pending {
    pub(crate) input: Tensor,
    pub(crate) enqueued: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) reply: ReplySender,
    /// Failed execution attempts so far (survives requeueing across
    /// shards); the retry policy quarantines past `config.max_retries`.
    pub(crate) attempts: u32,
    /// Whether any attempt failed an ABFT output check: a completion after
    /// that counts as an integrity *recovery* (the corruption was caught
    /// and healed by retry).
    pub(crate) integrity_hit: bool,
    /// Admission priority class; decides shed order and dequeue weight.
    pub(crate) class: Priority,
    /// Client-supplied idempotency key (`0` = none); rides to the terminal
    /// outcome so [`settle`] can acknowledge the journal and fan the result
    /// out to deduplicated waiters.
    pub(crate) idem_key: u64,
}

impl Pending {
    /// A second racer for hedged execution: same reply slot (the clone
    /// bumps the sender count, so the loser's drop cannot strand the
    /// ticket), same deadline and provenance, fresh copy of the input.
    fn clone_for_hedge(&self) -> Pending {
        Pending {
            input: self.input.clone(),
            enqueued: self.enqueued,
            deadline: self.deadline,
            reply: self.reply.clone(),
            attempts: self.attempts,
            integrity_hit: self.integrity_hit,
            class: self.class,
            idem_key: self.idem_key,
        }
    }
}

/// A batch currently executing on some shard, published so an idle shard
/// can hedge it once it exceeds the observed-latency hedge threshold.
pub(crate) struct InflightEntry {
    id: u64,
    model: ModelId,
    /// The worker executing the primary; a shard never hedges itself.
    owner: usize,
    started: Instant,
    /// The cloned request group; `take`n by at most one hedging shard.
    group: Option<Vec<Pending>>,
}

/// What [`next_work`] hands a worker shard.
pub(crate) enum Work {
    /// A fresh batch pulled off the queue (all one model, one class).
    Batch {
        /// The batch's model.
        model: ModelId,
        /// The requests, dequeue order.
        pendings: Vec<Pending>,
    },
    /// A hedge: re-execution of another shard's slow in-flight batch;
    /// first bit-exact reply per request wins.
    Hedge {
        /// The hedged batch's model.
        model: ModelId,
        /// Cloned requests racing the primary.
        pendings: Vec<Pending>,
    },
}

pub(crate) struct QueueState {
    /// One FIFO per (registered model, priority class), indexed by
    /// [`ModelId`] then [`Priority::index`].
    pub(crate) queues: Vec<[VecDeque<Pending>; CLASSES]>,
    /// Queued requests per class across all models (WFQ backlog view).
    pub(crate) class_totals: [usize; CLASSES],
    /// Total requests queued across all models (admission-control bound).
    pub(crate) total: usize,
    /// Cleared by shutdown; workers then drain and exit.
    pub(crate) open: bool,
    /// Worker shards still within their restart budget. Kept under the
    /// queue lock so admission control and shard-death handling see a
    /// consistent count.
    pub(crate) healthy: usize,
    /// CoDel-style brownout controller; `None` when no delay target is
    /// configured (the ladder stays at [`BrownoutLevel::Normal`]).
    pub(crate) controller: Option<OverloadController>,
    /// Weighted-fair scheduler arbitrating classes at batch formation.
    pub(crate) wfq: WfqScheduler,
    /// Hedging board: batches currently executing on shards.
    pub(crate) inflight: Vec<InflightEntry>,
    /// Monotonic id source for [`InflightEntry`].
    next_inflight_id: u64,
}

impl QueueState {
    /// Admit one request: the capacity check (done by the caller), the
    /// push, the class/total accounting, the scheduler activation and the
    /// admission counters all happen atomically under the queue lock —
    /// concurrent submits can never over-admit past `capacity` or skew the
    /// depth gauge.
    fn admit(&mut self, stats: &Stats, capacity: usize, model: ModelId, p: Pending) {
        let c = p.class.index();
        if self.class_totals[c] == 0 {
            // Rebase the class's virtual time so an idle class cannot bank
            // credit (see WfqScheduler::activate).
            let backlogged = std::array::from_fn(|i| self.class_totals[i] > 0);
            self.wfq.activate(p.class, backlogged);
        }
        self.queues[model.0][c].push_back(p);
        self.class_totals[c] += 1;
        self.total += 1;
        debug_assert!(
            self.total <= capacity,
            "admission raced past capacity: {} > {}",
            self.total,
            capacity
        );
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        stats.admitted_by_class[c].fetch_add(1, Ordering::Release);
        stats.observe_queue_depth(self.total as u64);
    }

    /// Remove `taken` requests of `class`, keeping totals consistent.
    fn debit(&mut self, class: usize, taken: usize) {
        self.class_totals[class] -= taken;
        self.total -= taken;
    }

    /// The enqueue time of the oldest queued request, if any.
    fn oldest_enqueued(&self) -> Option<Instant> {
        self.queues
            .iter()
            .flat_map(|per| per.iter())
            .filter_map(|dq| dq.front().map(|p| p.enqueued))
            .min()
    }

    /// Evict the oldest queued request of the lowest-priority backlogged
    /// class *strictly below* `incoming`, making room under a full queue.
    fn evict_below(&mut self, incoming: Priority) -> Option<Pending> {
        for c in (incoming.index() + 1..CLASSES).rev() {
            if self.class_totals[c] == 0 {
                continue;
            }
            let (m, _) = self
                .queues
                .iter()
                .enumerate()
                .filter_map(|(m, per)| per[c].front().map(|p| (m, p.enqueued)))
                .min_by_key(|&(_, t)| t)?;
            let p = self.queues[m][c].pop_front()?;
            self.debit(c, 1);
            return Some(p);
        }
        None
    }
}

/// An in-flight reservation for one idempotency key: exactly one execution
/// owns the key; later submits with the same key park a [`ReplySender`]
/// here and share the owner's terminal outcome instead of executing again.
struct Reservation {
    /// The owning admission's request id (`0` while the reservation is
    /// provisional — taken before admission commits).
    request_id: u64,
    /// Reply slots of deduplicated duplicate submits, fanned out at ack.
    waiters: Vec<ReplySender>,
}

/// Runtime state behind an enabled admission journal. One mutex covers the
/// writer, the dedup table and the reservations so the dedup-check /
/// reserve / acknowledge transitions are atomic; lock order is always
/// queue-then-journal (ack sites take only the journal lock), so the pair
/// cannot deadlock.
struct JournalRuntime {
    writer: JournalWriter,
    dedup: DedupTable,
    reserved: HashMap<u64, Reservation>,
    /// Recovered admitted-but-unacknowledged work, parked here by
    /// [`Server::start_with_journal`] until the models are registered again
    /// and [`Server::replay_recovered`] re-enqueues it.
    stash: Vec<RecoveredAdmit>,
}

pub(crate) struct JournalState {
    inner: Mutex<JournalRuntime>,
}

impl JournalState {
    fn lock(&self) -> MutexGuard<'_, JournalRuntime> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirror the writer's monotone durability counters into the stats.
    fn sync_counters(stats: &Stats, writer: &JournalWriter) {
        stats.journal_appends.store(writer.appends, Ordering::Relaxed);
        stats.journal_fsyncs.store(writer.fsyncs, Ordering::Relaxed);
        stats.journal_bytes.store(writer.synced_len(), Ordering::Relaxed);
    }

    /// Record a terminal outcome: append the Ack record, remember a
    /// success for redelivery, release the key's reservation and fan the
    /// outcome out to any deduplicated waiters. Called for every delivery
    /// except a hedge race's losing reply (the winner already settled).
    fn acknowledge(&self, stats: &Stats, idem_key: u64, request_id: u64, result: &Result<Response, ServeError>) {
        let mut jr = self.lock();
        let outcome = result.as_ref().ok().map(|resp| {
            let (c, h, w) = resp.output.shape();
            ((clamp_u16(c), clamp_u16(h), clamp_u16(w)), resp.output.as_slice().to_vec())
        });
        if idem_key != 0 {
            if let Some((shape, words)) = &outcome {
                let fresh = jr.dedup.insert(
                    idem_key,
                    DedupEntry {
                        request_id,
                        shape: *shape,
                        words: words.clone(),
                    },
                );
                if !fresh {
                    // Two executions completed the same key: the exactly-
                    // once machinery failed somewhere. Counted, gated on in
                    // the crash soak.
                    stats.duplicate_executions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if jr
            .writer
            .append(&Record::Ack {
                request_id,
                idem_key,
                outcome,
            })
            .is_err()
        {
            stats.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
        Self::sync_counters(stats, &jr.writer);
        let waiters = if idem_key != 0 {
            jr.reserved.remove(&idem_key).map(|r| r.waiters).unwrap_or_default()
        } else {
            Vec::new()
        };
        drop(jr);
        for waiter in waiters {
            stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
            let _ = waiter.send(result.clone());
        }
    }

    /// Roll a provisional reservation back after a failed admission,
    /// failing any waiters that parked on it in the window.
    fn abort_reservation(&self, idem_key: u64, error: &ServeError) {
        let waiters = self.lock().reserved.remove(&idem_key).map(|r| r.waiters).unwrap_or_default();
        for waiter in waiters {
            let _ = waiter.send(Err(error.clone()));
        }
    }
}

fn clamp_u16(v: usize) -> u16 {
    u16::try_from(v).unwrap_or(u16::MAX)
}

/// A recovery resubmit supersedes the admit record it was replayed from:
/// append an outcome-less Ack for the old request id so it stops
/// replaying. No-op for ordinary submits (`supersedes == 0`).
fn append_superseding_ack(stats: &Stats, jr: &mut JournalRuntime, idem_key: u64, supersedes: u64) {
    if supersedes == 0 {
        return;
    }
    if jr
        .writer
        .append(&Record::Ack {
            request_id: supersedes,
            idem_key,
            outcome: None,
        })
        .is_err()
    {
        stats.journal_errors.fetch_add(1, Ordering::Relaxed);
    }
    JournalState::sync_counters(stats, &jr.writer);
}

/// Build the redelivered reply for a dedup hit: the remembered output
/// words, bit-exact, under a synthetic zero-cost report (no simulator ran).
/// The response carries the *original* execution's request id — the trace
/// key linking the redelivery back to the run that produced the bits.
fn redelivery_response(entry: &DedupEntry) -> Response {
    Response {
        output: entry.tensor(),
        report: LayerReport {
            name: "journal-redelivery".to_string(),
            cycles: 0,
            compute_cycles: 0,
            dma_cycles: 0,
            macs: 0,
            pes: 0,
            clock_hz: 1.0,
            host_seconds: 0.0,
            integrity_checked: 0,
            integrity_failed: 0,
            integrity_recovered: 0,
        },
        batch_size: 0,
        worker: 0,
        latency: Duration::ZERO,
        request_id: entry.request_id,
    }
}

/// Flush and fsync any buffered journal records; a no-op without one.
pub(crate) fn flush_journal_shared(shared: &Shared) {
    if let Some(j) = &shared.journal {
        let mut jr = j.lock();
        if jr.writer.flush().is_err() {
            shared.stats.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
        JournalState::sync_counters(&shared.stats, &jr.writer);
    }
}

/// Deliver a terminal outcome through [`send_reply`], acknowledging the
/// admission journal first unless the delivery turns out to be a hedge
/// race's losing reply. Every worker-side terminal site goes through here;
/// with the journal disabled it is exactly [`send_reply`].
pub(crate) fn settle(shared: &Shared, idem_key: u64, reply: &ReplySender, result: Result<Response, ServeError>) -> Delivery {
    match &shared.journal {
        None => send_reply(&shared.stats, reply, result),
        Some(j) => {
            let for_ack = result.clone();
            let delivery = send_reply(&shared.stats, reply, result);
            if delivery != Delivery::Duplicate {
                j.acknowledge(&shared.stats, idem_key, reply.request_id(), &for_ack);
            }
            delivery
        }
    }
}

pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) models: RwLock<Vec<ModelEntry>>,
    pub(crate) queue: Mutex<QueueState>,
    pub(crate) ready: Condvar,
    pub(crate) cache: ProgramCache,
    pub(crate) stats: Stats,
    pub(crate) watchdog: Watchdog,
    pub(crate) started: Instant,
    /// The crash-durability journal; `None` (the default) keeps every
    /// admission path byte-identical to a journal-less server.
    pub(crate) journal: Option<JournalState>,
}

/// A sharded, batching inference server over the cycle-accurate simulator.
///
/// See the [crate docs](crate) for the architecture; see
/// [`ServeConfig`] for tuning knobs.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<WorkerExit>>,
    /// The liveness watchdog thread, spawned only when
    /// [`ServeConfig::watchdog_slack`] is on; joined at shutdown.
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Start the server: spawns `config.workers` worker-shard threads,
    /// plus the batch watchdog thread when `watchdog_slack` is enabled.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        Self::start_inner(config, None)
    }

    /// Start the server with a crash-durability journal at
    /// `journal.path`. Recovers the journal first: replays the file
    /// (tolerating a torn tail), rebuilds the redelivery dedup table from
    /// acknowledged successes, compacts live state into a fresh file, and
    /// parks admitted-but-unacknowledged requests until the caller has
    /// re-registered its models (in the same order as the previous
    /// process) and calls [`Server::replay_recovered`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the journal file exists but does not
    /// start with the journal magic, or on I/O failure while reading,
    /// compacting or reopening it.
    pub fn start_with_journal(config: ServeConfig, journal: JournalConfig) -> Result<(Self, RecoveryReport), ServeError> {
        let recovery = journal::recover(&journal).map_err(|e| ServeError::Journal { message: e.to_string() })?;
        let report = recovery.report;
        let state = JournalState {
            inner: Mutex::new(JournalRuntime {
                writer: recovery.writer,
                dedup: recovery.dedup,
                reserved: HashMap::new(),
                stash: recovery.admits,
            }),
        };
        let server = Self::start_inner(config, Some(state));
        server
            .shared
            .stats
            .journal_replayed
            .store(report.replayed as u64, Ordering::Relaxed);
        Ok((server, report))
    }

    fn start_inner(config: ServeConfig, journal: Option<JournalState>) -> Self {
        let shared = Arc::new(Shared {
            journal,
            stats: Stats::new(config.workers, config.max_batch),
            models: RwLock::new(Vec::new()),
            queue: Mutex::new(QueueState {
                queues: Vec::new(),
                class_totals: [0; CLASSES],
                total: 0,
                open: true,
                healthy: config.workers,
                controller: config
                    .overload
                    .delay_target
                    .map(|target| OverloadController::new(target, config.overload.delay_window, Instant::now())),
                wfq: WfqScheduler::new(config.overload.weights),
                inflight: Vec::new(),
                next_inflight_id: 0,
            }),
            ready: Condvar::new(),
            cache: ProgramCache::with_capacity(config.cache_capacity),
            watchdog: Watchdog::new(config.workers),
            started: Instant::now(),
            config,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("npcgra-serve-{i}"))
                    .spawn(move || supervisor::run_worker(&shared, i))
                    .expect("spawn worker shard")
            })
            .collect();
        let watchdog = (config.watchdog_slack > 0.0 && config.workers > 0).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("npcgra-serve-watchdog".into())
                .spawn(move || {
                    // A fired slot is a preempted shard: charge its health
                    // EWMA so hedge claims steer away from it.
                    let alpha = shared.config.health_ewma_alpha;
                    shared
                        .watchdog
                        .run(|worker| shared.stats.observe_health_sample(worker, 0.0, alpha));
                })
                .expect("spawn watchdog")
        });
        Server {
            shared,
            workers,
            watchdog,
        }
    }

    /// Register a model (one DSC or standard layer with its weights) and
    /// eagerly compile its program into the shared cache, so no request
    /// ever pays for mapping compilation.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] if `weights` does not have the shape
    /// [`ConvLayer::random_weights`] documents for the layer kind;
    /// [`ServeError::Sim`] if the layer cannot be mapped onto the spec.
    pub fn register(&self, name: &str, layer: ConvLayer, weights: Tensor) -> Result<ModelId, ServeError> {
        let expected = expected_weight_shape(&layer);
        let got = (weights.channels(), weights.height(), weights.width());
        if got != expected {
            return Err(ServeError::ShapeMismatch { expected, got });
        }
        if layer.kind() != ConvKind::Standard {
            self.shared
                .cache
                .get_or_compile(&layer, &self.shared.config.spec, MappingKind::Auto)?;
        }
        let mut models = self.shared.models.write().unwrap_or_else(PoisonError::into_inner);
        let id = ModelId(models.len());
        models.push(ModelEntry {
            name: name.to_string(),
            layer,
            weights: Arc::new(weights),
        });
        drop(models);
        supervisor::lock_queue(&self.shared)
            .queues
            .push(std::array::from_fn(|_| VecDeque::new()));
        Ok(id)
    }

    /// Submit a request with the configured default deadline, at
    /// [`Priority::Interactive`].
    ///
    /// # Errors
    ///
    /// As [`Server::submit_with_priority`].
    pub fn submit(&self, model: ModelId, input: Tensor) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(model, input, self.shared.config.default_deadline)
    }

    /// Submit a request at [`Priority::Interactive`] that must *start
    /// executing* within `deadline` (`None` = never expires).
    ///
    /// # Errors
    ///
    /// As [`Server::submit_with_priority`].
    pub fn submit_with_deadline(&self, model: ModelId, input: Tensor, deadline: Option<Duration>) -> Result<Ticket, ServeError> {
        self.submit_with_priority(model, input, deadline, Priority::Interactive)
    }

    /// Submit a request in an explicit [`Priority`] class. Admission
    /// control applies here: a full queue, a draining server, a degraded
    /// one (too few healthy shards), or an overloaded one (the brownout
    /// ladder sheds this class, or this non-cached model, at admission)
    /// rejects synchronously, typed. A full queue with lower-priority
    /// requests queued evicts the oldest of the lowest backlogged class
    /// instead of rejecting the newcomer.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::ShapeMismatch`],
    /// [`ServeError::DeadlineExceeded`] (a zero deadline has already
    /// expired and is rejected here, not queued), [`ServeError::QueueFull`],
    /// [`ServeError::ShuttingDown`], [`ServeError::Degraded`] or
    /// [`ServeError::Overloaded`].
    pub fn submit_with_priority(
        &self,
        model: ModelId,
        input: Tensor,
        deadline: Option<Duration>,
        class: Priority,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(model, input, deadline, class, 0, 0)
    }

    /// Submit with a client-supplied idempotency key (`0` = none). With
    /// the journal enabled and a non-zero key, the key makes the request
    /// exactly-once across process crashes and client retries: a retry of
    /// a completed request is redelivered bit-exact from the dedup table
    /// (without executing), and a retry racing an in-flight execution
    /// parks on it and shares its terminal outcome. Without a journal the
    /// key is ignored and this is exactly [`Server::submit_with_priority`].
    ///
    /// # Errors
    ///
    /// As [`Server::submit_with_priority`].
    pub fn submit_idem(
        &self,
        model: ModelId,
        input: Tensor,
        deadline: Option<Duration>,
        class: Priority,
        idem_key: u64,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(model, input, deadline, class, idem_key, 0)
    }

    fn submit_inner(
        &self,
        model: ModelId,
        input: Tensor,
        deadline: Option<Duration>,
        class: Priority,
        idem_key: u64,
        supersedes: u64,
    ) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let uncached = {
            let models = shared.models.read().unwrap_or_else(PoisonError::into_inner);
            let entry = models.get(model.0).ok_or(ServeError::UnknownModel)?;
            let expected = (entry.layer.in_channels(), entry.layer.in_h(), entry.layer.in_w());
            let got = (input.channels(), input.height(), input.width());
            if got != expected {
                return Err(ServeError::ShapeMismatch { expected, got });
            }
            // Probed up front (outside the queue lock) for the ladder's
            // RejectUncached rung; standard layers never precompile, so
            // they are exempt rather than permanently rejected.
            entry.layer.kind() != ConvKind::Standard
                && !shared.cache.contains(&entry.layer, &shared.config.spec, MappingKind::Auto)
        };
        // A zero deadline has already expired: reject synchronously rather
        // than queue work that batch formation must shed anyway.
        if deadline.is_some_and(|d| d.is_zero()) {
            shared.stats.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExceeded);
        }
        let (tx, ticket) = reply_pair();
        let journaled = idem_key != 0 && shared.journal.is_some();
        if journaled {
            let j = shared.journal.as_ref().expect("journaled implies journal");
            let mut jr = j.lock();
            // A recovery resubmit acks the admit it supersedes in the same
            // critical section as whichever path it takes, so the old
            // record stops replaying no matter where a crash lands.
            if let Some(entry) = jr.dedup.get(idem_key) {
                // Completed before: redeliver the remembered bits without
                // executing.
                shared.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                let response = redelivery_response(entry);
                append_superseding_ack(&shared.stats, &mut jr, idem_key, supersedes);
                drop(jr);
                let _ = tx.send(Ok(response));
                return Ok(ticket);
            }
            if let Some(res) = jr.reserved.get_mut(&idem_key) {
                // In flight under the same key: park on the owning
                // execution and share its terminal outcome.
                res.waiters.push(tx);
                append_superseding_ack(&shared.stats, &mut jr, idem_key, supersedes);
                return Ok(ticket);
            }
            // First sighting of this key: reserve it provisionally so a
            // concurrent retry parks instead of double-executing. Admission
            // failure below rolls this back.
            jr.reserved.insert(
                idem_key,
                Reservation {
                    request_id: 0,
                    waiters: Vec::new(),
                },
            );
        }
        let result = self.admit_queued(model, input, deadline, class, idem_key, supersedes, uncached, tx, ticket);
        if journaled {
            if let Err(e) = &result {
                let j = shared.journal.as_ref().expect("journaled implies journal");
                j.abort_reservation(idem_key, e);
            }
        }
        result
    }

    /// The queue-lock half of admission: everything from the shutdown /
    /// degraded / brownout / capacity gates through enqueue, plus the
    /// journal's Admit append (under both locks, queue then journal, so a
    /// worker cannot dequeue a request whose admit record is not yet at
    /// least buffered).
    #[allow(clippy::too_many_arguments)]
    fn admit_queued(
        &self,
        model: ModelId,
        input: Tensor,
        deadline: Option<Duration>,
        class: Priority,
        idem_key: u64,
        supersedes: u64,
        uncached: bool,
        tx: ReplySender,
        ticket: Ticket,
    ) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let now = Instant::now();
        let mut q = supervisor::lock_queue(shared);
        if !q.open {
            shared.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        // Degraded mode (only meaningful with workers configured): with no
        // healthy shard left nothing will ever drain the queue, so shed
        // everything; below the healthy threshold, scale the queue bound by
        // the surviving fraction so backlog shrinks with capacity.
        if shared.config.workers > 0 {
            if q.healthy == 0 {
                shared.stats.degraded_sheds.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Degraded {
                    healthy: 0,
                    workers: shared.config.workers,
                });
            }
            if q.healthy < shared.config.min_healthy_workers {
                let scaled = (shared.config.queue_capacity * q.healthy / shared.config.workers).max(1);
                if q.total >= scaled {
                    shared.stats.degraded_sheds.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Degraded {
                        healthy: q.healthy,
                        workers: shared.config.workers,
                    });
                }
            }
        }
        // CoDel admission: sample the live sojourn of the oldest queued
        // request (queue delay as the arriving request would see it), let
        // the controller close out elapsed windows, then apply whatever
        // rung of the brownout ladder is in force.
        let oldest = q.oldest_enqueued();
        let level = match q.controller.as_mut() {
            Some(ctrl) => {
                let mut changes = Vec::new();
                match oldest {
                    Some(oldest) => ctrl.observe(now, now.duration_since(oldest), &mut changes),
                    None => ctrl.tick(now, &mut changes),
                }
                apply_level_changes(&shared.stats, &changes);
                ctrl.level()
            }
            None => BrownoutLevel::Normal,
        };
        if level.sheds(class) {
            shared.stats.overload_sheds[class.index()].fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { level, class });
        }
        if level.rejects_uncached() && uncached {
            shared.stats.overload_sheds[class.index()].fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { level, class });
        }
        if q.total >= shared.config.queue_capacity {
            // Full: a higher-priority arrival evicts the oldest request of
            // the lowest backlogged class below it rather than bouncing.
            match q.evict_below(class) {
                Some(victim) => {
                    shared.stats.priority_evictions.fetch_add(1, Ordering::Relaxed);
                    shared.stats.overload_sheds[victim.class.index()].fetch_add(1, Ordering::Relaxed);
                    settle(
                        shared,
                        victim.idem_key,
                        &victim.reply,
                        Err(ServeError::Overloaded {
                            level,
                            class: victim.class,
                        }),
                    );
                }
                None => {
                    shared.stats.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::QueueFull {
                        capacity: shared.config.queue_capacity,
                    });
                }
            }
        }
        // Capture the journal record's payload before `input` moves into
        // the queue; the append itself happens after `admit` succeeds, but
        // still under the queue lock, so no worker can execute a request
        // whose admit record is not yet buffered in the journal.
        let journal_payload = (idem_key != 0 && shared.journal.is_some()).then(|| {
            let (c, h, w) = input.shape();
            ((clamp_u16(c), clamp_u16(h), clamp_u16(w)), input.as_slice().to_vec())
        });
        let request_id = tx.request_id();
        q.admit(
            &shared.stats,
            shared.config.queue_capacity,
            model,
            Pending {
                input,
                enqueued: now,
                deadline: deadline.map(|d| now + d),
                reply: tx,
                attempts: 0,
                integrity_hit: false,
                idem_key,
                class,
            },
        );
        if let Some((shape, words)) = journal_payload {
            let j = shared.journal.as_ref().expect("payload implies journal");
            let mut jr = j.lock();
            if let Some(res) = jr.reserved.get_mut(&idem_key) {
                res.request_id = request_id;
            }
            let deadline_ms = deadline.map_or(0, |d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX));
            let admit = Record::Admit {
                request_id,
                idem_key,
                model: u32::try_from(model.0).unwrap_or(u32::MAX),
                class: class.index() as u8,
                deadline_ms,
                shape,
                words,
            };
            if jr.writer.append(&admit).is_err() {
                shared.stats.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
            append_superseding_ack(&shared.stats, &mut jr, idem_key, supersedes);
            JournalState::sync_counters(&shared.stats, &jr.writer);
        }
        drop(q);
        shared.ready.notify_one();
        Ok(ticket)
    }

    /// A live statistics snapshot (cache and fault counters included).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let depth = supervisor::lock_queue(&self.shared).total;
        let mut snap = self.shared.stats.snapshot(self.shared.started.elapsed(), depth);
        snap.cache_hits = self.shared.cache.hits();
        snap.cache_misses = self.shared.cache.misses();
        snap.cache_evictions = self.shared.cache.evictions();
        snap
    }

    /// The name a model was registered under.
    #[must_use]
    pub fn model_name(&self, model: ModelId) -> Option<String> {
        self.shared
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model.0)
            .map(|e| e.name.clone())
    }

    /// The IFM shape `(channels, height, width)` a model's requests must
    /// carry.
    #[must_use]
    pub fn model_shape(&self, model: ModelId) -> Option<(usize, usize, usize)> {
        self.shared
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model.0)
            .map(|e| (e.layer.in_channels(), e.layer.in_h(), e.layer.in_w()))
    }

    /// Register a tenant for per-tenant accounting and return its counter
    /// handle. Meant for front-ends (e.g. `npcgra-net`): the serving core
    /// itself never consults tenants, it only carries their counters so
    /// one [`StatsSnapshot`] tells the whole story
    /// ([`StatsSnapshot::tenants`]).
    #[must_use]
    pub fn register_tenant(&self, name: &str) -> crate::stats::TenantHandle {
        self.shared.stats.register_tenant(name)
    }

    /// Flush and fsync any buffered journal records. A no-op without a
    /// journal. Front-ends call this at the top of a graceful drain so
    /// every admitted-but-buffered record is durable before the last
    /// `Bye` goes out.
    pub fn flush_journal(&self) {
        flush_journal_shared(&self.shared);
    }

    /// Re-enqueue the admitted-but-unacknowledged requests recovered from
    /// the journal at [`Server::start_with_journal`]. Call after
    /// re-registering models **in the same order** as the crashed process
    /// (journal records carry model *ids*, not names). Each replayed
    /// request goes back through full admission under a fresh request id;
    /// the new admit record supersedes the recovered one, so a second
    /// crash replays each request exactly once more, never twice. Returns
    /// the number of requests re-enqueued.
    ///
    /// # Errors
    ///
    /// The first admission error aborts the replay and is returned;
    /// requests not yet replayed stay parked (and stay journaled), so a
    /// later call — or the next recovery — still sees them.
    pub fn replay_recovered(&self) -> Result<usize, ServeError> {
        let Some(j) = &self.shared.journal else {
            return Ok(0);
        };
        let stash = std::mem::take(&mut j.lock().stash);
        let mut replayed = 0usize;
        for (i, admit) in stash.iter().enumerate() {
            let class = Priority::from_index((admit.class as usize).min(CLASSES - 1));
            let outcome = self.submit_inner(
                ModelId(admit.model as usize),
                admit.tensor(),
                None,
                class,
                admit.idem_key,
                admit.request_id,
            );
            match outcome {
                Ok(_ticket) => replayed += 1,
                Err(e) => {
                    j.lock().stash.extend(stash[i..].iter().cloned());
                    return Err(e);
                }
            }
        }
        Ok(replayed)
    }

    /// Simulated process crash: sever the journal writer mid-buffer (the
    /// first `torn_bytes` of any unflushed records reach the file, torn),
    /// then tear the process state down the way a kill would — queued and
    /// in-flight requests are dropped without replies, nothing is drained,
    /// nothing further is journaled. The crash soak uses this to exercise
    /// recovery; the returned snapshot is for the *dead* process's
    /// counters only.
    pub fn hard_crash(self, torn_bytes: usize) -> StatsSnapshot {
        if let Some(j) = &self.shared.journal {
            let mut jr = j.lock();
            if jr.writer.sever(torn_bytes).is_err() {
                self.shared.stats.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
            JournalState::sync_counters(&self.shared.stats, &jr.writer);
            jr.reserved.clear();
        }
        {
            let mut q = supervisor::lock_queue(&self.shared);
            q.open = false;
            // Drop every queued request silently: their senders die here,
            // so stray tickets observe `WorkerLost`, exactly as a real
            // kill would look from outside the process.
            for per_model in &mut q.queues {
                for queue in per_model.iter_mut() {
                    queue.clear();
                }
            }
            q.class_totals = [0; CLASSES];
            q.total = 0;
            q.inflight.clear();
        }
        self.shared.ready.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
        self.shared.watchdog.shutdown();
        if let Some(handle) = self.watchdog {
            let _ = handle.join();
        }
        self.shared.stats.snapshot(self.shared.started.elapsed(), 0)
    }

    /// Graceful shutdown: stop admitting, let the workers drain every
    /// queued request (batching as usual), join them, and return the final
    /// statistics — including how each worker thread ended
    /// ([`WorkerExit`]), instead of propagating worker panics as a panic
    /// cascade here. With zero healthy workers the queue cannot drain, so
    /// remaining requests are rejected with [`ServeError::ShuttingDown`].
    #[must_use]
    pub fn shutdown(self) -> StatsSnapshot {
        {
            let mut q = supervisor::lock_queue(&self.shared);
            q.open = false;
        }
        self.shared.ready.notify_all();
        let exits: Vec<WorkerExit> = self
            .workers
            .into_iter()
            .map(|h| h.join().unwrap_or(WorkerExit::Panicked))
            .collect();
        // Workers are gone, so nothing can re-arm; stop the watchdog after
        // they drain so a wedged final batch is still preemptible.
        self.shared.watchdog.shutdown();
        if let Some(handle) = self.watchdog {
            let _ = handle.join();
        }
        let mut q = supervisor::lock_queue(&self.shared);
        for per_model in &mut q.queues {
            for queue in per_model.iter_mut() {
                while let Some(p) = queue.pop_front() {
                    self.shared.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                    settle(&self.shared, p.idem_key, &p.reply, Err(ServeError::ShuttingDown));
                }
            }
        }
        q.class_totals = [0; CLASSES];
        q.total = 0;
        // Workers are joined; dropping any un-taken hedge clones releases
        // their extra senders (the primaries already replied or were shed).
        q.inflight.clear();
        let depth = q.total;
        drop(q);
        // Every queued request has now reached a terminal outcome and been
        // acknowledged; flushing leaves the journal fully acked, so a
        // clean shutdown is always a zero-replay restart.
        flush_journal_shared(&self.shared);
        let mut snap = self.shared.stats.snapshot(self.shared.started.elapsed(), depth);
        snap.cache_hits = self.shared.cache.hits();
        snap.cache_misses = self.shared.cache.misses();
        snap.cache_evictions = self.shared.cache.evictions();
        snap.worker_exits = exits;
        snap
    }
}

pub(crate) fn expected_weight_shape(layer: &ConvLayer) -> (usize, usize, usize) {
    match layer.kind() {
        ConvKind::Depthwise => (layer.in_channels(), layer.k(), layer.k()),
        ConvKind::Pointwise => (layer.out_channels(), 1, layer.in_channels()),
        ConvKind::Standard => (
            layer.out_channels(),
            layer.k(),
            layer.k() * layer.in_channels() / layer.groups(),
        ),
    }
}

/// Fold brownout-level transitions into the stats counters and gauge.
pub(crate) fn apply_level_changes(stats: &Stats, changes: &[LevelChange]) {
    for change in changes {
        let level = match change {
            LevelChange::Escalated(level) => {
                stats.brownout_escalations.fetch_add(1, Ordering::Relaxed);
                *level
            }
            LevelChange::Deescalated(level) => {
                stats.brownout_deescalations.fetch_add(1, Ordering::Relaxed);
                *level
            }
        };
        stats.set_brownout_level(level);
    }
}

/// Publish a batch on the hedging board before its primary executes, so an
/// idle shard can race it if it runs long. Returns the entry's id for
/// [`remove_inflight`]. Wakes waiting shards: a hedge-eligible entry is a
/// new reason to stop sleeping.
pub(crate) fn register_inflight(shared: &Shared, worker: usize, model: ModelId, pendings: &[Pending]) -> u64 {
    let group: Vec<Pending> = pendings.iter().map(Pending::clone_for_hedge).collect();
    let mut q = supervisor::lock_queue(shared);
    let id = q.next_inflight_id;
    q.next_inflight_id += 1;
    q.inflight.push(InflightEntry {
        id,
        model,
        owner: worker,
        started: Instant::now(),
        group: Some(group),
    });
    drop(q);
    shared.ready.notify_all();
    id
}

/// Retire a hedging-board entry once its primary finished. An un-taken
/// clone group is simply dropped (the sender count keeps the tickets
/// live); a taken one is already racing and owns its own replies.
pub(crate) fn remove_inflight(shared: &Shared, id: u64) {
    let mut q = supervisor::lock_queue(shared);
    if let Some(i) = q.inflight.iter().position(|e| e.id == id) {
        q.inflight.swap_remove(i);
    }
}

/// Whether `worker` is the healthiest candidate (by effective health — the
/// liveness EWMA, zeroed for dead shards and open breakers) to hedge a
/// batch owned by `owner`. Ties go to whichever shard scans first: with
/// every score at its initial 1.0 (healthy), any candidate qualifies, so
/// configs that never diverge health behave exactly as before this check
/// existed.
fn healthiest_candidate(shared: &Shared, worker: usize, owner: usize) -> bool {
    let mine = shared.stats.effective_health(worker);
    (0..shared.config.workers)
        .filter(|&w| w != owner && w != worker)
        .all(|w| shared.stats.effective_health(w) <= mine + 1e-9)
}

/// Pull the next unit of work off the shared queue, blocking until one is
/// ready or the server drains empty during shutdown (→ `None`, worker
/// exits).
///
/// In order of preference: a hedge (another shard's in-flight batch past
/// `hedge_threshold`), then a fresh batch — the class picked by the
/// weighted-fair scheduler among *ready* classes (a class is ready when
/// some model queue holds a brownout-capped batch, its head has lingered
/// `max_linger`, or the server is draining), the model within the class by
/// oldest head. Under brownout's adaptive-LIFO rungs the newest requests
/// are served first and the expired stale tail is shed at formation.
pub(crate) fn next_work(shared: &Shared, worker: usize, hedge_threshold: Option<Duration>) -> Option<Work> {
    let config = &shared.config;
    let mut q = supervisor::lock_queue(shared);
    loop {
        let now = Instant::now();
        // 1. Hedge scan: adopt another shard's slow in-flight batch — but
        // only if this shard is the healthiest candidate (by liveness EWMA),
        // so hedges route away from gray-degraded shards. A ripe entry that
        // has waited past 2× the threshold waives the health check: a better
        // shard that is busy must not strand the hedge forever.
        if let Some(threshold) = hedge_threshold {
            if let Some(entry) = q.inflight.iter_mut().find(|e| {
                let waited = now.duration_since(e.started);
                e.owner != worker
                    && e.group.is_some()
                    && waited >= threshold
                    && (healthiest_candidate(shared, worker, e.owner) || waited >= threshold * 2)
            }) {
                let pendings = entry.group.take().expect("group presence checked");
                let model = entry.model;
                shared.stats.hedges_dispatched.fetch_add(1, Ordering::Relaxed);
                return Some(Work::Hedge { model, pendings });
            }
        }
        // 2. Let the brownout controller close out elapsed windows even
        // when no submissions are arriving to drive it.
        let level = match q.controller.as_mut() {
            Some(ctrl) => {
                let mut changes = Vec::new();
                ctrl.tick(now, &mut changes);
                apply_level_changes(&shared.stats, &changes);
                ctrl.level()
            }
            None => BrownoutLevel::Normal,
        };
        let cap = level.batch_cap(config.max_batch);
        let lifo = level.lifo();
        let batch_ready = |dq: &VecDeque<Pending>| -> bool {
            dq.front()
                .is_some_and(|head| dq.len() >= cap || now.duration_since(head.enqueued) >= config.max_linger || !q.open)
        };
        // 3. Ready classes → weighted-fair pick → oldest-head model.
        let mut ready = [false; CLASSES];
        for per_model in &q.queues {
            for (c, dq) in per_model.iter().enumerate() {
                ready[c] = ready[c] || batch_ready(dq);
            }
        }
        if let Some(class) = q.wfq.pick(ready) {
            let c = class.index();
            let m = q
                .queues
                .iter()
                .enumerate()
                .filter(|(_, per)| batch_ready(&per[c]))
                .map(|(m, per)| (m, per[c].front().expect("ready is non-empty").enqueued))
                .min_by_key(|&(_, t)| t)
                .map(|(m, _)| m)
                .expect("a ready class has a ready queue");
            if lifo {
                // Adaptive LIFO: shed the expired stale tail at the front
                // before serving newest-first — those requests' deadlines
                // have passed, they will be shed at execution anyway.
                while q.queues[m][c].front().is_some_and(|p| p.deadline.is_some_and(|d| now >= d)) {
                    let p = q.queues[m][c].pop_front().expect("front checked");
                    q.debit(c, 1);
                    shared.stats.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    settle(shared, p.idem_key, &p.reply, Err(ServeError::DeadlineExceeded));
                }
                if q.queues[m][c].is_empty() {
                    continue;
                }
            }
            let len = q.queues[m][c].len();
            let take = len.min(cap);
            let items: Vec<Pending> = if lifo {
                q.queues[m][c].split_off(len - take).into()
            } else {
                q.queues[m][c].drain(..take).collect()
            };
            q.debit(c, take);
            q.wfq.charge(class, take);
            if let Some(ctrl) = q.controller.as_mut() {
                // Dequeue-side CoDel sample: the batch's *minimum* sojourn
                // (the standing-delay signal CoDel keys on).
                if let Some(min_wait) = items.iter().map(|p| now.duration_since(p.enqueued)).min() {
                    let mut changes = Vec::new();
                    ctrl.observe(now, min_wait, &mut changes);
                    apply_level_changes(&shared.stats, &changes);
                }
            }
            return Some(Work::Batch {
                model: ModelId(m),
                pendings: items,
            });
        }
        // 4. Nothing ready. Exit when drained for shutdown; otherwise wait
        // for the earliest linger expiry, capped short while a hedge could
        // ripen on the board.
        let oldest = q.oldest_enqueued();
        if !q.open && oldest.is_none() {
            return None;
        }
        let hedge_wake = hedge_threshold.is_some() && !q.inflight.is_empty();
        let mut wait = oldest.map(|t| config.max_linger.saturating_sub(now.duration_since(t)));
        if hedge_wake {
            wait = Some(wait.unwrap_or(Duration::MAX).min(Duration::from_millis(1)));
        }
        q = match wait {
            Some(timeout) => match shared.ready.wait_timeout(q, timeout.max(Duration::from_micros(50))) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            },
            None => shared.ready.wait(q).unwrap_or_else(PoisonError::into_inner),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_arch::CgraSpec;

    fn config() -> ServeConfig {
        ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
            .with_workers(2)
            .with_max_batch(2)
            .with_max_linger(Duration::from_millis(1))
    }

    #[test]
    fn serve_one_request_end_to_end() {
        let server = Server::start(config());
        let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
        let w = layer.random_weights(1);
        let id = server.register("m", layer.clone(), w.clone()).unwrap();
        let ifm = Tensor::random(3, 8, 8, 2);
        let golden = npcgra_nn::reference::run_layer(&layer, &ifm, &w).unwrap();
        let resp = server.submit(id, ifm).unwrap().wait().unwrap();
        assert_eq!(resp.output, golden);
        assert!(resp.report.cycles > 0);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.worker_exits, vec![WorkerExit::Clean, WorkerExit::Clean]);
    }

    #[test]
    fn unknown_model_and_bad_shape_are_rejected() {
        let server = Server::start(config().with_workers(0));
        assert_eq!(
            server.submit(ModelId(7), Tensor::zeros(1, 1, 1)).unwrap_err(),
            ServeError::UnknownModel
        );
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let err = server.submit(id, Tensor::zeros(4, 2, 4)).unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { .. }));
        let _ = server.shutdown();
    }

    #[test]
    fn bad_weight_shape_is_rejected_at_registration() {
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
        let err = server.register("m", layer, Tensor::zeros(3, 2, 2)).unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { .. }));
        let _ = server.shutdown();
    }

    #[test]
    fn model_name_round_trips() {
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server
            .register("mobilenet.pw1", layer.clone(), layer.random_weights(1))
            .unwrap();
        assert_eq!(server.model_name(id).as_deref(), Some("mobilenet.pw1"));
        assert_eq!(server.model_name(ModelId(9)), None);
        let _ = server.shutdown();
    }

    #[test]
    fn zero_deadline_is_rejected_at_submit() {
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let err = server
            .submit_with_deadline(id, Tensor::random(4, 4, 4, 1), Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        let stats = server.shutdown();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.submitted, 0, "a rejected request never counts as submitted");
    }

    #[test]
    fn dropped_ticket_tombstones_its_slot() {
        let (tx, ticket) = reply_pair();
        drop(ticket);
        assert_eq!(
            tx.send(Err(ServeError::WorkerLost)),
            Delivery::Abandoned,
            "a reply to an abandoned ticket must be dropped"
        );
    }

    #[test]
    fn hedge_race_first_reply_wins_loser_is_duplicate() {
        let (tx, ticket) = reply_pair();
        let hedge_tx = tx.clone();
        assert_eq!(hedge_tx.send(Err(ServeError::WorkerLost)), Delivery::Delivered);
        assert_eq!(tx.send(Err(ServeError::UnknownModel)), Delivery::Duplicate);
        assert_eq!(ticket.wait().unwrap_err(), ServeError::WorkerLost, "first reply won");
    }

    #[test]
    fn hedge_clone_drop_does_not_strand_the_ticket() {
        let (tx, ticket) = reply_pair();
        let hedge_tx = tx.clone();
        drop(hedge_tx);
        assert_eq!(
            tx.send(Err(ServeError::UnknownModel)),
            Delivery::Delivered,
            "surviving sender still owns the slot"
        );
        assert_eq!(ticket.wait().unwrap_err(), ServeError::UnknownModel);
    }

    #[test]
    fn dropped_sender_surfaces_as_worker_lost() {
        let (tx, ticket) = reply_pair();
        drop(tx);
        assert_eq!(ticket.wait().unwrap_err(), ServeError::WorkerLost);
    }

    #[test]
    fn late_reply_to_abandoned_ticket_is_counted() {
        // Zero workers: the request sits queued; dropping its ticket
        // abandons it, so the shutdown shed becomes a late reply.
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let ticket = server.submit(id, Tensor::random(4, 4, 4, 2)).unwrap();
        drop(ticket);
        let stats = server.shutdown();
        assert_eq!(stats.late_replies, 1);
        assert_eq!(stats.rejected_shutdown, 1);
    }

    #[test]
    fn wait_timeout_races_preemption_to_a_terminal_outcome() {
        // Satellite: a ticket polled with `wait_timeout` while the liveness
        // layer preempts its gray-failed batch must converge — either a
        // retried bit-exact reply or a typed terminal error — never
        // `ReplyTimeout` forever. Budget-only preemption (watchdog_slack 0)
        // keeps the test free of wall-clock calibration flake: every run
        // draws a temporal fault (rate 1.0) sized to blow a 1.2× cycle
        // budget, so every attempt surfaces `Preempted` deterministically.
        use crate::config::ChaosConfig;
        let chaos = ChaosConfig {
            fault_seed: Some(0xC0FFEE),
            gray_rate: 1.0,
            gray_stall_cycles: 50_000,
            gray_slowdown_factor: 4,
            ..ChaosConfig::default()
        };
        let server = Server::start(
            config()
                .with_workers(1)
                .with_max_retries(2)
                .with_restart_budget(100)
                .with_restart_backoff(Duration::ZERO)
                .with_cycle_budget(1.2)
                .with_chaos(chaos),
        );
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let w = layer.random_weights(1);
        let id = server.register("m", layer.clone(), w.clone()).unwrap();
        let ifm = Tensor::random(4, 4, 4, 5);
        let golden = npcgra_nn::reference::run_layer(&layer, &ifm, &w).unwrap();
        let ticket = server.submit(id, ifm).unwrap();
        let cap = Instant::now() + Duration::from_secs(60);
        let outcome = loop {
            assert!(Instant::now() < cap, "ticket never resolved: liveness hole");
            match ticket.wait_timeout(Duration::from_millis(10)) {
                Err(ServeError::ReplyTimeout { .. }) => continue,
                other => break other,
            }
        };
        match outcome {
            // A retry squeaked through (stall/slowdown under budget):
            // delivered replies must still be bit-exact.
            Ok(resp) => assert_eq!(resp.output, golden),
            // Terminal and typed: the preemption surfaced through the
            // retry ladder, it did not strand the ticket.
            Err(e) => assert!(
                !matches!(e, ServeError::ReplyTimeout { .. }),
                "terminal outcome must be typed, got {e}"
            ),
        }
        let stats = server.shutdown();
        assert!(stats.watchdog_preemptions > 0, "cycle-budget preemptions must be counted");
    }

    #[test]
    fn wait_timeout_then_wait_still_redeems() {
        // Zero workers: nothing drains, so the timeout path is exercised
        // deterministically; shutdown then sheds with ShuttingDown.
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let ticket = server.submit(id, Tensor::random(4, 4, 4, 3)).unwrap();
        let err = ticket.wait_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, ServeError::ReplyTimeout { .. }));
        let _ = server.shutdown();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::ShuttingDown);
    }
}
