//! The worker-shard server: admission, queueing, batching, execution.
//!
//! Each worker thread owns one simulated [`Machine`](npcgra_sim::Machine)
//! (a "shard") and drains a shared, bounded, per-model work queue. A worker
//! forms a batch when a model's queue reaches `max_batch`, when its oldest
//! request has lingered `max_linger`, or when the server is draining for
//! shutdown — whichever comes first — then coalesces the requests with
//! [`crate::batch`], fetches the compiled program from the shared
//! [`ProgramCache`], and runs the batch on its own machine. Requests whose
//! deadline passed while queued are shed at batch formation, before any
//! simulation work is spent on them.
//!
//! Execution is supervised ([`crate::supervisor`]): worker panics are
//! caught, the shard's machine is rebuilt, and a restart budget bounds how
//! many panics a shard survives before it is retired. Failed batches flow
//! through the bisecting retry policy ([`crate::retry`]) that isolates
//! poison requests so their batch-mates still complete.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use npcgra_nn::{ConvKind, ConvLayer, Tensor};
use npcgra_sim::{LayerReport, MappingKind};

use crate::cache::ProgramCache;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::stats::{Stats, StatsSnapshot, WorkerExit};
use crate::supervisor;

/// Handle to a registered model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(pub(crate) usize);

/// A completed inference.
#[derive(Debug, Clone)]
pub struct Response {
    /// The output feature map, bit-exact with a solo run of the model.
    pub output: Tensor,
    /// Simulated-hardware performance report for the run that produced
    /// this output (shared by all requests coalesced into the batch).
    pub report: LayerReport,
    /// How many requests the executing batch coalesced.
    pub batch_size: usize,
    /// Which worker shard ran the batch.
    pub worker: usize,
    /// Queue + execution time, from admission to reply.
    pub latency: Duration,
}

/// The reply slot backing one request: a one-shot rendezvous between the
/// worker that eventually replies and the [`Ticket`] that redeems it.
/// Unlike a channel, the slot has an explicit *tombstoned* state: a
/// dropped (abandoned) ticket marks it, so a late worker reply is dropped
/// and counted (`late_replies`) instead of leaking into a buffer nobody
/// will ever read.
#[derive(Debug)]
struct ReplySlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Debug)]
enum SlotState {
    /// No reply yet; the ticket is still live.
    Waiting,
    /// The reply landed and awaits redemption.
    Ready(Box<Result<Response, ServeError>>),
    /// The reply was redeemed.
    Taken,
    /// The ticket was dropped before a reply arrived; any reply is late.
    Tombstoned,
    /// The send side was dropped without ever replying (a worker died
    /// outside the supervised region).
    Lost,
}

/// The send side of one request's reply slot, held by `Pending` as the
/// request moves through queues, batches and retries.
#[derive(Debug)]
pub(crate) struct ReplySender {
    slot: Arc<ReplySlot>,
}

impl ReplySender {
    /// Deliver the reply. Returns `false` when the ticket was already
    /// abandoned — the reply is dropped (the caller counts it late).
    pub(crate) fn send(&self, result: Result<Response, ServeError>) -> bool {
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*s, SlotState::Waiting) {
            *s = SlotState::Ready(Box::new(result));
            self.slot.ready.notify_all();
            true
        } else {
            false
        }
    }
}

impl Drop for ReplySender {
    fn drop(&mut self) {
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*s, SlotState::Waiting) {
            *s = SlotState::Lost;
            self.slot.ready.notify_all();
        }
    }
}

/// Build one request's reply-slot pair.
pub(crate) fn reply_pair() -> (ReplySender, Ticket) {
    let slot = Arc::new(ReplySlot {
        state: Mutex::new(SlotState::Waiting),
        ready: Condvar::new(),
    });
    (ReplySender { slot: Arc::clone(&slot) }, Ticket { slot })
}

/// Deliver a reply, counting it under `late_replies` when the ticket was
/// already abandoned. Every worker-side reply goes through here.
pub(crate) fn send_reply(stats: &Stats, reply: &ReplySender, result: Result<Response, ServeError>) {
    if !reply.send(result) {
        stats.late_replies.fetch_add(1, Ordering::Relaxed);
    }
}

/// The receive side of one request; redeemed with [`Ticket::wait`] or
/// polled with [`Ticket::wait_timeout`]. Dropping an unredeemed ticket
/// tombstones its reply slot: a reply arriving afterwards is dropped and
/// counted (`late_replies`) rather than left behind unread.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ReplySlot>,
}

impl Ticket {
    /// Block until the request completes or is shed.
    ///
    /// # Errors
    ///
    /// Returns the typed rejection ([`ServeError::DeadlineExceeded`],
    /// [`ServeError::ShuttingDown`], …) or the simulation failure. If the
    /// reply slot's send side was dropped without a reply — the worker
    /// shard died outside the supervised region — this is
    /// [`ServeError::WorkerLost`], never a hang.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*s {
                SlotState::Ready(_) => match std::mem::replace(&mut *s, SlotState::Taken) {
                    SlotState::Ready(r) => return *r,
                    _ => unreachable!("state checked under the lock"),
                },
                SlotState::Lost | SlotState::Taken => return Err(ServeError::WorkerLost),
                SlotState::Waiting | SlotState::Tombstoned => {
                    s = self.slot.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Block until the request completes, is shed, or `timeout` elapses.
    ///
    /// A timeout does not cancel the request: the ticket stays redeemable,
    /// so the caller may keep polling (or switch to [`Ticket::wait`]).
    /// Only *dropping* the ticket gives up on the reply (tombstoning the
    /// slot).
    ///
    /// # Errors
    ///
    /// [`ServeError::ReplyTimeout`] when no reply arrived in time,
    /// [`ServeError::WorkerLost`] when the send side was dropped,
    /// otherwise exactly as [`Ticket::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Response, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*s {
                SlotState::Ready(_) => match std::mem::replace(&mut *s, SlotState::Taken) {
                    SlotState::Ready(r) => return *r,
                    _ => unreachable!("state checked under the lock"),
                },
                SlotState::Lost | SlotState::Taken => return Err(ServeError::WorkerLost),
                SlotState::Waiting | SlotState::Tombstoned => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServeError::ReplyTimeout { waited: timeout });
                    }
                    s = match self.slot.ready.wait_timeout(s, deadline - now) {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            }
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        let mut s = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*s, SlotState::Waiting) {
            *s = SlotState::Tombstoned;
        }
    }
}

pub(crate) struct ModelEntry {
    pub(crate) name: String,
    pub(crate) layer: ConvLayer,
    pub(crate) weights: Arc<Tensor>,
}

pub(crate) struct Pending {
    pub(crate) input: Tensor,
    pub(crate) enqueued: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) reply: ReplySender,
    /// Failed execution attempts so far (survives requeueing across
    /// shards); the retry policy quarantines past `config.max_retries`.
    pub(crate) attempts: u32,
    /// Whether any attempt failed an ABFT output check: a completion after
    /// that counts as an integrity *recovery* (the corruption was caught
    /// and healed by retry).
    pub(crate) integrity_hit: bool,
}

pub(crate) struct QueueState {
    /// One FIFO per registered model, indexed by [`ModelId`].
    pub(crate) queues: Vec<VecDeque<Pending>>,
    /// Total requests queued across all models (admission-control bound).
    pub(crate) total: usize,
    /// Cleared by shutdown; workers then drain and exit.
    pub(crate) open: bool,
    /// Worker shards still within their restart budget. Kept under the
    /// queue lock so admission control and shard-death handling see a
    /// consistent count.
    pub(crate) healthy: usize,
}

pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) models: RwLock<Vec<ModelEntry>>,
    pub(crate) queue: Mutex<QueueState>,
    pub(crate) ready: Condvar,
    pub(crate) cache: ProgramCache,
    pub(crate) stats: Stats,
    pub(crate) started: Instant,
}

/// A sharded, batching inference server over the cycle-accurate simulator.
///
/// See the [crate docs](crate) for the architecture; see
/// [`ServeConfig`] for tuning knobs.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<WorkerExit>>,
}

impl Server {
    /// Start the server: spawns `config.workers` worker-shard threads.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            stats: Stats::new(config.workers, config.max_batch),
            models: RwLock::new(Vec::new()),
            queue: Mutex::new(QueueState {
                queues: Vec::new(),
                total: 0,
                open: true,
                healthy: config.workers,
            }),
            ready: Condvar::new(),
            cache: ProgramCache::with_capacity(config.cache_capacity),
            started: Instant::now(),
            config,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("npcgra-serve-{i}"))
                    .spawn(move || supervisor::run_worker(&shared, i))
                    .expect("spawn worker shard")
            })
            .collect();
        Server { shared, workers }
    }

    /// Register a model (one DSC or standard layer with its weights) and
    /// eagerly compile its program into the shared cache, so no request
    /// ever pays for mapping compilation.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] if `weights` does not have the shape
    /// [`ConvLayer::random_weights`] documents for the layer kind;
    /// [`ServeError::Sim`] if the layer cannot be mapped onto the spec.
    pub fn register(&self, name: &str, layer: ConvLayer, weights: Tensor) -> Result<ModelId, ServeError> {
        let expected = expected_weight_shape(&layer);
        let got = (weights.channels(), weights.height(), weights.width());
        if got != expected {
            return Err(ServeError::ShapeMismatch { expected, got });
        }
        if layer.kind() != ConvKind::Standard {
            self.shared
                .cache
                .get_or_compile(&layer, &self.shared.config.spec, MappingKind::Auto)?;
        }
        let mut models = self.shared.models.write().unwrap_or_else(PoisonError::into_inner);
        let id = ModelId(models.len());
        models.push(ModelEntry {
            name: name.to_string(),
            layer,
            weights: Arc::new(weights),
        });
        drop(models);
        supervisor::lock_queue(&self.shared).queues.push(VecDeque::new());
        Ok(id)
    }

    /// Submit a request with the configured default deadline.
    ///
    /// # Errors
    ///
    /// As [`Server::submit_with_deadline`].
    pub fn submit(&self, model: ModelId, input: Tensor) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(model, input, self.shared.config.default_deadline)
    }

    /// Submit a request that must *start executing* within `deadline`
    /// (`None` = never expires). Admission control applies here: a full
    /// queue, a draining server, or a degraded one (too few healthy
    /// shards) rejects synchronously, typed.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::ShapeMismatch`],
    /// [`ServeError::DeadlineExceeded`] (a zero deadline has already
    /// expired and is rejected here, not queued), [`ServeError::QueueFull`],
    /// [`ServeError::ShuttingDown`] or [`ServeError::Degraded`].
    pub fn submit_with_deadline(&self, model: ModelId, input: Tensor, deadline: Option<Duration>) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        {
            let models = shared.models.read().unwrap_or_else(PoisonError::into_inner);
            let entry = models.get(model.0).ok_or(ServeError::UnknownModel)?;
            let expected = (entry.layer.in_channels(), entry.layer.in_h(), entry.layer.in_w());
            let got = (input.channels(), input.height(), input.width());
            if got != expected {
                return Err(ServeError::ShapeMismatch { expected, got });
            }
        }
        // A zero deadline has already expired: reject synchronously rather
        // than queue work that batch formation must shed anyway.
        if deadline.is_some_and(|d| d.is_zero()) {
            shared.stats.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExceeded);
        }
        let now = Instant::now();
        let (tx, ticket) = reply_pair();
        let mut q = supervisor::lock_queue(shared);
        if !q.open {
            shared.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        // Degraded mode (only meaningful with workers configured): with no
        // healthy shard left nothing will ever drain the queue, so shed
        // everything; below the healthy threshold, scale the queue bound by
        // the surviving fraction so backlog shrinks with capacity.
        if shared.config.workers > 0 {
            if q.healthy == 0 {
                shared.stats.degraded_sheds.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Degraded {
                    healthy: 0,
                    workers: shared.config.workers,
                });
            }
            if q.healthy < shared.config.min_healthy_workers {
                let scaled = (shared.config.queue_capacity * q.healthy / shared.config.workers).max(1);
                if q.total >= scaled {
                    shared.stats.degraded_sheds.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Degraded {
                        healthy: q.healthy,
                        workers: shared.config.workers,
                    });
                }
            }
        }
        if q.total >= shared.config.queue_capacity {
            shared.stats.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                capacity: shared.config.queue_capacity,
            });
        }
        q.queues[model.0].push_back(Pending {
            input,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            reply: tx,
            attempts: 0,
            integrity_hit: false,
        });
        q.total += 1;
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        shared.stats.observe_queue_depth(q.total as u64);
        drop(q);
        shared.ready.notify_one();
        Ok(ticket)
    }

    /// A live statistics snapshot (cache and fault counters included).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let depth = supervisor::lock_queue(&self.shared).total;
        let mut snap = self.shared.stats.snapshot(self.shared.started.elapsed(), depth);
        snap.cache_hits = self.shared.cache.hits();
        snap.cache_misses = self.shared.cache.misses();
        snap.cache_evictions = self.shared.cache.evictions();
        snap
    }

    /// The name a model was registered under.
    #[must_use]
    pub fn model_name(&self, model: ModelId) -> Option<String> {
        self.shared
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model.0)
            .map(|e| e.name.clone())
    }

    /// The IFM shape `(channels, height, width)` a model's requests must
    /// carry.
    #[must_use]
    pub fn model_shape(&self, model: ModelId) -> Option<(usize, usize, usize)> {
        self.shared
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model.0)
            .map(|e| (e.layer.in_channels(), e.layer.in_h(), e.layer.in_w()))
    }

    /// Graceful shutdown: stop admitting, let the workers drain every
    /// queued request (batching as usual), join them, and return the final
    /// statistics — including how each worker thread ended
    /// ([`WorkerExit`]), instead of propagating worker panics as a panic
    /// cascade here. With zero healthy workers the queue cannot drain, so
    /// remaining requests are rejected with [`ServeError::ShuttingDown`].
    #[must_use]
    pub fn shutdown(self) -> StatsSnapshot {
        {
            let mut q = supervisor::lock_queue(&self.shared);
            q.open = false;
        }
        self.shared.ready.notify_all();
        let exits: Vec<WorkerExit> = self
            .workers
            .into_iter()
            .map(|h| h.join().unwrap_or(WorkerExit::Panicked))
            .collect();
        let mut q = supervisor::lock_queue(&self.shared);
        let mut shed = 0usize;
        for queue in &mut q.queues {
            while let Some(p) = queue.pop_front() {
                shed += 1;
                self.shared.stats.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                send_reply(&self.shared.stats, &p.reply, Err(ServeError::ShuttingDown));
            }
        }
        q.total -= shed;
        let depth = q.total;
        drop(q);
        let mut snap = self.shared.stats.snapshot(self.shared.started.elapsed(), depth);
        snap.cache_hits = self.shared.cache.hits();
        snap.cache_misses = self.shared.cache.misses();
        snap.cache_evictions = self.shared.cache.evictions();
        snap.worker_exits = exits;
        snap
    }
}

fn expected_weight_shape(layer: &ConvLayer) -> (usize, usize, usize) {
    match layer.kind() {
        ConvKind::Depthwise => (layer.in_channels(), layer.k(), layer.k()),
        ConvKind::Pointwise => (layer.out_channels(), 1, layer.in_channels()),
        ConvKind::Standard => (
            layer.out_channels(),
            layer.k(),
            layer.k() * layer.in_channels() / layer.groups(),
        ),
    }
}

/// Pull the next batch off the shared queue, blocking until one is ready
/// or the server drains empty during shutdown (→ `None`, worker exits).
pub(crate) fn next_batch(shared: &Shared) -> Option<(ModelId, Vec<Pending>)> {
    let config = &shared.config;
    let mut q = supervisor::lock_queue(shared);
    loop {
        // The model whose head request has waited longest: it is both the
        // fairness choice and the first to hit its linger deadline.
        let oldest = q
            .queues
            .iter()
            .enumerate()
            .filter_map(|(i, dq)| dq.front().map(|p| (i, p.enqueued)))
            .min_by_key(|&(_, t)| t);
        match oldest {
            None => {
                if !q.open {
                    return None;
                }
                q = shared.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
            Some((m, head_enqueued)) => {
                let now = Instant::now();
                let len = q.queues[m].len();
                let lingered = now.duration_since(head_enqueued) >= config.max_linger;
                if len >= config.max_batch || lingered || !q.open {
                    let take = len.min(config.max_batch);
                    let items: Vec<Pending> = q.queues[m].drain(..take).collect();
                    q.total -= take;
                    return Some((ModelId(m), items));
                }
                let wait = config.max_linger - now.duration_since(head_enqueued);
                q = match shared.ready.wait_timeout(q, wait) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_arch::CgraSpec;

    fn config() -> ServeConfig {
        ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
            .with_workers(2)
            .with_max_batch(2)
            .with_max_linger(Duration::from_millis(1))
    }

    #[test]
    fn serve_one_request_end_to_end() {
        let server = Server::start(config());
        let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
        let w = layer.random_weights(1);
        let id = server.register("m", layer.clone(), w.clone()).unwrap();
        let ifm = Tensor::random(3, 8, 8, 2);
        let golden = npcgra_nn::reference::run_layer(&layer, &ifm, &w).unwrap();
        let resp = server.submit(id, ifm).unwrap().wait().unwrap();
        assert_eq!(resp.output, golden);
        assert!(resp.report.cycles > 0);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.worker_exits, vec![WorkerExit::Clean, WorkerExit::Clean]);
    }

    #[test]
    fn unknown_model_and_bad_shape_are_rejected() {
        let server = Server::start(config().with_workers(0));
        assert_eq!(
            server.submit(ModelId(7), Tensor::zeros(1, 1, 1)).unwrap_err(),
            ServeError::UnknownModel
        );
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let err = server.submit(id, Tensor::zeros(4, 2, 4)).unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { .. }));
        let _ = server.shutdown();
    }

    #[test]
    fn bad_weight_shape_is_rejected_at_registration() {
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
        let err = server.register("m", layer, Tensor::zeros(3, 2, 2)).unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { .. }));
        let _ = server.shutdown();
    }

    #[test]
    fn model_name_round_trips() {
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server
            .register("mobilenet.pw1", layer.clone(), layer.random_weights(1))
            .unwrap();
        assert_eq!(server.model_name(id).as_deref(), Some("mobilenet.pw1"));
        assert_eq!(server.model_name(ModelId(9)), None);
        let _ = server.shutdown();
    }

    #[test]
    fn zero_deadline_is_rejected_at_submit() {
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let err = server
            .submit_with_deadline(id, Tensor::random(4, 4, 4, 1), Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        let stats = server.shutdown();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.submitted, 0, "a rejected request never counts as submitted");
    }

    #[test]
    fn dropped_ticket_tombstones_its_slot() {
        let (tx, ticket) = reply_pair();
        drop(ticket);
        assert!(
            !tx.send(Err(ServeError::WorkerLost)),
            "a reply to an abandoned ticket must be dropped"
        );
    }

    #[test]
    fn dropped_sender_surfaces_as_worker_lost() {
        let (tx, ticket) = reply_pair();
        drop(tx);
        assert_eq!(ticket.wait().unwrap_err(), ServeError::WorkerLost);
    }

    #[test]
    fn late_reply_to_abandoned_ticket_is_counted() {
        // Zero workers: the request sits queued; dropping its ticket
        // abandons it, so the shutdown shed becomes a late reply.
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let ticket = server.submit(id, Tensor::random(4, 4, 4, 2)).unwrap();
        drop(ticket);
        let stats = server.shutdown();
        assert_eq!(stats.late_replies, 1);
        assert_eq!(stats.rejected_shutdown, 1);
    }

    #[test]
    fn wait_timeout_then_wait_still_redeems() {
        // Zero workers: nothing drains, so the timeout path is exercised
        // deterministically; shutdown then sheds with ShuttingDown.
        let server = Server::start(config().with_workers(0));
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
        let ticket = server.submit(id, Tensor::random(4, 4, 4, 3)).unwrap();
        let err = ticket.wait_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, ServeError::ReplyTimeout { .. }));
        let _ = server.shutdown();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::ShuttingDown);
    }
}
