//! Batch retry with poison isolation.
//!
//! A batch can fail for a reason that has nothing to do with most of its
//! members: one poison request (bad data tripping a hardware rule), or a
//! transient injected fault. Failing the whole batch would punish the
//! innocent batch-mates; retrying the whole batch forever would wedge the
//! shard. The policy here bisects instead: a failed group of `n > 1`
//! requests splits into halves that re-execute independently, so after
//! `log2(n)` rounds the poison is isolated in a group of one while every
//! clean half completes bit-exactly. A solo request that keeps failing is
//! quarantined with [`ServeError::Quarantined`] once its attempt count
//! (which survives requeueing across shards) exceeds
//! [`max_retries`](crate::ServeConfig::max_retries).
//!
//! The worklist is depth-first (halves push to the *front*), so a poison
//! request is isolated and quarantined before unrelated groups run —
//! bounding how long its batch-mates wait on it.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::time::Instant;

use npcgra_nn::{ConvLayer, Tensor};
use std::sync::Arc;

use crate::error::{RetryClass, ServeError};
use crate::server::{settle, Delivery, ModelId, Pending, Response, Shared};
use crate::supervisor::{read_models, requeue_or_fail, Shard};

/// What [`process`] did with its batch — the circuit breaker's sample.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ProcessOutcome {
    /// Whether the shard actually executed anything (an all-expired batch
    /// is shed without touching the simulator and is not a breaker sample).
    pub(crate) executed: bool,
    /// Whether any execution attempt failed (including attempts that later
    /// succeeded on retry) — the breaker tracks shard flakiness, not
    /// request outcomes.
    pub(crate) any_failed: bool,
}

/// Run one dequeued batch through deadline shedding, supervised execution
/// and the bisect/retry policy, replying to every request exactly once
/// (or handing unfinished work back to the queue if the shard dies).
///
/// A request whose reply comes back [`Delivery::Duplicate`] was already
/// answered by a hedge racer: its outcome counters are skipped here so
/// completed/failed/quarantined stay exactly-once per request.
pub(crate) fn process(shared: &Shared, shard: &mut Shard, model: ModelId, pendings: Vec<Pending>) -> ProcessOutcome {
    let mut outcome = ProcessOutcome::default();
    // Shed requests whose deadline passed while queued — before spending
    // any simulation time on them.
    let now = Instant::now();
    let mut live = Vec::with_capacity(pendings.len());
    for p in pendings {
        if p.deadline.is_some_and(|d| d < now) {
            if settle(shared, p.idem_key, &p.reply, Err(ServeError::DeadlineExceeded)) != Delivery::Duplicate {
                shared.stats.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return outcome;
    }

    let (layer, weights): (ConvLayer, Arc<Tensor>) = {
        let models = read_models(shared);
        let entry = &models[model.0];
        (entry.layer.clone(), Arc::clone(&entry.weights))
    };

    // Worklist of (group, generation): generation 0 is the batch as formed,
    // higher generations are retries/bisection halves.
    let mut work: VecDeque<(Vec<Pending>, u32)> = VecDeque::new();
    work.push_back((live, 0));
    while let Some((group, generation)) = work.pop_front() {
        if !shard.alive {
            // The shard died under an earlier group: hand everything not
            // yet executed back to the surviving shards.
            let mut rest = group;
            while let Some((g, _)) = work.pop_front() {
                rest.extend(g);
            }
            requeue_or_fail(shared, model, rest);
            return outcome;
        }
        if generation > 0 {
            shared.stats.retries.fetch_add(1, Ordering::Relaxed);
        }
        let batch_size = group.len();
        outcome.executed = true;
        match shard.execute(shared, &layer, &weights, &group) {
            Ok((outputs, report)) => {
                shared.stats.observe_batch(batch_size);
                shared
                    .stats
                    .integrity_checked
                    .fetch_add(report.integrity_checked, Ordering::Relaxed);
                shared
                    .stats
                    .integrity_failed
                    .fetch_add(report.integrity_failed, Ordering::Relaxed);
                shared
                    .stats
                    .integrity_recovered
                    .fetch_add(report.integrity_recovered, Ordering::Relaxed);
                let done = Instant::now();
                for (p, output) in group.into_iter().zip(outputs) {
                    let latency = done.duration_since(p.enqueued);
                    let delivery = settle(
                        shared,
                        p.idem_key,
                        &p.reply,
                        Ok(Response {
                            output,
                            report: report.clone(),
                            batch_size,
                            worker: shard.worker,
                            latency,
                            request_id: p.reply.request_id(),
                        }),
                    );
                    if delivery == Delivery::Duplicate {
                        continue;
                    }
                    shared.stats.completed.fetch_add(1, Ordering::Release);
                    if p.integrity_hit {
                        // An earlier attempt failed its output checksum;
                        // this completion is corruption caught and healed.
                        shared.stats.integrity_recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    shared.stats.observe_latency(latency);
                }
            }
            Err(e) => {
                outcome.any_failed = true;
                let mut group = group;
                let integrity = matches!(e, ServeError::Integrity(_));
                if integrity {
                    shared.stats.integrity_failed.fetch_add(1, Ordering::Relaxed);
                }
                for p in &mut group {
                    p.attempts += 1;
                    if integrity {
                        p.integrity_hit = true;
                    }
                }
                if RetryClass::of(&e) == RetryClass::Final {
                    for p in group {
                        if settle(shared, p.idem_key, &p.reply, Err(e.clone())) != Delivery::Duplicate {
                            shared.stats.failed.fetch_add(1, Ordering::Release);
                        }
                    }
                } else if group.len() > 1 {
                    // Bisect: the failure could be one poison member.
                    // Halves go to the worklist front (depth-first), so the
                    // poison is isolated before unrelated groups run.
                    let tail = group.split_off(group.len() / 2);
                    work.push_front((tail, generation + 1));
                    work.push_front((group, generation + 1));
                } else if group[0].attempts > shared.config.max_retries {
                    let p = group.pop().expect("solo group");
                    let delivery = settle(
                        shared,
                        p.idem_key,
                        &p.reply,
                        Err(ServeError::Quarantined {
                            attempts: p.attempts,
                            cause: Box::new(e),
                        }),
                    );
                    if delivery != Delivery::Duplicate {
                        shared.stats.quarantined.fetch_add(1, Ordering::Release);
                        shared.stats.failed.fetch_add(1, Ordering::Release);
                    }
                } else {
                    work.push_front((group, generation + 1));
                }
            }
        }
    }
    outcome
}
