//! Dynamic batch assembly: coalesce B same-model requests into one
//! simulator run, bit-exactly.
//!
//! Depthwise convolution treats channels independently, so B requests
//! concatenate along the channel axis into one C·B-channel layer with the
//! kernel set tiled B times — exactly the workload shape the §5.4
//! channel-batched mapping was designed for. Pointwise convolution treats
//! pixels independently (k = 1, s = 1, no padding), so B requests
//! concatenate along the row axis into one H·B-row layer sharing the
//! original weights. Either way, every output word is computed from the
//! same inputs and weights as in a solo run, so batching cannot change a
//! single bit — the serving integration test asserts this against the
//! golden reference.
//!
//! Standard convolution (im2col on the host) has no batched mapping and
//! runs one request at a time.

use npcgra_nn::{ConvKind, ConvLayer, Tensor};

/// Whether the server may coalesce requests for this layer.
pub(crate) fn batchable(layer: &ConvLayer) -> bool {
    matches!(layer.kind(), ConvKind::Depthwise | ConvKind::Pointwise)
}

/// The combined layer descriptor for a batch of `b` requests.
///
/// The name encodes only the batch size — the program cache normalizes
/// names away, so every model with this geometry and batch size shares one
/// compiled program.
pub(crate) fn combined_layer(layer: &ConvLayer, b: usize) -> ConvLayer {
    assert!(b >= 1);
    match layer.kind() {
        ConvKind::Depthwise => ConvLayer::depthwise(
            &format!("batch{b}"),
            layer.in_channels() * b,
            layer.in_h(),
            layer.in_w(),
            layer.k(),
            layer.s(),
            layer.pad(),
        )
        .with_activation(layer.activation()),
        ConvKind::Pointwise => ConvLayer::pointwise(
            &format!("batch{b}"),
            layer.in_channels(),
            layer.out_channels(),
            layer.in_h() * b,
            layer.in_w(),
        )
        .with_activation(layer.activation()),
        ConvKind::Standard => unreachable!("standard convolution is never batched"),
    }
}

/// Concatenate the batch's IFMs: channel-major for depthwise, row-major for
/// pointwise.
pub(crate) fn combined_ifm(layer: &ConvLayer, inputs: &[&Tensor]) -> Tensor {
    let b = inputs.len();
    match layer.kind() {
        ConvKind::Depthwise => {
            let c = layer.in_channels();
            Tensor::from_fn(c * b, layer.in_h(), layer.in_w(), |ch, y, x| inputs[ch / c].get(ch % c, y, x))
        }
        ConvKind::Pointwise => {
            let h = layer.in_h();
            Tensor::from_fn(layer.in_channels(), h * b, layer.in_w(), |ch, y, x| {
                inputs[y / h].get(ch, y % h, x)
            })
        }
        ConvKind::Standard => unreachable!("standard convolution is never batched"),
    }
}

/// The weight tensor for the combined layer: tiled B times for depthwise
/// (one kernel set per request slot, all identical — requests share the
/// model), unchanged for pointwise.
pub(crate) fn combined_weights(layer: &ConvLayer, weights: &Tensor, b: usize) -> Tensor {
    match layer.kind() {
        ConvKind::Depthwise => {
            let c = layer.in_channels();
            Tensor::from_fn(c * b, weights.height(), weights.width(), |ch, y, x| weights.get(ch % c, y, x))
        }
        ConvKind::Pointwise => weights.clone(),
        ConvKind::Standard => unreachable!("standard convolution is never batched"),
    }
}

/// Split the combined OFM back into one tensor per request, inverting
/// [`combined_ifm`]'s concatenation.
pub(crate) fn split_ofm(layer: &ConvLayer, b: usize, combined: &Tensor) -> Vec<Tensor> {
    match layer.kind() {
        ConvKind::Depthwise => {
            let c = layer.out_channels();
            (0..b)
                .map(|i| Tensor::from_fn(c, layer.out_h(), layer.out_w(), |ch, y, x| combined.get(i * c + ch, y, x)))
                .collect()
        }
        ConvKind::Pointwise => {
            let h = layer.out_h();
            (0..b)
                .map(|i| {
                    Tensor::from_fn(layer.out_channels(), h, layer.out_w(), |ch, y, x| {
                        combined.get(ch, i * h + y, x)
                    })
                })
                .collect()
        }
        ConvKind::Standard => unreachable!("standard convolution is never batched"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_nn::reference;

    /// Batched run through the *reference* model equals per-request runs —
    /// the independence argument above, checked end to end.
    #[test]
    fn batch_roundtrip_is_bit_exact_on_reference() {
        for layer in [
            ConvLayer::depthwise("dw", 3, 8, 9, 3, 1, 1),
            ConvLayer::depthwise("dw2", 2, 9, 9, 3, 2, 1),
            ConvLayer::pointwise("pw", 6, 5, 4, 7),
        ] {
            let b = 3;
            let w = layer.random_weights(7);
            let inputs: Vec<Tensor> = (0..b)
                .map(|i| Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 100 + i as u64))
                .collect();
            let refs: Vec<&Tensor> = inputs.iter().collect();

            let big = combined_layer(&layer, b);
            let big_ifm = combined_ifm(&layer, &refs);
            let big_w = combined_weights(&layer, &w, b);
            let big_ofm = reference::run_layer(&big, &big_ifm, &big_w).unwrap();
            let outs = split_ofm(&layer, b, &big_ofm);

            for (i, ifm) in inputs.iter().enumerate() {
                let solo = reference::run_layer(&layer, ifm, &w).unwrap();
                assert_eq!(outs[i], solo, "{} request {i}", layer.name());
            }
        }
    }

    #[test]
    fn combined_geometry() {
        let dw = ConvLayer::depthwise("dw", 4, 10, 10, 3, 1, 1);
        let big = combined_layer(&dw, 3);
        assert_eq!(big.in_channels(), 12);
        assert_eq!(big.out_h(), dw.out_h());

        let pw = ConvLayer::pointwise("pw", 4, 6, 10, 10);
        let big = combined_layer(&pw, 3);
        assert_eq!(big.in_h(), 30);
        assert_eq!(big.out_channels(), 6);
    }

    #[test]
    fn only_dsc_layers_are_batchable() {
        assert!(batchable(&ConvLayer::depthwise("d", 2, 8, 8, 3, 1, 1)));
        assert!(batchable(&ConvLayer::pointwise("p", 2, 2, 8, 8)));
        assert!(!batchable(&ConvLayer::standard("s", 3, 4, 8, 8, 3, 1, 1, 1)));
    }
}
