//! Crash-durable admission journal (DESIGN §18).
//!
//! Every robustness layer below this one assumes the serving *process*
//! survives: a crash after admission silently loses every queued request,
//! and a client that reconnects and retries can double-execute work it
//! already paid for. This module closes that gap with a checksummed
//! append-only write-ahead log in the ARIES tradition, scaled down to the
//! two record kinds admission actually needs:
//!
//! * **Admit** — written under the queue lock, in admission order, the
//!   moment a request enters the bounded queue. Carries the process-global
//!   `request_id` (the end-to-end trace key), the client-supplied
//!   idempotency key, and the full input tensor, so a restarted server can
//!   re-enqueue the work without any client help.
//! * **Ack** — written when the request reaches *any* terminal outcome
//!   (delivered success, final error, quarantine, shed). A success ack
//!   carries the output words, so an already-completed request can be
//!   *redelivered* from the bounded dedup table instead of re-executed.
//!
//! On restart, [`recover`] replays the file: admits without a matching ack
//! are re-enqueued, success acks seed the dedup table, and the journal is
//! compacted down to exactly that live state. Replay is torn-tail
//! tolerant — a crash mid-write leaves a partial record that replay
//! cleanly stops before — and every record is covered by an FNV-1a 64
//! checksum, so a flipped bit quarantines the record suffix from that
//! point instead of replaying garbage.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! offset  size       field
//! 0       8          magic  "NPCJRNL1"
//! 8       4          len    payload length of record 0
//! 12      1          kind   1=Admit 2=Ack
//! 13      len        payload
//! 13+len  8          check  FNV-1a 64 over the 5 prefix bytes + payload
//! ...                next record
//!
//! Admit payload: request_id u64 | idem_key u64 | model u32 | class u8
//!              | deadline_ms u32 | c u16 | h u16 | w u16 | c*h*w words (i16)
//! Ack payload:   request_id u64 | idem_key u64 | status u8
//!                status 1: c u16 | h u16 | w u16 | c*h*w words (i16)
//!                else:     (empty — a final failure frees the key)
//! ```
//!
//! Durability is batched: appends buffer in memory and reach the disk (one
//! `write` + `fsync`) every [`fsync_every`](JournalConfig::fsync_every)
//! records or [`fsync_interval`](JournalConfig::fsync_interval), whichever
//! comes first. The window between an outcome and its fsync is the
//! *ack-durability window*: a crash inside it re-executes already-acked
//! work on recovery. That re-execution is invisible to clients (the dedup
//! table and in-flight reservations collapse duplicates per idempotency
//! key), so the knob trades recovery work — never correctness — for
//! admission throughput.

use std::collections::{HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use npcgra_nn::{Tensor, Word};

/// Journal file magic: identifies the format and its (only) version.
pub const JOURNAL_MAGIC: [u8; 8] = *b"NPCJRNL1";

/// Record kind byte for an admission record.
pub const REC_ADMIT: u8 = 1;
/// Record kind byte for a terminal-outcome (acknowledgment) record.
pub const REC_ACK: u8 = 2;

/// Bound on a single record's payload; a declared length past it is
/// corruption by construction (the largest legal tensor is far smaller).
const MAX_RECORD_LEN: u32 = 1 << 26;

/// Bytes of framing around a record payload: `len u32 | kind u8` before,
/// `check u64` after.
const RECORD_OVERHEAD: usize = 4 + 1 + 8;

/// FNV-1a 64 over `bytes` — the record checksum. Same constants as the
/// wire-frame and ABFT checksums: it catches corruption (and the chaos
/// injector's bit flips), not adversaries.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where the admission journal lives and how eagerly it reaches the disk.
///
/// The journal is **off by default** (a [`ServeConfig`](crate::ServeConfig)
/// never references one); it only exists for servers started through
/// [`Server::start_with_journal`](crate::Server::start_with_journal).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Path of the journal file. Created (with its magic header) if
    /// missing; replayed and compacted if present.
    pub path: PathBuf,
    /// Records buffered before a batched `write` + `fsync` (`0` is treated
    /// as `1`: every record synced immediately).
    pub fsync_every: usize,
    /// Wall-clock bound on how long an appended record may sit unsynced
    /// even when the batch is not full.
    pub fsync_interval: Duration,
    /// Bound on remembered completed requests (the redelivery window):
    /// past it the oldest idempotency key is evicted FIFO, and a retry of
    /// that key re-executes instead of redelivering (DESIGN §18's
    /// dedup-window caveat).
    pub dedup_capacity: usize,
}

impl JournalConfig {
    /// A journal at `path` with the default batching knobs.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JournalConfig {
            path: path.into(),
            fsync_every: 8,
            fsync_interval: Duration::from_millis(2),
            dedup_capacity: 1024,
        }
    }

    /// Set the fsync batch size (records per sync; `0` = sync every record).
    #[must_use]
    pub fn with_fsync_every(mut self, every: usize) -> Self {
        self.fsync_every = every;
        self
    }

    /// Set the wall-clock bound on unsynced records.
    #[must_use]
    pub fn with_fsync_interval(mut self, interval: Duration) -> Self {
        self.fsync_interval = interval;
        self
    }

    /// Set the dedup-table capacity (completed requests remembered for
    /// redelivery; `0` is treated as `1`).
    #[must_use]
    pub fn with_dedup_capacity(mut self, capacity: usize) -> Self {
        self.dedup_capacity = capacity;
        self
    }
}

/// A decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A request entered the admission queue.
    Admit {
        /// Process-global request id minted at admission (the trace key).
        request_id: u64,
        /// Client-supplied idempotency key (`0` = none: replayable but not
        /// deduplicable).
        idem_key: u64,
        /// Registered model index the request targets.
        model: u32,
        /// Priority class index (0 Interactive, 1 Batch, 2 BestEffort).
        class: u8,
        /// The deadline the request carried, in milliseconds (`0` = none).
        /// Recorded for tracing; replay does not re-arm stale deadlines.
        deadline_ms: u32,
        /// Input shape `(channels, height, width)`.
        shape: (u16, u16, u16),
        /// Input words, row-major.
        words: Vec<Word>,
    },
    /// A previously admitted request reached a terminal outcome.
    Ack {
        /// The admitted request's id (matches its Admit record).
        request_id: u64,
        /// The idempotency key the admission carried.
        idem_key: u64,
        /// `Some` = delivered success (shape + output words, the
        /// redelivery payload); `None` = final failure (shed, quarantine,
        /// shutdown): the key is freed for a fresh attempt.
        outcome: Option<((u16, u16, u16), Vec<Word>)>,
    },
}

impl Record {
    /// The idempotency key this record carries.
    #[must_use]
    pub fn idem_key(&self) -> u64 {
        match self {
            Record::Admit { idem_key, .. } | Record::Ack { idem_key, .. } => *idem_key,
        }
    }

    /// The request id this record carries.
    #[must_use]
    pub fn request_id(&self) -> u64 {
        match self {
            Record::Admit { request_id, .. } | Record::Ack { request_id, .. } => *request_id,
        }
    }
}

fn put_words(out: &mut Vec<u8>, shape: (u16, u16, u16), words: &[Word]) {
    out.extend_from_slice(&shape.0.to_le_bytes());
    out.extend_from_slice(&shape.1.to_le_bytes());
    out.extend_from_slice(&shape.2.to_le_bytes());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Encode one record as its on-disk bytes (framing + checksum included).
#[must_use]
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match record {
        Record::Admit {
            request_id,
            idem_key,
            model,
            class,
            deadline_ms,
            shape,
            words,
        } => {
            payload.extend_from_slice(&request_id.to_le_bytes());
            payload.extend_from_slice(&idem_key.to_le_bytes());
            payload.extend_from_slice(&model.to_le_bytes());
            payload.push(*class);
            payload.extend_from_slice(&deadline_ms.to_le_bytes());
            put_words(&mut payload, *shape, words);
            REC_ADMIT
        }
        Record::Ack {
            request_id,
            idem_key,
            outcome,
        } => {
            payload.extend_from_slice(&request_id.to_le_bytes());
            payload.extend_from_slice(&idem_key.to_le_bytes());
            match outcome {
                Some((shape, words)) => {
                    payload.push(1);
                    put_words(&mut payload, *shape, words);
                }
                None => payload.push(0),
            }
            REC_ACK
        }
    };
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&u32::try_from(payload.len()).expect("journal payload fits u32").to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&payload);
    let check = fnv1a(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// A strict little-endian cursor over one record payload.
struct Cur<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.b.get(self.off..self.off + n)?;
        self.off += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn shaped_words(&mut self) -> Option<((u16, u16, u16), Vec<Word>)> {
        let shape = (self.u16()?, self.u16()?, self.u16()?);
        let count = usize::from(shape.0) * usize::from(shape.1) * usize::from(shape.2);
        let bytes = self.take(count.checked_mul(2)?)?;
        let words = bytes.chunks_exact(2).map(|c| Word::from_le_bytes([c[0], c[1]])).collect();
        Some((shape, words))
    }
    fn done(&self) -> bool {
        self.off == self.b.len()
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Option<Record> {
    let mut c = Cur { b: payload, off: 0 };
    let rec = match kind {
        REC_ADMIT => {
            let request_id = c.u64()?;
            let idem_key = c.u64()?;
            let model = c.u32()?;
            let class = c.u8()?;
            let deadline_ms = c.u32()?;
            let (shape, words) = c.shaped_words()?;
            Record::Admit {
                request_id,
                idem_key,
                model,
                class,
                deadline_ms,
                shape,
                words,
            }
        }
        REC_ACK => {
            let request_id = c.u64()?;
            let idem_key = c.u64()?;
            let outcome = match c.u8()? {
                0 => None,
                1 => Some(c.shaped_words()?),
                _ => return None,
            };
            Record::Ack {
                request_id,
                idem_key,
                outcome,
            }
        }
        _ => return None,
    };
    c.done().then_some(rec)
}

/// How a replay pass ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The file ended exactly on a record boundary (a clean shutdown's
    /// flushed-and-fsynced journal always replays like this).
    Clean,
    /// The file ended mid-record — the expected shape of a crash between a
    /// buffered append and its fsync. The partial bytes are discarded.
    Torn {
        /// Bytes of partial record discarded at the tail.
        bytes: usize,
    },
    /// A record failed its checksum (or its grammar) before end of file:
    /// corruption, not truncation. Everything from the bad record onward
    /// is quarantined — with the length prefix untrusted there is no
    /// boundary left to resynchronise on.
    Corrupt {
        /// Bytes quarantined (the bad record and everything after it).
        bytes: usize,
    },
}

/// The result of replaying a journal's bytes: every whole, checksummed
/// record in order, plus how the file ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// How the byte stream ended.
    pub tail: TailState,
}

/// Why a journal file could not be opened or replayed at all.
#[derive(Debug)]
pub enum JournalError {
    /// The file's first eight bytes were not [`JOURNAL_MAGIC`]. Nothing in
    /// the file can be trusted.
    BadMagic,
    /// An I/O operation on the journal failed.
    Io(std::io::Error),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "journal magic mismatch (want \"NPCJRNL1\")"),
            JournalError::Io(e) => write!(f, "journal i/o failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Replay a journal's full byte image (magic included).
///
/// Returns [`JournalError::BadMagic`] when the header itself is damaged;
/// otherwise replay never fails — damage downstream of the header is
/// reported through [`ReplayOutcome::tail`] and simply bounds how many
/// records survive.
pub fn replay_bytes(bytes: &[u8]) -> Result<ReplayOutcome, JournalError> {
    if bytes.len() < JOURNAL_MAGIC.len() {
        return Err(JournalError::BadMagic);
    }
    if bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let mut records = Vec::new();
    let mut off = JOURNAL_MAGIC.len();
    let tail = loop {
        let rem = bytes.len() - off;
        if rem == 0 {
            break TailState::Clean;
        }
        if rem < RECORD_OVERHEAD {
            break TailState::Torn { bytes: rem };
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break TailState::Corrupt { bytes: rem };
        }
        let len = len as usize;
        if rem < RECORD_OVERHEAD + len {
            break TailState::Torn { bytes: rem };
        }
        let body = &bytes[off..off + 5 + len];
        let declared = u64::from_le_bytes(bytes[off + 5 + len..off + RECORD_OVERHEAD + len].try_into().unwrap());
        if fnv1a(body) != declared {
            break TailState::Corrupt { bytes: rem };
        }
        match decode_payload(body[4], &body[5..]) {
            Some(rec) => records.push(rec),
            None => break TailState::Corrupt { bytes: rem },
        }
        off += RECORD_OVERHEAD + len;
    };
    Ok(ReplayOutcome { records, tail })
}

/// The buffered, batch-fsynced appender behind a live server's journal.
///
/// Appends accumulate in memory; [`flush`](JournalWriter::flush) moves them
/// to the file with a single `write` + `fsync` and happens automatically
/// every `fsync_every` records or `fsync_interval`, whichever comes first.
/// The file therefore always ends on a record boundary at `synced_len` —
/// a torn tail only exists after [`sever`](JournalWriter::sever), the
/// in-process stand-in for a hard process kill.
#[derive(Debug)]
pub(crate) struct JournalWriter {
    file: File,
    buf: Vec<u8>,
    pending: usize,
    last_sync: Instant,
    synced_len: u64,
    severed: bool,
    fsync_every: usize,
    fsync_interval: Duration,
    /// Records appended since open (buffered or synced).
    pub(crate) appends: u64,
    /// Batched `write` + `fsync` passes performed.
    pub(crate) fsyncs: u64,
}

impl JournalWriter {
    fn new(file: File, synced_len: u64, config: &JournalConfig) -> Self {
        JournalWriter {
            file,
            buf: Vec::new(),
            pending: 0,
            last_sync: Instant::now(),
            synced_len,
            severed: false,
            fsync_every: config.fsync_every.max(1),
            fsync_interval: config.fsync_interval,
            appends: 0,
            fsyncs: 0,
        }
    }

    /// Bytes durably on disk (magic included).
    pub(crate) fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Append one record; flushes when the batch or the interval fills.
    pub(crate) fn append(&mut self, record: &Record) -> std::io::Result<()> {
        if self.severed {
            return Ok(());
        }
        self.buf.extend_from_slice(&encode_record(record));
        self.appends += 1;
        self.pending += 1;
        if self.pending >= self.fsync_every || self.last_sync.elapsed() >= self.fsync_interval {
            self.flush()?;
        }
        Ok(())
    }

    /// Force every buffered record to the disk (`write` + `fsync`).
    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        if self.severed {
            return Ok(());
        }
        self.last_sync = Instant::now();
        if self.buf.is_empty() {
            self.pending = 0;
            return Ok(());
        }
        self.file.write_all(&self.buf)?;
        self.file.sync_data()?;
        self.synced_len += self.buf.len() as u64;
        self.fsyncs += 1;
        self.buf.clear();
        self.pending = 0;
        Ok(())
    }

    /// Simulate a hard process kill: everything past the last fsync is
    /// lost, except for `torn_bytes` of the pending buffer written raw —
    /// the torn tail a crash mid-`write` leaves behind. The writer is dead
    /// afterward: further appends and flushes are silently dropped,
    /// exactly as a killed process would drop them.
    pub(crate) fn sever(&mut self, torn_bytes: usize) -> std::io::Result<()> {
        if self.severed {
            return Ok(());
        }
        self.severed = true;
        let torn = torn_bytes.min(self.buf.len());
        if torn > 0 {
            self.file.write_all(&self.buf[..torn])?;
            self.file.sync_data()?;
        }
        self.buf.clear();
        self.pending = 0;
        Ok(())
    }
}

/// A completed request remembered for redelivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DedupEntry {
    /// The request id of the execution that produced this output (the
    /// original trace key; redeliveries reuse it).
    pub(crate) request_id: u64,
    /// Output shape.
    pub(crate) shape: (u16, u16, u16),
    /// Output words, row-major.
    pub(crate) words: Vec<Word>,
}

impl DedupEntry {
    /// Rebuild the remembered output tensor.
    pub(crate) fn tensor(&self) -> Tensor {
        let (c, h, w) = self.shape;
        let mut t = Tensor::zeros(usize::from(c), usize::from(h), usize::from(w));
        t.as_mut_slice().copy_from_slice(&self.words);
        t
    }
}

/// Bounded FIFO map from idempotency key to completed output: the
/// redelivery window. Eviction is strictly oldest-first; a retry of an
/// evicted key re-executes (the dedup-window caveat, DESIGN §18).
#[derive(Debug)]
pub(crate) struct DedupTable {
    capacity: usize,
    order: VecDeque<u64>,
    entries: HashMap<u64, DedupEntry>,
}

impl DedupTable {
    pub(crate) fn new(capacity: usize) -> Self {
        DedupTable {
            capacity: capacity.max(1),
            order: VecDeque::new(),
            entries: HashMap::new(),
        }
    }

    /// Remember `entry` under `key`. A key already present keeps its
    /// *first* entry (the first completion wins; a second execution of the
    /// same key is the duplicate). Returns `false` iff the key was already
    /// present.
    pub(crate) fn insert(&mut self, key: u64, entry: DedupEntry) -> bool {
        if self.entries.contains_key(&key) {
            return false;
        }
        while self.entries.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.entries.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key);
        self.entries.insert(key, entry);
        true
    }

    pub(crate) fn get(&self, key: u64) -> Option<&DedupEntry> {
        self.entries.get(&key)
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Entries in insertion (= completion) order, for compaction.
    pub(crate) fn iter_ordered(&self) -> impl Iterator<Item = (u64, &DedupEntry)> + '_ {
        self.order.iter().filter_map(|k| self.entries.get(k).map(|e| (*k, e)))
    }
}

/// An admitted-but-unacknowledged request recovered from the journal,
/// waiting to be re-enqueued once its model is registered again.
#[derive(Debug, Clone)]
pub(crate) struct RecoveredAdmit {
    /// The admission's original request id (for the recovery log; the
    /// re-execution mints a fresh one).
    pub(crate) request_id: u64,
    pub(crate) idem_key: u64,
    pub(crate) model: u32,
    pub(crate) class: u8,
    pub(crate) shape: (u16, u16, u16),
    pub(crate) words: Vec<Word>,
}

impl RecoveredAdmit {
    pub(crate) fn tensor(&self) -> Tensor {
        let (c, h, w) = self.shape;
        let mut t = Tensor::zeros(usize::from(c), usize::from(h), usize::from(w));
        t.as_mut_slice().copy_from_slice(&self.words);
        t
    }
}

/// What [`recover`] found in (and did to) the journal at startup.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Whole, checksummed records replayed from the file.
    pub records: usize,
    /// Admitted-but-unacknowledged requests queued for re-enqueue.
    pub replayed: usize,
    /// Completed requests seeding the redelivery (dedup) table.
    pub deduped: usize,
    /// Partial-record bytes discarded at the tail (crash mid-write).
    pub torn_tail_bytes: usize,
    /// Bytes quarantined behind a checksum-failed record (corruption).
    pub quarantined_bytes: usize,
    /// The original request ids of the replayed admissions, in admission
    /// order — the recovery log's trace keys (each re-execution logs a
    /// fresh id; this links them back).
    pub replayed_request_ids: Vec<u64>,
    /// Wall time spent replaying and compacting.
    pub elapsed: Duration,
}

/// Everything [`recover`] hands the server: a live writer positioned at
/// the end of the compacted file, the seeded dedup table, and the
/// admissions awaiting re-enqueue.
pub(crate) struct Recovery {
    pub(crate) writer: JournalWriter,
    pub(crate) dedup: DedupTable,
    pub(crate) admits: Vec<RecoveredAdmit>,
    pub(crate) report: RecoveryReport,
}

/// Open (creating if missing), replay, and compact the journal at
/// `config.path`.
///
/// Replay pairs each Admit with its Ack by `request_id`: unmatched admits
/// are the crash's lost in-flight work, success acks seed the dedup
/// table (bounded by `dedup_capacity`, oldest evicted). The file is then
/// compacted — rewritten to exactly the live state and atomically renamed
/// over the original — so journals stay proportional to the live window,
/// not to serving history. A crash during compaction leaves either the
/// old file or the new one, never a mix.
pub(crate) fn recover(config: &JournalConfig) -> Result<Recovery, JournalError> {
    let start = Instant::now();
    let bytes = match fs::read(&config.path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(JournalError::Io(e)),
    };
    let outcome = if bytes.is_empty() {
        ReplayOutcome {
            records: Vec::new(),
            tail: TailState::Clean,
        }
    } else {
        replay_bytes(&bytes)?
    };

    let mut admits: Vec<Option<RecoveredAdmit>> = Vec::new();
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    let mut dedup = DedupTable::new(config.dedup_capacity);
    for rec in &outcome.records {
        match rec {
            Record::Admit {
                request_id,
                idem_key,
                model,
                class,
                deadline_ms: _,
                shape,
                words,
            } => {
                by_id.insert(*request_id, admits.len());
                admits.push(Some(RecoveredAdmit {
                    request_id: *request_id,
                    idem_key: *idem_key,
                    model: *model,
                    class: *class,
                    shape: *shape,
                    words: words.clone(),
                }));
            }
            Record::Ack {
                request_id,
                idem_key,
                outcome,
            } => {
                if let Some(idx) = by_id.remove(request_id) {
                    admits[idx] = None;
                }
                if let Some((shape, words)) = outcome {
                    if *idem_key != 0 {
                        dedup.insert(
                            *idem_key,
                            DedupEntry {
                                request_id: *request_id,
                                shape: *shape,
                                words: words.clone(),
                            },
                        );
                    }
                }
            }
        }
    }
    let admits: Vec<RecoveredAdmit> = admits.into_iter().flatten().collect();

    // Compact: the live state (completed window + pending admits), nothing
    // else. Written to a sibling then renamed over the original, so a
    // crash mid-compaction leaves a whole file either way.
    let tmp = config.path.with_extension("compact");
    let mut out = Vec::new();
    out.extend_from_slice(&JOURNAL_MAGIC);
    for (key, entry) in dedup.iter_ordered() {
        out.extend_from_slice(&encode_record(&Record::Ack {
            request_id: entry.request_id,
            idem_key: key,
            outcome: Some((entry.shape, entry.words.clone())),
        }));
    }
    for a in &admits {
        out.extend_from_slice(&encode_record(&Record::Admit {
            request_id: a.request_id,
            idem_key: a.idem_key,
            model: a.model,
            class: a.class,
            deadline_ms: 0,
            shape: a.shape,
            words: a.words.clone(),
        }));
    }
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &config.path)?;
    let file = OpenOptions::new().append(true).open(&config.path)?;
    let writer = JournalWriter::new(file, out.len() as u64, config);

    let report = RecoveryReport {
        records: outcome.records.len(),
        replayed: admits.len(),
        deduped: dedup.len(),
        torn_tail_bytes: match outcome.tail {
            TailState::Torn { bytes } => bytes,
            _ => 0,
        },
        quarantined_bytes: match outcome.tail {
            TailState::Corrupt { bytes } => bytes,
            _ => 0,
        },
        replayed_request_ids: admits.iter().map(|a| a.request_id).collect(),
        elapsed: start.elapsed(),
    };
    Ok(Recovery {
        writer,
        dedup,
        admits,
        report,
    })
}

/// Read the journal file's current on-disk image — the input
/// [`replay_bytes`] wants. Audit helper: the crash soak replays the
/// surviving file to check its invariants without starting a server.
///
/// # Errors
///
/// Any I/O error opening or reading the file.
pub fn read_file(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(id: u64, key: u64) -> Record {
        Record::Admit {
            request_id: id,
            idem_key: key,
            model: 3,
            class: 0,
            deadline_ms: 250,
            shape: (1, 2, 2),
            words: vec![1, -2, 3, -4],
        }
    }

    fn ack_ok(id: u64, key: u64) -> Record {
        Record::Ack {
            request_id: id,
            idem_key: key,
            outcome: Some(((1, 1, 2), vec![7, -7])),
        }
    }

    fn ack_fail(id: u64, key: u64) -> Record {
        Record::Ack {
            request_id: id,
            idem_key: key,
            outcome: None,
        }
    }

    fn file_with(records: &[Record]) -> Vec<u8> {
        let mut out = JOURNAL_MAGIC.to_vec();
        for r in records {
            out.extend_from_slice(&encode_record(r));
        }
        out
    }

    #[test]
    fn roundtrip_replays_every_record() {
        let recs = vec![admit(1, 10), ack_ok(1, 10), admit(2, 0), ack_fail(2, 0), admit(3, 30)];
        let out = replay_bytes(&file_with(&recs)).unwrap();
        assert_eq!(out.records, recs);
        assert_eq!(out.tail, TailState::Clean);
    }

    #[test]
    fn torn_tail_stops_at_last_whole_record() {
        let recs = vec![admit(1, 10), admit(2, 20)];
        let mut bytes = file_with(&recs);
        let whole = bytes.len();
        bytes.extend_from_slice(&encode_record(&admit(3, 30))[..9]);
        let out = replay_bytes(&bytes).unwrap();
        assert_eq!(out.records, recs);
        assert_eq!(
            out.tail,
            TailState::Torn {
                bytes: bytes.len() - whole
            }
        );
    }

    #[test]
    fn bit_flip_quarantines_the_record_suffix() {
        let recs = vec![admit(1, 10), admit(2, 20), admit(3, 30)];
        let mut bytes = file_with(&recs);
        // Flip a bit inside record 1's payload (past record 0).
        let rec_len = encode_record(&admit(1, 10)).len();
        let flip_at = JOURNAL_MAGIC.len() + rec_len + 10;
        bytes[flip_at] ^= 0x04;
        let out = replay_bytes(&bytes).unwrap();
        assert_eq!(out.records, vec![admit(1, 10)], "records before the flip survive");
        assert!(matches!(out.tail, TailState::Corrupt { .. }));
    }

    #[test]
    fn bad_magic_is_unrecoverable() {
        let mut bytes = file_with(&[admit(1, 1)]);
        bytes[0] ^= 0xff;
        assert!(matches!(replay_bytes(&bytes), Err(JournalError::BadMagic)));
        assert!(matches!(replay_bytes(b"NPC"), Err(JournalError::BadMagic)));
    }

    #[test]
    fn oversized_length_prefix_is_corruption_not_allocation() {
        let mut bytes = JOURNAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[REC_ADMIT; 64]);
        let out = replay_bytes(&bytes).unwrap();
        assert!(out.records.is_empty());
        assert!(matches!(out.tail, TailState::Corrupt { .. }));
    }

    #[test]
    fn dedup_table_evicts_fifo_and_first_entry_wins() {
        let mut t = DedupTable::new(2);
        let e = |id| DedupEntry {
            request_id: id,
            shape: (1, 1, 1),
            words: vec![id as Word],
        };
        assert!(t.insert(1, e(1)));
        assert!(t.insert(2, e(2)));
        assert!(!t.insert(1, e(99)), "second completion of a key is the duplicate");
        assert_eq!(t.get(1).unwrap().request_id, 1, "first entry wins");
        assert!(t.insert(3, e(3)), "capacity 2: inserting 3 evicts 1 (oldest)");
        assert!(t.get(1).is_none());
        assert!(t.get(2).is_some());
        assert!(t.get(3).is_some());
        assert_eq!(t.len(), 2);
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("npcgra-journal-test-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn recover_fresh_then_write_then_recover_pairs_acks() {
        let path = temp_path("pairing");
        let _ = fs::remove_file(&path);
        let cfg = JournalConfig::new(&path).with_fsync_every(1);

        let rec = recover(&cfg).unwrap();
        assert_eq!(rec.report.records, 0);
        assert_eq!(rec.report.replayed, 0);
        let mut w = rec.writer;
        w.append(&admit(1, 10)).unwrap();
        w.append(&ack_ok(1, 10)).unwrap();
        w.append(&admit(2, 20)).unwrap();
        w.append(&admit(3, 0)).unwrap();
        w.flush().unwrap();
        drop(w);

        let rec = recover(&cfg).unwrap();
        assert_eq!(rec.report.records, 4);
        assert_eq!(rec.report.replayed, 2, "admits 2 and 3 were never acked");
        assert_eq!(rec.report.replayed_request_ids, vec![2, 3]);
        assert_eq!(rec.report.deduped, 1);
        assert_eq!(rec.report.torn_tail_bytes, 0);
        let d = rec.dedup.get(10).unwrap();
        assert_eq!(d.request_id, 1);
        assert_eq!(d.words, vec![7, -7]);
        assert_eq!(d.tensor().as_slice(), &[7, -7]);
        assert_eq!(rec.admits[0].request_id, 2);
        assert_eq!(rec.admits[0].tensor().as_slice(), &[1, -2, 3, -4]);

        // Recovery compacted: a third pass replays the same live state
        // from a file that holds exactly dedup + pending records.
        let rec2 = recover(&cfg).unwrap();
        assert_eq!(rec2.report.records, 3, "1 dedup ack + 2 pending admits");
        assert_eq!(rec2.report.replayed, 2);
        assert_eq!(rec2.report.deduped, 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn sever_leaves_a_torn_tail_recovery_tolerates() {
        let path = temp_path("sever");
        let _ = fs::remove_file(&path);
        // Big batch: appends stay buffered, nothing auto-syncs.
        let cfg = JournalConfig::new(&path)
            .with_fsync_every(1000)
            .with_fsync_interval(Duration::from_secs(3600));

        let rec = recover(&cfg).unwrap();
        let mut w = rec.writer;
        w.append(&admit(1, 10)).unwrap();
        w.flush().unwrap();
        w.append(&admit(2, 20)).unwrap();
        w.append(&admit(3, 30)).unwrap();
        w.sever(7).unwrap();
        // Dead writer: post-crash appends go nowhere.
        w.append(&admit(4, 40)).unwrap();
        w.flush().unwrap();
        drop(w);

        let rec = recover(&cfg).unwrap();
        assert_eq!(rec.report.records, 1, "only the flushed admit survived");
        assert_eq!(rec.report.replayed_request_ids, vec![1]);
        assert_eq!(rec.report.torn_tail_bytes, 7, "the torn write is discarded, not fatal");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fsync_batching_counts_syncs_not_appends() {
        let path = temp_path("batching");
        let _ = fs::remove_file(&path);
        let cfg = JournalConfig::new(&path)
            .with_fsync_every(4)
            .with_fsync_interval(Duration::from_secs(3600));
        let rec = recover(&cfg).unwrap();
        let mut w = rec.writer;
        for i in 0..8 {
            w.append(&admit(i, 0)).unwrap();
        }
        assert_eq!(w.appends, 8);
        assert_eq!(w.fsyncs, 2, "batch of 4: eight appends cost two syncs");
        w.flush().unwrap();
        assert_eq!(w.fsyncs, 2, "flush with an empty buffer does not sync again");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn config_builders_compose() {
        let c = JournalConfig::new("/tmp/j.wal")
            .with_fsync_every(0)
            .with_fsync_interval(Duration::from_millis(9))
            .with_dedup_capacity(0);
        assert_eq!(c.fsync_every, 0, "stored raw; writer clamps to 1");
        assert_eq!(c.fsync_interval, Duration::from_millis(9));
        let t = DedupTable::new(c.dedup_capacity);
        assert!(t.capacity >= 1);
    }
}
