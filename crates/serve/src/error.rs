//! Typed serving errors.
//!
//! Admission control and load shedding surface as values, never panics: a
//! closed-loop client can match on the variant to decide whether to retry
//! (queue full), give up (deadline) or stop (shutting down).

use std::fmt;

use npcgra_sim::SimError;

/// Why the server rejected (or failed) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the bounded queue is at capacity; retry later.
    QueueFull {
        /// The configured capacity the queue was at.
        capacity: usize,
    },
    /// The request's deadline passed before a worker started its batch.
    DeadlineExceeded,
    /// The server is shutting down and no longer accepts (or can run) work.
    ShuttingDown,
    /// The referenced model was never registered.
    UnknownModel,
    /// The input tensor does not match the model's IFM shape.
    ShapeMismatch {
        /// Shape the model expects, `(channels, height, width)`.
        expected: (usize, usize, usize),
        /// Shape the request carried.
        got: (usize, usize, usize),
    },
    /// The simulator rejected the layer (mapping or hardware-rule failure).
    Sim(SimError),
    /// The worker shard died before replying (a bug — workers don't panic).
    WorkerLost,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => write!(f, "queue full (capacity {capacity}); request shed"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::UnknownModel => write!(f, "unknown model id"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "input shape {got:?} does not match model IFM shape {expected:?}")
            }
            ServeError::Sim(e) => write!(f, "simulation failed: {e}"),
            ServeError::WorkerLost => write!(f, "worker shard lost before reply"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        assert!(ServeError::QueueFull { capacity: 8 }.to_string().contains("capacity 8"));
        let e = ServeError::ShapeMismatch {
            expected: (3, 8, 8),
            got: (3, 4, 4),
        };
        assert!(e.to_string().contains("(3, 8, 8)"));
        assert!(e.to_string().contains("(3, 4, 4)"));
    }
}
