//! Typed serving errors.
//!
//! Admission control, load shedding and fault recovery surface as values,
//! never panics: a closed-loop client can match on the variant to decide
//! whether to retry (queue full, degraded), give up (deadline, quarantined)
//! or stop (shutting down).

use std::fmt;
use std::time::Duration;

use npcgra_sim::SimError;

use crate::overload::{BrownoutLevel, Priority};

/// Why the server rejected (or failed) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the bounded queue is at capacity; retry later.
    QueueFull {
        /// The configured capacity the queue was at.
        capacity: usize,
    },
    /// The request's deadline passed before a worker started its batch.
    /// Pipeline jobs also surface this when a stage boundary finds the
    /// job's remaining deadline budget (split across stages proportionally
    /// to predicted cycles) already spent — shed there instead of burning
    /// downstream stages — and at submit for zero/expired deadlines.
    DeadlineExceeded,
    /// The server is shutting down and no longer accepts (or can run) work.
    ShuttingDown,
    /// The referenced model was never registered.
    UnknownModel,
    /// The input tensor does not match the model's IFM shape.
    ShapeMismatch {
        /// Shape the model expects, `(channels, height, width)`.
        expected: (usize, usize, usize),
        /// Shape the request carried.
        got: (usize, usize, usize),
    },
    /// The simulator rejected the layer (mapping or hardware-rule failure).
    Sim(SimError),
    /// An ABFT output checksum failed: the shard produced silently wrong
    /// words (see [`npcgra_sim::integrity`]). Retryable — transient faults
    /// draw independently per execution, so a re-run usually heals it.
    Integrity(SimError),
    /// The liveness layer preempted this request's batch: the watchdog
    /// cancelled a stuck (gray-failed) run via its
    /// [`CancelToken`](npcgra_sim::CancelToken), or the run exceeded its
    /// cycle budget. Retryable — the shard is rebuilt and the batch
    /// re-executes (faults draw independently per run ordinal).
    Preempted(SimError),
    /// The worker shard died before replying.
    WorkerLost,
    /// A worker shard panicked while executing this request's batch; the
    /// supervisor caught the panic and restarted the shard.
    WorkerPanic {
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// [`Ticket::wait_timeout`](crate::Ticket::wait_timeout): no reply
    /// arrived within the wait bound. The request may still complete later.
    ReplyTimeout {
        /// How long the caller waited.
        waited: Duration,
    },
    /// The request kept failing after the batch-retry policy bisected its
    /// batch down to this request alone and exhausted the retry cap: it is
    /// the poison, quarantined so batch-mates could complete.
    Quarantined {
        /// Execution attempts spent before giving up.
        attempts: u32,
        /// The failure observed on the final attempt.
        cause: Box<ServeError>,
    },
    /// Degraded mode: too few healthy worker shards remain, so load is
    /// shed early (or, at zero healthy shards, entirely).
    Degraded {
        /// Healthy worker shards at rejection time.
        healthy: usize,
        /// Worker shards the server was configured with.
        workers: usize,
    },
    /// Shed by the overload-control layer: either the brownout ladder
    /// rejected this class at admission (standing queue delay above the
    /// CoDel target), or a queued lower-priority request was evicted to
    /// make room for a higher-priority arrival.
    Overloaded {
        /// The brownout rung in force when the request was shed.
        level: BrownoutLevel,
        /// The shed request's priority class.
        class: Priority,
    },
    /// The crash-durability admission journal could not be recovered at
    /// startup (bad magic, or I/O failure while reading or compacting).
    /// Only [`Server::start_with_journal`](crate::Server::start_with_journal)
    /// surfaces this; a running server degrades to counting
    /// `journal_errors` rather than failing requests.
    Journal {
        /// What the journal layer reported.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => write!(f, "queue full (capacity {capacity}); request shed"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::UnknownModel => write!(f, "unknown model id"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "input shape {got:?} does not match model IFM shape {expected:?}")
            }
            ServeError::Sim(e) => write!(f, "simulation failed: {e}"),
            ServeError::Integrity(e) => write!(f, "output integrity check failed: {e}"),
            ServeError::Preempted(e) => write!(f, "batch preempted by the liveness watchdog: {e}"),
            ServeError::WorkerLost => write!(f, "worker shard lost before reply"),
            ServeError::WorkerPanic { message } => write!(f, "worker shard panicked: {message}"),
            ServeError::ReplyTimeout { waited } => {
                write!(f, "no reply within {:.3} s", waited.as_secs_f64())
            }
            ServeError::Quarantined { attempts, cause } => {
                write!(f, "request quarantined after {attempts} attempts: {cause}")
            }
            ServeError::Degraded { healthy, workers } => {
                write!(f, "degraded: only {healthy}/{workers} worker shards healthy; request shed")
            }
            ServeError::Overloaded { level, class } => {
                write!(f, "overloaded (brownout {level}): {class} request shed at admission")
            }
            ServeError::Journal { message } => write!(f, "admission journal failed: {message}"),
        }
    }
}

impl ServeError {
    /// Display this error tagged with the request id it resolved — the
    /// trace key that matches a shed/preempted/late request to its
    /// client-side record (tickets expose the id via
    /// [`Ticket::request_id`](crate::Ticket::request_id), successes via
    /// [`Response::request_id`](crate::Response::request_id)). Id `0`
    /// means "rejected before an id was assigned" (synchronous admission
    /// rejections have no ticket to trace).
    #[must_use]
    pub fn for_request(&self, request_id: u64) -> ForRequest<'_> {
        ForRequest { request_id, error: self }
    }
}

/// [`ServeError::for_request`]'s display adapter: `request <id>: <error>`.
#[derive(Debug, Clone, Copy)]
pub struct ForRequest<'a> {
    request_id: u64,
    error: &'a ServeError,
}

impl fmt::Display for ForRequest<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.request_id == 0 {
            write!(f, "request <unassigned>: {}", self.error)
        } else {
            write!(f, "request {}: {}", self.request_id, self.error)
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) | ServeError::Integrity(e) | ServeError::Preempted(e) => Some(e),
            ServeError::Quarantined { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        use npcgra_sim::SimCause;
        match e.cause {
            SimCause::IntegrityViolation(_) => ServeError::Integrity(e),
            SimCause::Cancelled | SimCause::CycleBudgetExceeded { .. } => ServeError::Preempted(e),
            _ => ServeError::Sim(e),
        }
    }
}

/// What a failure entitles the recovery machinery to do — the single
/// error→retryability table shared by the batch-retry policy, the shard
/// supervisor's rebuild path, and the pipeline's stage fault domains, so
/// those paths cannot silently diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Final by construction (admission sheds, shutdown, bad requests,
    /// exhausted retries): never re-executed.
    Final,
    /// Transient-fault-shaped (simulation faults, ABFT integrity trips):
    /// re-execute on the same shard — faults draw independently per run.
    Retry,
    /// The shard itself is suspect (liveness preemption, caught panic): the
    /// executing machine must be rebuilt (or failed over to a spare) before
    /// the work re-executes — a wedged simulator's state is unrecoverable.
    RebuildAndRetry,
}

impl RetryClass {
    /// Classify `e`. The match is exhaustive by variant (no wildcard arm),
    /// so adding a [`ServeError`] variant forces a decision here — and the
    /// exhaustive-match test below forces that decision to be deliberate.
    #[must_use]
    pub fn of(e: &ServeError) -> RetryClass {
        match e {
            ServeError::Sim(_) | ServeError::Integrity(_) => RetryClass::Retry,
            ServeError::Preempted(_) | ServeError::WorkerPanic { .. } => RetryClass::RebuildAndRetry,
            ServeError::QueueFull { .. }
            | ServeError::DeadlineExceeded
            | ServeError::ShuttingDown
            | ServeError::UnknownModel
            | ServeError::ShapeMismatch { .. }
            | ServeError::WorkerLost
            | ServeError::ReplyTimeout { .. }
            | ServeError::Quarantined { .. }
            | ServeError::Degraded { .. }
            | ServeError::Overloaded { .. }
            | ServeError::Journal { .. } => RetryClass::Final,
        }
    }
}

impl ServeError {
    /// Whether the batch-retry policy may re-execute a request that failed
    /// with this error (transient-fault-shaped failures), as opposed to
    /// rejections that are final by construction. Shorthand for
    /// `RetryClass::of(self) != RetryClass::Final`.
    #[must_use]
    pub fn retryable(&self) -> bool {
        RetryClass::of(self) != RetryClass::Final
    }

    /// Whether this failure is a liveness preemption (watchdog cancel or
    /// cycle-budget exhaustion) — the supervisor rebuilds the shard's
    /// machine on these, a wedged simulator's state being unrecoverable.
    #[must_use]
    pub fn is_preemption(&self) -> bool {
        matches!(self, ServeError::Preempted(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        assert!(ServeError::QueueFull { capacity: 8 }.to_string().contains("capacity 8"));
        let e = ServeError::ShapeMismatch {
            expected: (3, 8, 8),
            got: (3, 4, 4),
        };
        assert!(e.to_string().contains("(3, 8, 8)"));
        assert!(e.to_string().contains("(3, 4, 4)"));
        let q = ServeError::Quarantined {
            attempts: 3,
            cause: Box::new(ServeError::WorkerPanic { message: "chaos".into() }),
        };
        assert!(q.to_string().contains("3 attempts"));
        assert!(q.to_string().contains("chaos"));
        let d = ServeError::Degraded { healthy: 1, workers: 4 };
        assert!(d.to_string().contains("1/4"));
    }

    #[test]
    fn for_request_tags_the_display_with_the_trace_key() {
        let e = ServeError::DeadlineExceeded;
        assert_eq!(
            e.for_request(42).to_string(),
            "request 42: deadline exceeded before execution"
        );
        assert!(
            e.for_request(0).to_string().starts_with("request <unassigned>:"),
            "id 0 means the request was rejected before an id existed"
        );
    }

    #[test]
    fn only_transient_failures_are_retryable() {
        assert!(ServeError::WorkerPanic { message: "p".into() }.retryable());
        assert!(!ServeError::DeadlineExceeded.retryable());
        assert!(!ServeError::ShuttingDown.retryable());
        assert!(!ServeError::Degraded { healthy: 0, workers: 2 }.retryable());
        let shed = ServeError::Overloaded {
            level: BrownoutLevel::ShedBestEffort,
            class: Priority::BestEffort,
        };
        assert!(!shed.retryable(), "an admission shed is final, not retryable");
        assert!(shed.to_string().contains("shed-best-effort"));
        assert!(shed.to_string().contains("best-effort"));
    }

    #[test]
    fn integrity_violations_route_to_their_own_retryable_variant() {
        use npcgra_sim::{CheckKind, SimCause, SimError, Violation};
        let violation = SimError {
            block: "pw".into(),
            tile: 2,
            cycle: 0,
            cause: SimCause::IntegrityViolation(Violation {
                kind: CheckKind::RowChecksum,
                lane: 1,
                expected: 7,
                actual: 9,
            }),
        };
        let e: ServeError = violation.into();
        assert!(matches!(e, ServeError::Integrity(_)));
        assert!(e.retryable());
        assert!(e.to_string().contains("integrity"));
        let plain = SimError {
            block: "pw".into(),
            tile: 0,
            cycle: 0,
            cause: SimCause::GrfIndex(5),
        };
        assert!(matches!(ServeError::from(plain), ServeError::Sim(_)));
    }

    /// Every variant's class, asserted one by one over an exhaustive (no
    /// wildcard) constructor list: a new [`ServeError`] variant breaks the
    /// `RetryClass::of` match at compile time, and a changed classification
    /// breaks this test — either way the decision is deliberate.
    #[test]
    fn retry_class_table_is_exhaustive_and_deliberate() {
        use npcgra_sim::{SimCause, SimError};
        let sim = |cause: SimCause| SimError {
            block: "pw".into(),
            tile: 0,
            cycle: 0,
            cause,
        };
        let every: Vec<(ServeError, RetryClass)> = vec![
            (ServeError::QueueFull { capacity: 4 }, RetryClass::Final),
            (ServeError::DeadlineExceeded, RetryClass::Final),
            (ServeError::ShuttingDown, RetryClass::Final),
            (ServeError::UnknownModel, RetryClass::Final),
            (
                ServeError::ShapeMismatch {
                    expected: (1, 2, 3),
                    got: (3, 2, 1),
                },
                RetryClass::Final,
            ),
            (ServeError::Sim(sim(SimCause::GrfIndex(1))), RetryClass::Retry),
            (
                ServeError::Integrity(sim(SimCause::IntegrityViolation(npcgra_sim::Violation {
                    kind: npcgra_sim::CheckKind::ChannelSum,
                    lane: 0,
                    expected: 1,
                    actual: 2,
                }))),
                RetryClass::Retry,
            ),
            (ServeError::Preempted(sim(SimCause::Cancelled)), RetryClass::RebuildAndRetry),
            (ServeError::WorkerLost, RetryClass::Final),
            (ServeError::WorkerPanic { message: "p".into() }, RetryClass::RebuildAndRetry),
            (
                ServeError::ReplyTimeout {
                    waited: Duration::from_millis(1),
                },
                RetryClass::Final,
            ),
            (
                ServeError::Quarantined {
                    attempts: 2,
                    cause: Box::new(ServeError::DeadlineExceeded),
                },
                RetryClass::Final,
            ),
            (ServeError::Degraded { healthy: 0, workers: 2 }, RetryClass::Final),
            (
                ServeError::Overloaded {
                    level: BrownoutLevel::ShedBestEffort,
                    class: Priority::BestEffort,
                },
                RetryClass::Final,
            ),
            (
                ServeError::Journal {
                    message: "bad magic".into(),
                },
                RetryClass::Final,
            ),
        ];
        for (e, want) in &every {
            assert_eq!(RetryClass::of(e), *want, "{e}");
            assert_eq!(e.retryable(), *want != RetryClass::Final, "{e}");
            // Only rebuild-class failures justify tearing a machine down.
            assert_eq!(
                RetryClass::of(e) == RetryClass::RebuildAndRetry,
                e.is_preemption() || matches!(e, ServeError::WorkerPanic { .. }),
                "{e}"
            );
            // The coverage guard: consume each variant through a wildcard-free
            // match so this list must grow with the enum.
            match e {
                ServeError::QueueFull { .. }
                | ServeError::DeadlineExceeded
                | ServeError::ShuttingDown
                | ServeError::UnknownModel
                | ServeError::ShapeMismatch { .. }
                | ServeError::Sim(_)
                | ServeError::Integrity(_)
                | ServeError::Preempted(_)
                | ServeError::WorkerLost
                | ServeError::WorkerPanic { .. }
                | ServeError::ReplyTimeout { .. }
                | ServeError::Quarantined { .. }
                | ServeError::Degraded { .. }
                | ServeError::Overloaded { .. }
                | ServeError::Journal { .. } => {}
            }
        }
        assert_eq!(every.len(), 15, "one row per ServeError variant");
    }

    #[test]
    fn preemptions_route_to_their_own_retryable_variant() {
        use npcgra_sim::{SimCause, SimError};
        let cancelled = SimError {
            block: "dw".into(),
            tile: 1,
            cycle: 42,
            cause: SimCause::Cancelled,
        };
        let e: ServeError = cancelled.into();
        assert!(e.is_preemption());
        assert!(e.retryable(), "a preempted batch re-executes on a rebuilt shard");
        assert!(e.to_string().contains("preempted"));
        let blown = SimError {
            block: "dw".into(),
            tile: 0,
            cycle: 9,
            cause: SimCause::CycleBudgetExceeded { budget: 512 },
        };
        let e: ServeError = blown.into();
        assert!(e.is_preemption());
        assert!(e.to_string().contains("512"));
        assert!(!ServeError::DeadlineExceeded.is_preemption());
    }
}
