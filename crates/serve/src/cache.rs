//! Compiled-program cache.
//!
//! Mapping a layer onto a machine spec — tiling, block geometry, AGU
//! schedule — is pure and data-independent, so the server compiles each
//! distinct configuration once and shares the [`CompiledLayer`] across all
//! worker shards via `Arc`. The cache key is the *configuration*, not the
//! request: the layer descriptor with its name normalized away (two models
//! registering the same geometry share one program), the machine spec
//! (with float fields keyed by their bit patterns, so distinct clocks or
//! bandwidths never alias), and the requested [`MappingKind`].
//!
//! Dynamically-formed batch layers flow through the same cache: after the
//! first batch of a given (model, batch-size) shape, its program is a hit.
//!
//! The cache is bounded: past [`capacity`](ProgramCache::with_capacity)
//! distinct configurations, the least-recently-used entry is evicted (a
//! logical clock stamps every touch; eviction drops the minimum stamp).
//! Eviction only drops the cache's own `Arc` — programs still executing on
//! worker shards keep their references alive. Lock poisoning is recovered,
//! not propagated: a panicking worker must never wedge compilation for the
//! survivors.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use npcgra_arch::CgraSpec;
use npcgra_nn::ConvLayer;
use npcgra_sim::{CompiledLayer, MappingKind, SimError};

/// Hashable image of a [`CgraSpec`]: float fields by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SpecKey {
    rows: usize,
    cols: usize,
    word_bytes: usize,
    clock_bits: u64,
    features: npcgra_arch::CgraFeatures,
    hmem_bytes: usize,
    vmem_bytes: usize,
    mem_sets: usize,
    dram_bandwidth_bits: u64,
    dma_latency_cycles: u64,
    config_contexts: usize,
}

impl SpecKey {
    fn of(spec: &CgraSpec) -> Self {
        SpecKey {
            rows: spec.rows,
            cols: spec.cols,
            word_bytes: spec.word_bytes,
            clock_bits: spec.clock_hz.to_bits(),
            features: spec.features,
            hmem_bytes: spec.hmem_bytes,
            vmem_bytes: spec.vmem_bytes,
            mem_sets: spec.mem_sets,
            dram_bandwidth_bits: spec.dram_bandwidth.to_bits(),
            dma_latency_cycles: spec.dma_latency_cycles,
            config_contexts: spec.config_contexts,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// The layer with its name normalized away — geometry, stride, padding
    /// and activation are what determine the program.
    layer: ConvLayer,
    spec: SpecKey,
    kind: MappingKind,
}

#[derive(Debug)]
struct Entry {
    program: Arc<CompiledLayer>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Logical clock: bumped on every touch, stamped into the touched entry.
    clock: u64,
}

impl Inner {
    fn touch(&mut self, key: &CacheKey) -> Option<Arc<CompiledLayer>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.program)
        })
    }
}

/// A shared, thread-safe, bounded LRU cache of compiled layer programs.
#[derive(Debug, Default)]
pub struct ProgramCache {
    inner: Mutex<Inner>,
    /// Entry bound; `0` means unbounded.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ProgramCache {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// An empty cache bounded to `capacity` entries (`0` = unbounded).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ProgramCache {
            capacity,
            ..ProgramCache::default()
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fetch the compiled program for `(layer, spec, kind)`, compiling and
    /// inserting it on first use. Every fetch refreshes the entry's
    /// recency; an insert past capacity evicts the least-recently-used
    /// entry.
    ///
    /// # Errors
    ///
    /// Propagates the compile error if the layer cannot be mapped; failed
    /// configurations are not cached (a later call retries).
    pub fn get_or_compile(&self, layer: &ConvLayer, spec: &CgraSpec, kind: MappingKind) -> Result<Arc<CompiledLayer>, SimError> {
        let key = CacheKey {
            layer: layer.renamed(""),
            spec: SpecKey::of(spec),
            kind,
        };
        if let Some(hit) = self.lock().touch(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Compile outside the lock; racing threads may both compile, the
        // first insert wins and the duplicate is dropped.
        let compiled = Arc::new(CompiledLayer::compile(layer, spec, kind)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        if let Some(won) = inner.touch(&key) {
            // Lost the race: another thread inserted while we compiled.
            return Ok(won);
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            key,
            Entry {
                program: Arc::clone(&compiled),
                last_used: stamp,
            },
        );
        if self.capacity > 0 {
            while inner.map.len() > self.capacity {
                let victim = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map over capacity");
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(compiled)
    }

    /// Whether `(layer, spec, kind)` is already compiled, without touching
    /// recency or counters — the brownout ladder's `RejectUncached` rung
    /// asks this at admission, and a policy probe must not perturb LRU
    /// order or the hit-rate statistics.
    #[must_use]
    pub fn contains(&self, layer: &ConvLayer, spec: &CgraSpec, kind: MappingKind) -> bool {
        let key = CacheKey {
            layer: layer.renamed(""),
            spec: SpecKey::of(spec),
            kind,
        };
        self.lock().map.contains_key(&key)
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (compilations) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within the capacity bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct configurations cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ProgramCache::new();
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let a = cache.get_or_compile(&layer, &spec(), MappingKind::Auto).unwrap();
        let b = cache.get_or_compile(&layer, &spec(), MappingKind::Auto).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn name_is_normalized_away() {
        let cache = ProgramCache::new();
        let a = ConvLayer::pointwise("model-a.pw3", 8, 8, 4, 4);
        let b = ConvLayer::pointwise("model-b.expand", 8, 8, 4, 4);
        cache.get_or_compile(&a, &spec(), MappingKind::Auto).unwrap();
        cache.get_or_compile(&b, &spec(), MappingKind::Auto).unwrap();
        assert_eq!(cache.len(), 1, "same geometry shares one program");
    }

    #[test]
    fn distinct_specs_do_not_alias() {
        let cache = ProgramCache::new();
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let mut fast = spec();
        fast.clock_hz *= 2.0;
        cache.get_or_compile(&layer, &spec(), MappingKind::Auto).unwrap();
        cache.get_or_compile(&layer, &fast, MappingKind::Auto).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let cache = ProgramCache::new();
        let std_layer = ConvLayer::standard("c", 3, 4, 8, 8, 3, 1, 1, 1);
        assert!(cache.get_or_compile(&std_layer, &spec(), MappingKind::Auto).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ProgramCache::with_capacity(2);
        let a = ConvLayer::pointwise("a", 8, 8, 4, 4);
        let b = ConvLayer::pointwise("b", 8, 8, 8, 8);
        let c = ConvLayer::pointwise("c", 8, 8, 2, 2);
        cache.get_or_compile(&a, &spec(), MappingKind::Auto).unwrap();
        cache.get_or_compile(&b, &spec(), MappingKind::Auto).unwrap();
        // Refresh `a`, so `b` is now the LRU victim.
        cache.get_or_compile(&a, &spec(), MappingKind::Auto).unwrap();
        cache.get_or_compile(&c, &spec(), MappingKind::Auto).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        let hits_before = cache.hits();
        cache.get_or_compile(&a, &spec(), MappingKind::Auto).unwrap();
        assert_eq!(cache.hits(), hits_before + 1, "refreshed entry survived");
        cache.get_or_compile(&b, &spec(), MappingKind::Auto).unwrap();
        assert_eq!(cache.misses(), 4, "evicted entry recompiles");
    }

    #[test]
    fn contains_probe_leaves_recency_and_counters_alone() {
        let cache = ProgramCache::with_capacity(2);
        let a = ConvLayer::pointwise("a", 8, 8, 4, 4);
        let b = ConvLayer::pointwise("b", 8, 8, 8, 8);
        assert!(!cache.contains(&a, &spec(), MappingKind::Auto));
        cache.get_or_compile(&a, &spec(), MappingKind::Auto).unwrap();
        cache.get_or_compile(&b, &spec(), MappingKind::Auto).unwrap();
        let hits = cache.hits();
        // Probing `a` must not refresh it: `a` is still the LRU victim.
        assert!(cache.contains(&a, &spec(), MappingKind::Auto));
        assert_eq!(cache.hits(), hits, "a probe is not a hit");
        let c = ConvLayer::pointwise("c", 8, 8, 2, 2);
        cache.get_or_compile(&c, &spec(), MappingKind::Auto).unwrap();
        assert!(!cache.contains(&a, &spec(), MappingKind::Auto), "a was evicted as LRU");
        assert!(cache.contains(&b, &spec(), MappingKind::Auto));
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let cache = ProgramCache::with_capacity(0);
        for w in [2usize, 4, 8, 16] {
            let layer = ConvLayer::pointwise("pw", 8, 8, w, 4);
            cache.get_or_compile(&layer, &spec(), MappingKind::Auto).unwrap();
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 0);
    }
}
