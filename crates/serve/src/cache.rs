//! Compiled-program cache.
//!
//! Mapping a layer onto a machine spec — tiling, block geometry, AGU
//! schedule — is pure and data-independent, so the server compiles each
//! distinct configuration once and shares the [`CompiledLayer`] across all
//! worker shards via `Arc`. The cache key is the *configuration*, not the
//! request: the layer descriptor with its name normalized away (two models
//! registering the same geometry share one program), the machine spec
//! (with float fields keyed by their bit patterns, so distinct clocks or
//! bandwidths never alias), and the requested [`MappingKind`].
//!
//! Dynamically-formed batch layers flow through the same cache: after the
//! first batch of a given (model, batch-size) shape, its program is a hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use npcgra_arch::CgraSpec;
use npcgra_nn::ConvLayer;
use npcgra_sim::{CompiledLayer, MappingKind, SimError};

/// Hashable image of a [`CgraSpec`]: float fields by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SpecKey {
    rows: usize,
    cols: usize,
    word_bytes: usize,
    clock_bits: u64,
    features: npcgra_arch::CgraFeatures,
    hmem_bytes: usize,
    vmem_bytes: usize,
    mem_sets: usize,
    dram_bandwidth_bits: u64,
    dma_latency_cycles: u64,
    config_contexts: usize,
}

impl SpecKey {
    fn of(spec: &CgraSpec) -> Self {
        SpecKey {
            rows: spec.rows,
            cols: spec.cols,
            word_bytes: spec.word_bytes,
            clock_bits: spec.clock_hz.to_bits(),
            features: spec.features,
            hmem_bytes: spec.hmem_bytes,
            vmem_bytes: spec.vmem_bytes,
            mem_sets: spec.mem_sets,
            dram_bandwidth_bits: spec.dram_bandwidth.to_bits(),
            dma_latency_cycles: spec.dma_latency_cycles,
            config_contexts: spec.config_contexts,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// The layer with its name normalized away — geometry, stride, padding
    /// and activation are what determine the program.
    layer: ConvLayer,
    spec: SpecKey,
    kind: MappingKind,
}

/// A shared, thread-safe cache of compiled layer programs.
#[derive(Debug, Default)]
pub struct ProgramCache {
    map: RwLock<HashMap<CacheKey, Arc<CompiledLayer>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Fetch the compiled program for `(layer, spec, kind)`, compiling and
    /// inserting it on first use.
    ///
    /// # Errors
    ///
    /// Propagates the compile error if the layer cannot be mapped; failed
    /// configurations are not cached (a later call retries).
    pub fn get_or_compile(&self, layer: &ConvLayer, spec: &CgraSpec, kind: MappingKind) -> Result<Arc<CompiledLayer>, SimError> {
        let key = CacheKey {
            layer: layer.renamed(""),
            spec: SpecKey::of(spec),
            kind,
        };
        if let Some(hit) = self.map.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Compile outside the lock; racing threads may both compile, the
        // first insert wins and the duplicate is dropped.
        let compiled = Arc::new(CompiledLayer::compile(layer, spec, kind)?);
        let mut map = self.map.write().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&compiled));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(entry))
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (compilations) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct configurations cached.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ProgramCache::new();
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let a = cache.get_or_compile(&layer, &spec(), MappingKind::Auto).unwrap();
        let b = cache.get_or_compile(&layer, &spec(), MappingKind::Auto).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn name_is_normalized_away() {
        let cache = ProgramCache::new();
        let a = ConvLayer::pointwise("model-a.pw3", 8, 8, 4, 4);
        let b = ConvLayer::pointwise("model-b.expand", 8, 8, 4, 4);
        cache.get_or_compile(&a, &spec(), MappingKind::Auto).unwrap();
        cache.get_or_compile(&b, &spec(), MappingKind::Auto).unwrap();
        assert_eq!(cache.len(), 1, "same geometry shares one program");
    }

    #[test]
    fn distinct_specs_do_not_alias() {
        let cache = ProgramCache::new();
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let mut fast = spec();
        fast.clock_hz *= 2.0;
        cache.get_or_compile(&layer, &spec(), MappingKind::Auto).unwrap();
        cache.get_or_compile(&layer, &fast, MappingKind::Auto).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let cache = ProgramCache::new();
        let std_layer = ConvLayer::standard("c", 3, 4, 8, 8, 3, 1, 1, 1);
        assert!(cache.get_or_compile(&std_layer, &spec(), MappingKind::Auto).is_err());
        assert!(cache.is_empty());
    }
}
