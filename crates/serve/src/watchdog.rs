//! The batch watchdog: wall-clock liveness enforcement for gray-failed
//! shards.
//!
//! A crashed shard is loud — the supervisor catches the panic. A *gray*
//! failure is quiet: the simulated machine wedges or crawls, the batch
//! never returns, and its tickets would wait forever. The watchdog closes
//! that gap. Before each simulator run the worker *arms* a per-batch wall
//! deadline — `predicted compute cycles × calibrated ns-per-cycle ×`
//! [`watchdog_slack`](crate::ServeConfig::watchdog_slack) — together with
//! the run's [`CancelToken`]. One watchdog thread per server sleeps until
//! the nearest armed deadline; a run still armed past its deadline gets
//! its token cancelled, which the machine notices at the next simulated
//! cycle and returns [`SimCause::Cancelled`](npcgra_sim::SimCause) — a
//! typed, retryable error the normal retry/bisect/quarantine ladder
//! already knows how to route.
//!
//! The wall deadline only arms once the ns-per-cycle estimate has
//! calibrated on healthy batches, so a cold server never preempts on
//! noise; until then the deterministic cycle budget
//! ([`cycle_budget`](crate::ServeConfig::cycle_budget)) is the backstop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

use npcgra_sim::CancelToken;

/// One armed batch: when to fire, and whose run to cancel.
struct Armed {
    deadline: Instant,
    token: CancelToken,
}

/// Per-server watchdog state: one arming slot per worker shard (a shard
/// runs at most one batch at a time), a bell to wake the watchdog thread
/// when a nearer deadline is armed, and a shutdown latch.
pub(crate) struct Watchdog {
    slots: Mutex<Vec<Option<Armed>>>,
    bell: Condvar,
    stop: AtomicBool,
}

impl Watchdog {
    pub(crate) fn new(workers: usize) -> Self {
        Watchdog {
            slots: Mutex::new((0..workers).map(|_| None).collect()),
            bell: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    /// Arm `worker`'s slot: cancel `token` if the run is still armed at
    /// `deadline`. Overwrites any previous arming for the slot.
    pub(crate) fn arm(&self, worker: usize, deadline: Instant, token: CancelToken) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots[worker] = Some(Armed { deadline, token });
        drop(slots);
        // The thread may be parked on a farther (or no) deadline.
        self.bell.notify_all();
    }

    /// Disarm `worker`'s slot — the run returned (either way) in time.
    pub(crate) fn disarm(&self, worker: usize) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots[worker] = None;
    }

    /// Stop the watchdog thread (idempotent).
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.bell.notify_all();
    }

    /// The watchdog thread body: sleep until the nearest armed deadline
    /// (or the bell), cancel every run past its deadline, repeat.
    /// Preemption *counting* happens where the cancelled run surfaces —
    /// this thread only fires tokens and invokes `on_fire(slot)` so its
    /// owner can record the penalty (the server charges the shard's health
    /// EWMA; the pipeline counts the stuck stage).
    pub(crate) fn run(&self, on_fire: impl Fn(usize)) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            for (worker, slot) in slots.iter_mut().enumerate() {
                if slot.as_ref().is_some_and(|armed| armed.deadline <= now) {
                    let armed = slot.take().expect("checked above");
                    armed.token.cancel();
                    on_fire(worker);
                }
            }
            let nearest = slots.iter().flatten().map(|armed| armed.deadline).min();
            slots = match nearest {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    self.bell.wait_timeout(slots, wait).unwrap_or_else(PoisonError::into_inner).0
                }
                // Nothing armed: park until an arm or shutdown rings the bell.
                None => self.bell.wait(slots).unwrap_or_else(PoisonError::into_inner),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use std::sync::atomic::AtomicU64;

    #[test]
    fn expired_arming_cancels_the_token_and_reports_the_slot() {
        let wd = Arc::new(Watchdog::new(2));
        let fires: Arc<Vec<AtomicU64>> = Arc::new((0..2).map(|_| AtomicU64::new(0)).collect());
        let thread = {
            let (wd, fires) = (Arc::clone(&wd), Arc::clone(&fires));
            std::thread::spawn(move || {
                wd.run(|slot| {
                    fires[slot].fetch_add(1, Ordering::Relaxed);
                })
            })
        };
        let token = CancelToken::new();
        wd.arm(0, Instant::now() + Duration::from_millis(5), token.clone());
        let fired = Instant::now();
        while !token.is_cancelled() {
            assert!(fired.elapsed() < Duration::from_secs(5), "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(fires[0].load(Ordering::Relaxed), 1, "the preempted slot is reported");
        assert_eq!(fires[1].load(Ordering::Relaxed), 0, "the other slot is untouched");
        wd.shutdown();
        thread.join().expect("watchdog thread");
    }

    #[test]
    fn disarmed_runs_are_never_cancelled() {
        let wd = Arc::new(Watchdog::new(1));
        let fires = Arc::new(AtomicU64::new(0));
        let thread = {
            let (wd, fires) = (Arc::clone(&wd), Arc::clone(&fires));
            std::thread::spawn(move || {
                wd.run(|_| {
                    fires.fetch_add(1, Ordering::Relaxed);
                })
            })
        };
        let token = CancelToken::new();
        wd.arm(0, Instant::now() + Duration::from_millis(30), token.clone());
        wd.disarm(0);
        std::thread::sleep(Duration::from_millis(60));
        assert!(!token.is_cancelled(), "the run completed and disarmed in time");
        assert_eq!(fires.load(Ordering::Relaxed), 0);
        wd.shutdown();
        thread.join().expect("watchdog thread");
    }
}
