//! Server configuration.

use std::time::Duration;

use npcgra_arch::CgraSpec;

/// Configuration for a [`Server`](crate::Server).
///
/// The defaults describe a small deployment: four worker shards of the
/// paper's Table 4 NP-CGRA, batches of up to four same-model requests
/// coalesced within a two-millisecond linger window, and a bounded queue
/// of 256 requests with no default deadline.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Machine spec each worker shard simulates.
    pub spec: CgraSpec,
    /// Number of worker shards, each owning one simulated machine.
    ///
    /// `0` is allowed and means "no drain": every accepted request stays
    /// queued until [`shutdown`](crate::Server::shutdown) rejects it. Useful
    /// for deterministic admission-control tests.
    pub workers: usize,
    /// Maximum requests queued (over all models) before admission control
    /// sheds load with [`ServeError::QueueFull`](crate::ServeError::QueueFull).
    pub queue_capacity: usize,
    /// Maximum same-model requests coalesced into one batched simulator run.
    pub max_batch: usize,
    /// How long a request may linger at the head of its queue waiting for
    /// batch-mates before a worker runs a partial batch.
    pub max_linger: Duration,
    /// Deadline applied to requests submitted without an explicit one.
    /// `None` means such requests never expire.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            spec: CgraSpec::table4(),
            workers: 4,
            queue_capacity: 256,
            max_batch: 4,
            max_linger: Duration::from_millis(2),
            default_deadline: None,
        }
    }
}

impl ServeConfig {
    /// The default configuration over a given machine spec.
    #[must_use]
    pub fn for_spec(spec: &CgraSpec) -> Self {
        ServeConfig {
            spec: *spec,
            ..ServeConfig::default()
        }
    }

    /// Set the worker-shard count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the admission-control queue bound.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the maximum dynamic batch size.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Set the batching linger window.
    #[must_use]
    pub fn with_max_linger(mut self, linger: Duration) -> Self {
        self.max_linger = linger;
        self
    }

    /// Set the default per-request deadline.
    #[must_use]
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let c = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
            .with_workers(2)
            .with_queue_capacity(8)
            .with_max_batch(3)
            .with_max_linger(Duration::from_millis(5))
            .with_default_deadline(Some(Duration::from_secs(1)));
        assert_eq!(c.workers, 2);
        assert_eq!(c.queue_capacity, 8);
        assert_eq!(c.max_batch, 3);
        assert_eq!(c.max_linger, Duration::from_millis(5));
        assert_eq!(c.default_deadline, Some(Duration::from_secs(1)));
        assert_eq!(c.spec.rows, 4);
    }

    #[test]
    fn max_batch_is_at_least_one() {
        assert_eq!(ServeConfig::default().with_max_batch(0).max_batch, 1);
    }
}
