//! Server configuration.

use std::time::Duration;

use npcgra_arch::CgraSpec;
use npcgra_nn::Word;
use npcgra_sim::{BackendTier, IntegrityMode};

use crate::overload::CLASSES;

/// A one-shot, deterministic pipeline-stage fault trigger: when the named
/// stage picks up the job with this submit ordinal, the configured failure
/// fires exactly once. Keying on the ordinal (not time) makes chaos soaks
/// reproducible: the same trigger hits the same inference every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFault {
    /// Which pipeline stage the fault fires in.
    pub stage: usize,
    /// The submit ordinal (0-based) of the job that trips it.
    pub job: u64,
}

/// Which side of the fast-tier cross-check to corrupt (chaos knob): the
/// supervisor replays a sampled fast-tier batch on a scratch cycle-accurate
/// machine and quarantines the shard on *any* divergence — these inject one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossCheckCorruption {
    /// Flip one bit of the sampled output before the replay compares it.
    OutputBit,
    /// Skew the sampled charged-cycle count by one.
    ChargedCycles,
}

/// Chaos-engineering knobs: deliberate failures injected into the serving
/// path so the supervision, retry and quarantine machinery can be exercised
/// deterministically. All knobs default to "off"; a production config never
/// sets them.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// Make this worker shard panic on its first executed batch (the
    /// supervisor must catch it, restart the shard and retry the batch).
    pub panic_on_first_batch: Option<usize>,
    /// Treat any request whose input word at `(0, 0, 0)` equals this
    /// sentinel as poison: executing a batch containing it fails, driving
    /// the bisect-and-quarantine path.
    pub poison_value: Option<Word>,
    /// Seed for the per-shard [`FaultPlan`](npcgra_sim::FaultPlan)
    /// (deterministic transient bit flips in the simulated hardware).
    /// `None` disables fault injection even when `fault_rate > 0`.
    pub fault_seed: Option<u64>,
    /// Per-`(tile, cycle)` fault probability for the Bernoulli plan.
    pub fault_rate: f64,
    /// Per-`(tile, cycle)` probability of a *temporal* (gray) fault —
    /// a stall, slowdown or wedge drawn from the same seeded plan
    /// ([`FaultPlan::gray`](npcgra_sim::FaultPlan::gray)). `0.0` disables
    /// gray injection; like `fault_rate`, it needs `fault_seed`.
    pub gray_rate: f64,
    /// Cycles a drawn [`TemporalFault::Stall`](npcgra_sim::TemporalFault)
    /// burns before the tile resumes.
    pub gray_stall_cycles: u64,
    /// Cycle-cost multiplier a drawn
    /// [`TemporalFault::Slowdown`](npcgra_sim::TemporalFault) applies to
    /// the rest of its tile.
    pub gray_slowdown_factor: u32,
    /// Pipeline chaos: panic the stage shard while it executes the
    /// triggering job (the stage supervisor must catch it and heal from
    /// the last checkpoint on a rebuilt or spare shard).
    pub stage_kill: Option<StageFault>,
    /// Pipeline chaos: wedge the stage shard on the triggering job (a
    /// [`TemporalFault::Wedge`](npcgra_sim::TemporalFault) that the armed
    /// cycle budget converts into a typed preemption).
    pub stage_wedge: Option<StageFault>,
    /// Pipeline chaos: flip one bit of the triggering job's inter-stage
    /// activation before the stage's entry checksum verifies it (exercises
    /// the checksum-forwarding handoff-integrity path).
    pub stage_corrupt: Option<StageFault>,
    /// Fast-tier chaos: corrupt one side of a sampled cross-check so the
    /// divergence→quarantine path can be exercised deterministically.
    pub cross_check_corrupt: Option<CrossCheckCorruption>,
}

impl ChaosConfig {
    /// Whether any chaos knob is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.panic_on_first_batch.is_some()
            || self.poison_value.is_some()
            || (self.fault_seed.is_some() && (self.fault_rate > 0.0 || self.gray_rate > 0.0))
            || self.stage_kill.is_some()
            || self.stage_wedge.is_some()
            || self.stage_corrupt.is_some()
            || self.cross_check_corrupt.is_some()
    }
}

/// Overload-control knobs: priority scheduling, CoDel admission, hedged
/// execution and per-shard circuit breakers. Each knob maps to one failure
/// mode (see the README's overload table); the defaults keep the adaptive
/// machinery *off* except the breaker, so a config that never touches this
/// struct serves exactly as before.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Weighted-fair dequeue weights per priority class
    /// (`[interactive, batch, best-effort]`); zero weights are treated
    /// as 1 — every class must stay schedulable (starvation-freedom).
    pub weights: [u64; CLASSES],
    /// CoDel delay target: when the sliding-window *minimum* queue sojourn
    /// stays above this, the brownout ladder climbs one rung per window.
    /// `None` disables adaptive admission (the ladder stays at Normal).
    pub delay_target: Option<Duration>,
    /// The CoDel sliding window over which the minimum sojourn is tracked.
    pub delay_window: Duration,
    /// Hedge when a dispatched batch exceeds this observed execution-latency
    /// quantile (e.g. `0.95`). `0.0` disables hedging.
    pub hedge_quantile: f64,
    /// Floor under the hedge threshold — hedging microsecond batches only
    /// doubles load.
    pub hedge_floor: Duration,
    /// Batch executions observed before the hedge threshold is trusted.
    pub hedge_min_samples: u64,
    /// Circuit-breaker sliding outcome window per shard; `0` disables the
    /// breaker.
    pub breaker_window: usize,
    /// Failure fraction over the window that trips a shard's breaker.
    pub breaker_threshold: f64,
    /// Minimum outcomes in the window before the breaker may trip.
    pub breaker_min_samples: usize,
    /// Base open-state cooldown; doubles per consecutive re-open (cap 64×).
    pub breaker_cooldown: Duration,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            weights: [16, 4, 1],
            delay_target: None,
            delay_window: Duration::from_millis(10),
            hedge_quantile: 0.0,
            hedge_floor: Duration::from_micros(500),
            hedge_min_samples: 32,
            breaker_window: 16,
            breaker_threshold: 0.5,
            breaker_min_samples: 8,
            breaker_cooldown: Duration::from_millis(10),
        }
    }
}

/// Pipeline overload/liveness knobs: deadlines, priority admission and the
/// stage watchdog for whole-model serving ([`Pipeline`](crate::Pipeline)).
/// Every default keeps the machinery *off*, so a config that never touches
/// this struct serves pipelines exactly as before these knobs existed.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Deadline applied to pipeline jobs submitted without an explicit one
    /// (wall time from submit to final-stage reply). `None` means such jobs
    /// never expire.
    pub default_deadline: Option<Duration>,
    /// CoDel delay target over *stage-queue* sojourn times: when the
    /// sliding-window minimum residence time stays above this, the pipeline
    /// brownout ladder ([`BrownoutLevel`](crate::BrownoutLevel)) climbs one
    /// rung per window. `None` disables adaptive admission (the ladder
    /// stays at Normal).
    pub delay_target: Option<Duration>,
    /// The CoDel sliding window over which the minimum sojourn is tracked.
    pub delay_window: Duration,
    /// Weighted-fair dequeue weights per priority class on stage 0
    /// (`[interactive, batch, best-effort]`); zero weights are treated as 1.
    pub weights: [u64; CLASSES],
    /// Stage-watchdog slack: a stage run is preempted (its backend's
    /// [`CancelToken`](npcgra_sim::CancelToken) cancelled) once its wall
    /// time exceeds `stage predicted cycles × observed ns-per-cycle ×
    /// slack`. Arms only after the stage's ns-per-cycle estimate has
    /// calibrated on a few healthy passes. `0.0` disables the stage
    /// watchdog thread entirely (the default).
    pub watchdog_slack: f64,
    /// Per-stage in-flight cap enforced at admission while the brownout
    /// ladder sits at [`BrownoutLevel::CapBatch`](crate::BrownoutLevel) or
    /// above: a new job is rejected while any stage queue holds this many
    /// jobs. `0` derives a cap from `queue_capacity / (2 × stages)`.
    pub stage_inflight_cap: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            default_deadline: None,
            delay_target: None,
            delay_window: Duration::from_millis(10),
            weights: [16, 4, 1],
            watchdog_slack: 0.0,
            stage_inflight_cap: 0,
        }
    }
}

/// Configuration for a [`Server`](crate::Server).
///
/// The defaults describe a small deployment: four worker shards of the
/// paper's Table 4 NP-CGRA, batches of up to four same-model requests
/// coalesced within a two-millisecond linger window, and a bounded queue
/// of 256 requests with no default deadline.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Machine spec each worker shard simulates.
    pub spec: CgraSpec,
    /// Number of worker shards, each owning one simulated machine.
    ///
    /// `0` is allowed and means "no drain": every accepted request stays
    /// queued until [`shutdown`](crate::Server::shutdown) rejects it. Useful
    /// for deterministic admission-control tests.
    pub workers: usize,
    /// Maximum requests queued (over all models) before admission control
    /// sheds load with [`ServeError::QueueFull`](crate::ServeError::QueueFull).
    pub queue_capacity: usize,
    /// Maximum same-model requests coalesced into one batched simulator run.
    pub max_batch: usize,
    /// How long a request may linger at the head of its queue waiting for
    /// batch-mates before a worker runs a partial batch.
    pub max_linger: Duration,
    /// Deadline applied to requests submitted without an explicit one.
    /// `None` means such requests never expire.
    pub default_deadline: Option<Duration>,
    /// Bound on distinct compiled programs kept in the shared cache; the
    /// least-recently-used entry is evicted past it. `0` means unbounded.
    pub cache_capacity: usize,
    /// Per-request execution-attempt cap: a request that has failed this
    /// many re-executions (batch bisections included) is quarantined.
    pub max_retries: u32,
    /// Worker-shard panics survived before the supervisor gives the shard
    /// up as unhealthy (each survived panic is one restart).
    pub restart_budget: u32,
    /// Base supervisor backoff after a caught panic; doubles per
    /// consecutive restart of the shard, capped at 64× the base.
    pub restart_backoff: Duration,
    /// Degraded mode: when fewer than this many shards are healthy, the
    /// admission queue bound scales down by `healthy / workers`, shedding
    /// load early with [`ServeError::Degraded`](crate::ServeError::Degraded).
    pub min_healthy_workers: usize,
    /// ABFT output verification applied on every shard machine
    /// ([`IntegrityMode::Verify`] by default: silent corruption becomes a
    /// typed, retryable [`ServeError::Integrity`](crate::ServeError::Integrity)
    /// instead of a wrong reply; on fault-free hardware the checks always
    /// pass and cost O(output) host work per block).
    pub integrity: IntegrityMode,
    /// Run a canary self-test (a small golden layer with known outputs) on
    /// each shard every this-many batches; a shard failing it twice in a
    /// row is retired as [`WorkerExit::Unhealthy`](crate::WorkerExit::Unhealthy).
    /// `0` disables the canary.
    pub canary_interval: u64,
    /// Overload control: priority weights, CoDel admission, hedging and
    /// circuit breakers (see [`OverloadConfig`]).
    pub overload: OverloadConfig,
    /// Batch-watchdog slack: a running batch is preempted (its shard's
    /// [`CancelToken`](npcgra_sim::CancelToken) cancelled) once its wall
    /// time exceeds `predicted cycles × observed ns-per-cycle × slack`.
    /// The wall deadline only arms after the ns-per-cycle estimate has
    /// calibrated on a few healthy batches. `0.0` disables the watchdog
    /// thread entirely (the default).
    pub watchdog_slack: f64,
    /// Deterministic liveness backstop: each simulator block run gets a
    /// cycle budget of `block compute cycles × cycle_budget`; exceeding it
    /// fails the run with a typed, retryable error. Unlike the wall-clock
    /// watchdog it needs no calibration and is immune to host scheduling
    /// noise. `0.0` disables it (the default).
    pub cycle_budget: f64,
    /// Smoothing factor for the per-shard health EWMA (latency vs
    /// predicted cycles, preemptions, canary/breaker state) that steers
    /// hedge-target selection toward the healthiest shard.
    pub health_ewma_alpha: f64,
    /// Which execution tier each worker shard runs
    /// ([`BackendTier::CycleAccurate`] by default, so untouched
    /// configurations behave exactly as before tiers existed;
    /// [`BackendTier::Fast`] charges cycles from the closed-form latency
    /// models instead of simulating them — see
    /// [`npcgra_sim::exec`]).
    pub backend_tier: BackendTier,
    /// Under [`BackendTier::Fast`], replay one recent fast-tier batch on a
    /// scratch cycle-accurate machine every this-many batches per shard;
    /// *any* divergence (output bits or charged cycles) quarantines the
    /// shard. `0` disables cross-checking. Ignored on the cycle tier.
    pub cross_check_interval: u64,
    /// Whole-model pipeline serving ([`Pipeline`](crate::Pipeline)): how
    /// many balanced stages a [`CompiledModel`](npcgra_sim::CompiledModel)
    /// is partitioned into (each stage is its own fault domain with its own
    /// shard). Clamped to the model's fused-unit count at compile time.
    pub pipeline_stages: usize,
    /// Spare shards each pipeline stage may fail over to after exhausting
    /// its restart budget; with all spares consumed the stage goes dead and
    /// whole-model traffic is shed (before any single-layer traffic).
    pub stage_spares: usize,
    /// Checkpoint every Nth inter-stage boundary (the verified activation
    /// plus its checksum ride with the job): `1` checkpoints every handoff,
    /// larger values trade replay distance for copy overhead. The pipeline
    /// input (boundary 0) is always checkpointed, so `0` means "input only".
    pub checkpoint_every: usize,
    /// Pipeline overload/liveness: deadlines, priority admission, the
    /// brownout ladder and the stage watchdog (see [`PipelineConfig`];
    /// everything defaults off).
    pub pipeline: PipelineConfig,
    /// Deliberate failure injection (off by default).
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            spec: CgraSpec::table4(),
            workers: 4,
            queue_capacity: 256,
            max_batch: 4,
            max_linger: Duration::from_millis(2),
            default_deadline: None,
            cache_capacity: 512,
            max_retries: 4,
            restart_budget: 3,
            restart_backoff: Duration::from_millis(1),
            min_healthy_workers: 1,
            integrity: IntegrityMode::Verify,
            canary_interval: 0,
            overload: OverloadConfig::default(),
            watchdog_slack: 0.0,
            cycle_budget: 0.0,
            health_ewma_alpha: 0.2,
            backend_tier: BackendTier::CycleAccurate,
            cross_check_interval: 32,
            pipeline_stages: 4,
            stage_spares: 1,
            checkpoint_every: 1,
            pipeline: PipelineConfig::default(),
            chaos: ChaosConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The default configuration over a given machine spec.
    #[must_use]
    pub fn for_spec(spec: &CgraSpec) -> Self {
        ServeConfig {
            spec: *spec,
            ..ServeConfig::default()
        }
    }

    /// Set the worker-shard count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the admission-control queue bound.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the maximum dynamic batch size.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Set the batching linger window.
    #[must_use]
    pub fn with_max_linger(mut self, linger: Duration) -> Self {
        self.max_linger = linger;
        self
    }

    /// Set the default per-request deadline.
    #[must_use]
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Set the program-cache capacity (`0` = unbounded).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Set the per-request execution-attempt cap.
    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Set the per-shard restart budget.
    #[must_use]
    pub fn with_restart_budget(mut self, budget: u32) -> Self {
        self.restart_budget = budget;
        self
    }

    /// Set the base supervisor restart backoff.
    #[must_use]
    pub fn with_restart_backoff(mut self, backoff: Duration) -> Self {
        self.restart_backoff = backoff;
        self
    }

    /// Set the degraded-mode healthy-shard threshold.
    #[must_use]
    pub fn with_min_healthy_workers(mut self, min: usize) -> Self {
        self.min_healthy_workers = min;
        self
    }

    /// Set the ABFT output-verification mode.
    #[must_use]
    pub fn with_integrity(mut self, mode: IntegrityMode) -> Self {
        self.integrity = mode;
        self
    }

    /// Set the canary self-test interval in batches (`0` = off).
    #[must_use]
    pub fn with_canary_interval(mut self, interval: u64) -> Self {
        self.canary_interval = interval;
        self
    }

    /// Set the overload-control knobs.
    #[must_use]
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Enable CoDel adaptive admission with this delay target (convenience
    /// over [`with_overload`](ServeConfig::with_overload)).
    #[must_use]
    pub fn with_delay_target(mut self, target: Option<Duration>) -> Self {
        self.overload.delay_target = target;
        self
    }

    /// Set the batch-watchdog wall-clock slack (`0.0` = no watchdog).
    #[must_use]
    pub fn with_watchdog_slack(mut self, slack: f64) -> Self {
        self.watchdog_slack = slack;
        self
    }

    /// Set the per-block cycle-budget multiplier (`0.0` = no budget).
    #[must_use]
    pub fn with_cycle_budget(mut self, budget: f64) -> Self {
        self.cycle_budget = budget;
        self
    }

    /// Set the shard-health EWMA smoothing factor (clamped to `(0, 1]`).
    #[must_use]
    pub fn with_health_ewma_alpha(mut self, alpha: f64) -> Self {
        self.health_ewma_alpha = if alpha > 0.0 { alpha.min(1.0) } else { 0.2 };
        self
    }

    /// Set the chaos (failure-injection) knobs.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Select the execution tier worker shards run on.
    #[must_use]
    pub fn with_backend_tier(mut self, tier: BackendTier) -> Self {
        self.backend_tier = tier;
        self
    }

    /// Set the fast-tier cross-check interval in batches (`0` = off).
    #[must_use]
    pub fn with_cross_check_interval(mut self, interval: u64) -> Self {
        self.cross_check_interval = interval;
        self
    }

    /// Set the pipeline stage count (clamped to ≥ 1).
    #[must_use]
    pub fn with_pipeline_stages(mut self, stages: usize) -> Self {
        self.pipeline_stages = stages.max(1);
        self
    }

    /// Set the per-stage spare-shard budget.
    #[must_use]
    pub fn with_stage_spares(mut self, spares: usize) -> Self {
        self.stage_spares = spares;
        self
    }

    /// Set the checkpoint stride over inter-stage boundaries (`0` =
    /// checkpoint only the pipeline input).
    #[must_use]
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Set all pipeline overload/liveness knobs at once.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Enable pipeline CoDel adaptive admission with this delay target
    /// (convenience over [`with_pipeline`](ServeConfig::with_pipeline)).
    #[must_use]
    pub fn with_pipeline_delay_target(mut self, target: Option<Duration>) -> Self {
        self.pipeline.delay_target = target;
        self
    }

    /// Set the stage-watchdog wall-clock slack (`0.0` = no stage watchdog).
    #[must_use]
    pub fn with_pipeline_watchdog_slack(mut self, slack: f64) -> Self {
        self.pipeline.watchdog_slack = slack;
        self
    }

    /// Set the default pipeline-job deadline (`None` = jobs never expire).
    #[must_use]
    pub fn with_pipeline_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.pipeline.default_deadline = deadline;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let c = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
            .with_workers(2)
            .with_queue_capacity(8)
            .with_max_batch(3)
            .with_max_linger(Duration::from_millis(5))
            .with_default_deadline(Some(Duration::from_secs(1)));
        assert_eq!(c.workers, 2);
        assert_eq!(c.queue_capacity, 8);
        assert_eq!(c.max_batch, 3);
        assert_eq!(c.max_linger, Duration::from_millis(5));
        assert_eq!(c.default_deadline, Some(Duration::from_secs(1)));
        assert_eq!(c.spec.rows, 4);
    }

    #[test]
    fn max_batch_is_at_least_one() {
        assert_eq!(ServeConfig::default().with_max_batch(0).max_batch, 1);
    }

    #[test]
    fn chaos_defaults_off() {
        let c = ServeConfig::default();
        assert!(!c.chaos.enabled());
        // Rate alone (no seed) keeps injection off.
        let chaos = ChaosConfig {
            fault_rate: 0.5,
            ..ChaosConfig::default()
        };
        assert!(!chaos.enabled());
        let chaos = ChaosConfig {
            fault_seed: Some(1),
            fault_rate: 0.5,
            ..ChaosConfig::default()
        };
        assert!(chaos.enabled());
    }

    #[test]
    fn fault_tolerance_builders_compose() {
        let c = ServeConfig::default()
            .with_cache_capacity(16)
            .with_max_retries(7)
            .with_restart_budget(2)
            .with_restart_backoff(Duration::ZERO)
            .with_min_healthy_workers(3)
            .with_integrity(IntegrityMode::VerifyAndRecompute)
            .with_canary_interval(64);
        assert_eq!(c.cache_capacity, 16);
        assert_eq!(c.max_retries, 7);
        assert_eq!(c.restart_budget, 2);
        assert_eq!(c.restart_backoff, Duration::ZERO);
        assert_eq!(c.min_healthy_workers, 3);
        assert_eq!(c.integrity, IntegrityMode::VerifyAndRecompute);
        assert_eq!(c.canary_interval, 64);
    }

    #[test]
    fn liveness_knobs_default_off_and_compose() {
        let c = ServeConfig::default();
        assert_eq!(c.watchdog_slack, 0.0, "watchdog defaults off");
        assert_eq!(c.cycle_budget, 0.0, "cycle budget defaults off");
        assert!(c.health_ewma_alpha > 0.0 && c.health_ewma_alpha <= 1.0);
        let c = c.with_watchdog_slack(6.0).with_cycle_budget(8.0).with_health_ewma_alpha(0.5);
        assert_eq!(c.watchdog_slack, 6.0);
        assert_eq!(c.cycle_budget, 8.0);
        assert_eq!(c.health_ewma_alpha, 0.5);
        // A nonsense alpha falls back to the default rather than freezing
        // or inverting the EWMA.
        assert_eq!(ServeConfig::default().with_health_ewma_alpha(-3.0).health_ewma_alpha, 0.2);
    }

    #[test]
    fn gray_chaos_counts_as_enabled_only_with_a_seed() {
        let gray = ChaosConfig {
            gray_rate: 0.1,
            ..ChaosConfig::default()
        };
        assert!(!gray.enabled(), "gray rate without a seed stays off");
        let gray = ChaosConfig {
            fault_seed: Some(7),
            gray_rate: 0.1,
            ..ChaosConfig::default()
        };
        assert!(gray.enabled());
    }

    #[test]
    fn integrity_defaults_to_verify_with_no_canary() {
        let c = ServeConfig::default();
        assert_eq!(c.integrity, IntegrityMode::Verify);
        assert_eq!(c.canary_interval, 0);
    }

    #[test]
    fn backend_tier_defaults_to_cycle_accurate_and_composes() {
        let c = ServeConfig::default();
        assert_eq!(c.backend_tier, BackendTier::CycleAccurate, "untouched configs stay golden");
        assert!(
            c.cross_check_interval > 0,
            "cross-checking defaults armed for fast-tier users"
        );
        let c = c.with_backend_tier(BackendTier::Fast).with_cross_check_interval(7);
        assert_eq!(c.backend_tier, BackendTier::Fast);
        assert_eq!(c.cross_check_interval, 7);
    }

    #[test]
    fn pipeline_knobs_default_sane_and_compose() {
        let c = ServeConfig::default();
        assert_eq!(c.pipeline_stages, 4);
        assert_eq!(c.stage_spares, 1);
        assert_eq!(c.checkpoint_every, 1, "every boundary checkpointed by default");
        let c = c.with_pipeline_stages(6).with_stage_spares(2).with_checkpoint_every(3);
        assert_eq!(c.pipeline_stages, 6);
        assert_eq!(c.stage_spares, 2);
        assert_eq!(c.checkpoint_every, 3);
        assert_eq!(ServeConfig::default().with_pipeline_stages(0).pipeline_stages, 1);
    }

    #[test]
    fn stage_and_cross_check_chaos_count_as_enabled() {
        let kill = ChaosConfig {
            stage_kill: Some(StageFault { stage: 1, job: 3 }),
            ..ChaosConfig::default()
        };
        assert!(kill.enabled());
        let wedge = ChaosConfig {
            stage_wedge: Some(StageFault { stage: 0, job: 0 }),
            ..ChaosConfig::default()
        };
        assert!(wedge.enabled());
        let corrupt = ChaosConfig {
            stage_corrupt: Some(StageFault { stage: 2, job: 9 }),
            ..ChaosConfig::default()
        };
        assert!(corrupt.enabled());
        let cc = ChaosConfig {
            cross_check_corrupt: Some(CrossCheckCorruption::OutputBit),
            ..ChaosConfig::default()
        };
        assert!(cc.enabled());
    }

    #[test]
    fn pipeline_overload_knobs_default_off_and_compose() {
        let c = ServeConfig::default();
        assert_eq!(c.pipeline.default_deadline, None, "pipeline jobs never expire by default");
        assert_eq!(c.pipeline.delay_target, None, "pipeline CoDel admission defaults off");
        assert_eq!(c.pipeline.watchdog_slack, 0.0, "stage watchdog defaults off");
        assert_eq!(c.pipeline.weights, [16, 4, 1]);
        assert_eq!(c.pipeline.stage_inflight_cap, 0, "inflight cap derives from queue capacity");
        let c = c
            .with_pipeline_delay_target(Some(Duration::from_millis(3)))
            .with_pipeline_watchdog_slack(6.0)
            .with_pipeline_default_deadline(Some(Duration::from_millis(250)));
        assert_eq!(c.pipeline.delay_target, Some(Duration::from_millis(3)));
        assert_eq!(c.pipeline.watchdog_slack, 6.0);
        assert_eq!(c.pipeline.default_deadline, Some(Duration::from_millis(250)));
        let c = c.with_pipeline(PipelineConfig {
            weights: [8, 2, 1],
            stage_inflight_cap: 4,
            ..c.pipeline
        });
        assert_eq!(c.pipeline.weights, [8, 2, 1]);
        assert_eq!(c.pipeline.stage_inflight_cap, 4);
        assert_eq!(c.pipeline.watchdog_slack, 6.0, "struct builder keeps prior knobs");
    }

    #[test]
    fn overload_defaults_keep_adaptive_machinery_off() {
        let c = ServeConfig::default();
        assert_eq!(c.overload.delay_target, None, "CoDel admission defaults off");
        assert_eq!(c.overload.hedge_quantile, 0.0, "hedging defaults off");
        assert!(c.overload.breaker_window > 0, "the breaker defaults on");
        assert_eq!(c.overload.weights, [16, 4, 1]);
        let c = c
            .with_delay_target(Some(Duration::from_millis(5)))
            .with_overload(OverloadConfig {
                hedge_quantile: 0.95,
                ..c.overload
            });
        // with_overload replaces the whole struct, so the later call wins.
        assert_eq!(c.overload.hedge_quantile, 0.95);
        let c = c.with_delay_target(Some(Duration::from_millis(7)));
        assert_eq!(c.overload.delay_target, Some(Duration::from_millis(7)));
        assert_eq!(c.overload.hedge_quantile, 0.95, "delay builder only touches its knob");
    }
}
