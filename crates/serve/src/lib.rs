//! `npcgra-serve` — a sharded, batching inference server over the
//! cycle-accurate NP-CGRA simulator.
//!
//! The simulator executes one layer at a time; this crate turns it into a
//! multi-tenant service the way a real accelerator deployment would:
//!
//! * **Worker shards** — each worker thread owns one simulated
//!   [`Machine`](npcgra_sim::Machine) and drains a shared work queue, so
//!   throughput scales with host cores exactly as a rack of NP-CGRA boards
//!   would scale with devices.
//! * **Dynamic batching** — same-model requests arriving within a linger
//!   window coalesce into one simulator run: depthwise requests concatenate
//!   along the channel axis (the §5.4 channel-batched DWC mapping's natural
//!   shape), pointwise requests along the row axis. Batching is bit-exact
//!   by construction — see [`crate::batch`]'s module docs for the argument.
//! * **Compiled-program cache** — mapping a layer (tiling + AGU schedule)
//!   is pure and data-independent, so it happens once per distinct
//!   (layer geometry, machine spec, mapping) configuration and is shared
//!   across shards as an [`Arc<CompiledLayer>`](npcgra_sim::CompiledLayer);
//!   the cache hit rate is reported in the stats.
//! * **Admission control** — a bounded queue sheds load with typed errors
//!   ([`ServeError::QueueFull`]), per-request deadlines are enforced at
//!   batch formation ([`ServeError::DeadlineExceeded`]), and shutdown
//!   drains gracefully.
//! * **Fault tolerance** — worker panics are caught by a supervisor that
//!   rebuilds the shard's machine under a restart budget with exponential
//!   backoff; failed batches bisect to quarantine poison requests
//!   ([`ServeError::Quarantined`]) while their batch-mates complete;
//!   too few healthy shards sheds load early ([`ServeError::Degraded`]);
//!   and [`ChaosConfig`] injects deterministic panics, poison and
//!   simulated-hardware bit flips to drive all of it in tests.
//! * **Gray-failure resilience** ([`crate::watchdog`]) — temporal chaos
//!   faults (wedges, stalls, slowdowns) model shards that go *slow or
//!   stuck* rather than dead; a deterministic per-run cycle budget
//!   ([`ServeConfig::cycle_budget`](crate::ServeConfig)) and a batch
//!   watchdog arming `predicted cycles × calibrated ns-per-cycle ×`
//!   [`watchdog_slack`](crate::ServeConfig) wall deadlines cancel stuck
//!   runs cooperatively ([`ServeError::Preempted`], retryable); the
//!   supervisor rebuilds preempted shards under the restart budget with
//!   decorrelated-jitter backoff, and a per-shard health EWMA steers
//!   hedge claims to the healthiest shard.
//! * **Overload control** ([`crate::overload`]) — requests carry a
//!   [`Priority`] class; weighted-fair dequeue keeps every class moving
//!   while CoDel-style adaptive admission climbs a staged brownout ladder
//!   ([`BrownoutLevel`]) under standing queue delay, shedding lowest class
//!   first ([`ServeError::Overloaded`]); per-shard circuit breakers keep
//!   batches away from flapping shards; and slow batches hedge to a second
//!   shard, first bit-exact reply winning.
//! * **Whole-model pipeline serving** ([`crate::pipeline`]) — a
//!   [`CompiledModel`](npcgra_sim::CompiledModel) partitioned into
//!   cycle-balanced stages runs as a [`Pipeline`] of stage-level fault
//!   domains: inter-stage activations carry forwarded checksums, verified
//!   boundaries are checkpointed per job, and a failed stage heals by
//!   replaying only from the last checkpoint — failing over to spare
//!   shards under the restart-budget ladder, and shedding whole-model
//!   traffic ([`ServeError::Degraded`]) before single-layer traffic.
//!   Pipelines ride the same overload/liveness umbrella
//!   ([`PipelineConfig`]): wall deadlines split across stages
//!   proportionally to predicted work (doomed jobs shed at stage
//!   boundaries), per-stage calibrated watchdogs cancel wedged stage runs,
//!   and stage-0 admission runs priority WFQ under a CoDel-driven
//!   pipeline brownout ladder.
//!
//! Everything is std threads and channels — no async runtime.
//!
//! ```
//! use npcgra_nn::{ConvLayer, Tensor};
//! use npcgra_serve::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default().with_workers(2));
//! let layer = ConvLayer::depthwise("dw", 3, 16, 16, 3, 1, 1);
//! let weights = layer.random_weights(1);
//! let model = server.register("demo", layer, weights).unwrap();
//! let ticket = server.submit(model, Tensor::random(3, 16, 16, 2)).unwrap();
//! let response = ticket.wait().unwrap();
//! assert_eq!(response.output.channels(), 3);
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod batch;
pub mod cache;
pub mod config;
pub mod error;
pub mod journal;
pub mod overload;
pub mod pipeline;
pub(crate) mod retry;
pub mod server;
pub mod stats;
pub(crate) mod supervisor;
pub(crate) mod watchdog;

pub use cache::ProgramCache;
pub use config::{ChaosConfig, CrossCheckCorruption, OverloadConfig, PipelineConfig, ServeConfig, StageFault};
pub use error::{ForRequest, RetryClass, ServeError};
pub use journal::{JournalConfig, RecoveryReport};
pub use npcgra_sim::{BackendTier, IntegrityMode};
pub use overload::{BreakerState, BrownoutLevel, Priority};
pub use pipeline::{Pipeline, PipelineStatsSnapshot};
pub use server::{ModelId, Response, Server, Ticket};
pub use stats::{StatsSnapshot, TenantHandle, TenantSnapshot, WorkerExit};
