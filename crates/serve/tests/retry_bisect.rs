//! Bisection edge cases for the batch retry policy.
//!
//! The poison sentinel ([`ChaosConfig::poison_value`]) fails any batch that
//! contains it, so the shapes below drive `retry::process`'s bisection
//! through its corners: a batch of one (no bisection possible), every
//! member poisoned (nothing to save), odd sizes (uneven halves), and
//! poison at both ends (both halves keep failing). The invariant under
//! test never changes: every clean request completes **bit-exactly** and
//! every poisoned request is quarantined — regardless of how the batch
//! splits.

use std::collections::HashSet;
use std::time::Duration;

use npcgra_arch::CgraSpec;
use npcgra_nn::{reference, ConvLayer, Tensor, Word};
use npcgra_serve::{ChaosConfig, ServeConfig, ServeError, Server, WorkerExit};
use proptest::prelude::*;

const POISON: Word = 0x7A5A;

/// Serve `n` requests, poisoning the ones at `poison_idx`; assert every
/// clean reply is bit-exact and every poisoned one is quarantined, then
/// return the final stats snapshot.
fn run_case(n: usize, poison_idx: &[usize]) -> npcgra_serve::StatsSnapshot {
    let poisoned: HashSet<usize> = poison_idx.iter().copied().collect();
    let chaos = ChaosConfig {
        poison_value: Some(POISON),
        ..ChaosConfig::default()
    };
    let config = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
        .with_workers(1)
        .with_max_batch(n.max(1))
        .with_max_linger(Duration::from_millis(40))
        .with_max_retries(1)
        .with_chaos(chaos);
    let server = Server::start(config);
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let w = layer.random_weights(1);
    let id = server.register("m", layer.clone(), w.clone()).unwrap();

    let mut tickets = Vec::new();
    let mut goldens = Vec::new();
    for i in 0..n {
        let mut ifm = Tensor::random(2, 8, 8, i as u64 + 100);
        if poisoned.contains(&i) {
            ifm.set(0, 0, 0, POISON);
            goldens.push(None);
        } else {
            if ifm.get(0, 0, 0) == POISON {
                ifm.set(0, 0, 0, 0);
            }
            goldens.push(Some(reference::run_layer(&layer, &ifm, &w).unwrap()));
        }
        tickets.push(server.submit(id, ifm).unwrap());
    }

    let mut quarantined = 0usize;
    for (i, (ticket, golden)) in tickets.into_iter().zip(goldens).enumerate() {
        match (ticket.wait(), golden) {
            (Ok(resp), Some(g)) => assert_eq!(resp.output, g, "clean request {i} must stay bit-exact"),
            (Err(ServeError::Quarantined { .. }), None) => quarantined += 1,
            (outcome, golden) => {
                panic!("request {i}: unexpected outcome {outcome:?} (clean: {})", golden.is_some())
            }
        }
    }
    assert_eq!(quarantined, poisoned.len(), "exactly the poisoned requests are quarantined");
    let stats = server.shutdown();
    assert_eq!(stats.quarantined, poisoned.len() as u64);
    assert_eq!(stats.completed, (n - poisoned.len()) as u64);
    assert_eq!(stats.worker_exits, vec![WorkerExit::Clean]);
    stats
}

#[test]
fn a_single_poisoned_request_is_quarantined_without_bisection() {
    let stats = run_case(1, &[0]);
    assert_eq!(stats.failed, 1);
}

#[test]
fn an_all_poison_batch_quarantines_every_member() {
    let stats = run_case(4, &[0, 1, 2, 3]);
    assert_eq!(stats.failed, 4);
    assert!(
        stats.retries >= 3,
        "isolating four poisons takes at least the bisection rounds"
    );
}

#[test]
fn an_odd_batch_with_a_middle_poison_saves_the_rest() {
    let stats = run_case(5, &[2]);
    assert_eq!(stats.failed, 1);
}

#[test]
fn poison_at_both_ends_is_isolated_from_the_clean_middle() {
    let stats = run_case(4, &[0, 3]);
    assert_eq!(stats.failed, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any batch size and any poison mask: clean requests complete
    /// bit-exactly, poisoned ones are quarantined, nothing hangs.
    #[test]
    fn any_poison_mask_resolves_every_request(n in 1usize..7, mask in 0u64..64) {
        let poison_idx: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        run_case(n, &poison_idx);
    }
}
