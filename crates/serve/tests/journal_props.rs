//! Property tests for the admission-journal codec: round-trip fidelity
//! for arbitrary record sequences, torn-tail recovery that stops at the
//! last whole record, and single-bit-flip detection that quarantines only
//! the flipped record's suffix — never a silently different record.

use npcgra_serve::journal::{encode_record, replay_bytes, JournalError, Record, TailState, JOURNAL_MAGIC};
use proptest::prelude::*;

/// Arbitrary admit records (shapes kept small; the word vector is derived
/// from the shape, as the writer guarantees).
fn arb_admit() -> impl Strategy<Value = Record> {
    (
        (any::<u64>(), any::<u64>(), any::<u32>(), 0u8..3, any::<u32>()),
        (1u16..4, 1u16..5, 1u16..5),
        any::<i16>(),
    )
        .prop_map(|((request_id, idem_key, model, class, deadline_ms), (c, h, w), seed)| {
            let n = c as usize * h as usize * w as usize;
            Record::Admit {
                request_id,
                idem_key,
                model,
                class,
                deadline_ms,
                shape: (c, h, w),
                words: (0..n).map(|i| seed.wrapping_add(i as i16)).collect(),
            }
        })
}

/// Arbitrary ack records, with and without a remembered outcome.
fn arb_ack() -> impl Strategy<Value = Record> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        (1u16..4, 1u16..4, 1u16..4),
        any::<i16>(),
    )
        .prop_map(|(request_id, idem_key, with_outcome, (c, h, w), seed)| Record::Ack {
            request_id,
            idem_key,
            outcome: with_outcome.then(|| {
                let n = c as usize * h as usize * w as usize;
                ((c, h, w), (0..n).map(|i| seed.wrapping_sub(i as i16)).collect())
            }),
        })
}

fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(prop_oneof![arb_admit(), arb_ack()], 0..8)
}

/// A full journal image: magic header plus each record's framed encoding,
/// with the frame boundaries returned for the truncation properties.
fn journal_image(records: &[Record]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = JOURNAL_MAGIC.to_vec();
    let mut boundaries = vec![bytes.len()];
    for r in records {
        bytes.extend_from_slice(&encode_record(r));
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every record sequence round-trips bit-exactly, however the records
    /// were chunked into append batches (framing is per record, so batch
    /// boundaries are invisible to replay — asserted by replaying the one
    /// concatenated image any batching would produce).
    #[test]
    fn roundtrip_any_record_sequence(records in arb_records()) {
        let (bytes, _) = journal_image(&records);
        let outcome = replay_bytes(&bytes).expect("well-formed image");
        prop_assert_eq!(outcome.records, records);
        prop_assert_eq!(outcome.tail, TailState::Clean);
    }

    /// Truncating the file at any byte (a crash mid-write) recovers
    /// exactly the records whose frames fit entirely before the cut — the
    /// longest whole-record prefix — and reports the ragged remainder as
    /// a torn tail, never an error.
    #[test]
    fn truncated_tail_stops_at_last_whole_record(records in arb_records(), cut in any::<usize>()) {
        let (bytes, boundaries) = journal_image(&records);
        let keep = JOURNAL_MAGIC.len() + cut % (bytes.len() - JOURNAL_MAGIC.len() + 1);
        let outcome = replay_bytes(&bytes[..keep]).expect("truncation is tolerated");
        let whole = boundaries.iter().filter(|&&b| b <= keep).count() - 1;
        prop_assert_eq!(outcome.records.len(), whole, "must recover the longest whole-record prefix");
        prop_assert_eq!(&outcome.records[..], &records[..whole]);
        let at_boundary = boundaries.contains(&keep);
        prop_assert_eq!(
            outcome.tail == TailState::Clean,
            at_boundary,
            "tail is clean iff the cut lands on a record boundary"
        );
    }

    /// Any single bit flip past the magic is detected: replay still
    /// succeeds, recovers a bit-exact prefix of the original records (at
    /// most everything before the flipped frame), and quarantines or
    /// tears the rest — it never yields a record sequence that diverges
    /// from a prefix of what was written. A flip inside the magic is the
    /// one unrecoverable case, surfaced as [`JournalError::BadMagic`].
    #[test]
    fn bit_flip_quarantines_only_the_suffix(records in arb_records(), bit in any::<usize>()) {
        let (mut bytes, boundaries) = journal_image(&records);
        let target = bit % (bytes.len() * 8);
        bytes[target / 8] ^= 1 << (target % 8);
        if target / 8 < JOURNAL_MAGIC.len() {
            prop_assert!(matches!(replay_bytes(&bytes), Err(JournalError::BadMagic)));
            return Ok(());
        }
        let outcome = replay_bytes(&bytes).expect("a flipped body never errors the replay");
        // The flipped frame and everything after it are quarantined; the
        // frames before it must survive bit-exact.
        let flipped_frame = boundaries.iter().filter(|&&b| b <= target / 8).count() - 1;
        prop_assert!(outcome.records.len() <= records.len());
        prop_assert!(
            outcome.records.len() >= flipped_frame.min(records.len()),
            "a flip in frame {} lost earlier records ({} recovered)",
            flipped_frame,
            outcome.records.len()
        );
        prop_assert_eq!(
            &outcome.records[..],
            &records[..outcome.records.len()],
            "recovered records must be a bit-exact prefix"
        );
        if outcome.records.len() < records.len() {
            prop_assert!(outcome.tail != TailState::Clean, "lost records must be accounted as torn or corrupt");
        }
    }
}

/// Deterministic spot check riding alongside the properties: a checksum
/// flip in the *last* record quarantines exactly that record.
#[test]
fn checksum_flip_in_last_record_quarantines_it_alone() {
    let records = vec![
        Record::Ack {
            request_id: 1,
            idem_key: 9,
            outcome: None,
        },
        Record::Admit {
            request_id: 2,
            idem_key: 10,
            model: 0,
            class: 0,
            deadline_ms: 0,
            shape: (1, 1, 2),
            words: vec![3, -4],
        },
    ];
    let (mut bytes, _) = journal_image(&records);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    let outcome = replay_bytes(&bytes).unwrap();
    assert_eq!(outcome.records, records[..1]);
    assert!(matches!(outcome.tail, TailState::Corrupt { bytes } if bytes > 0));
}
