//! Property tests for the weighted-fair scheduler's fairness guarantees.
//!
//! The starvation-freedom bound under test: with stride scheduling, while
//! a class `c` stays backlogged, any other class `j` can be served at most
//! `1 + ceil(w_j / w_c)` times (plus integer-division slack) before `c`
//! runs again — so `c`'s inter-service gap is bounded by a function of the
//! weights alone, never by load or by how long the others' queues are.

use npcgra_serve::overload::{Priority, WfqScheduler, CLASSES};
use proptest::prelude::*;

/// Upper bound on consecutive picks that exclude `c` while every class is
/// backlogged: each other class `j` fits at most `1 + ceil(w_j / w_c)`
/// services into `c`'s stride, plus one per class of integer-division
/// slack.
fn gap_bound(weights: [u64; CLASSES], c: usize) -> usize {
    let wc = weights[c].max(1);
    let mut bound = 1; // the pick that serves `c` itself
    for (j, &w) in weights.iter().enumerate() {
        if j != c {
            let wj = w.max(1);
            bound += 2 + wj.div_ceil(wc) as usize;
        }
    }
    bound
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All classes permanently backlogged: no class's inter-service gap
    /// ever exceeds the weight-derived bound, whatever the weights.
    #[test]
    fn no_backlogged_class_starves(
        weights in (1u64..65, 1u64..65, 1u64..65).prop_map(|(a, b, c)| [a, b, c]),
        picks in 64usize..513,
    ) {
        let mut s = WfqScheduler::new(weights);
        let mut since_served = [0usize; CLASSES];
        for _ in 0..picks {
            let c = s.pick([true; CLASSES]).expect("backlog everywhere");
            s.charge(c, 1);
            for (i, gap) in since_served.iter_mut().enumerate() {
                if i == c.index() {
                    *gap = 0;
                } else {
                    *gap += 1;
                    prop_assert!(
                        *gap <= gap_bound(weights, i),
                        "class {i} starved: gap {} > bound {} with weights {weights:?}",
                        *gap,
                        gap_bound(weights, i)
                    );
                }
            }
        }
    }

    /// Service shares converge to the weight ratios: over `n` picks each
    /// class receives its proportional share within a per-class slack of
    /// one full gap bound.
    #[test]
    fn service_shares_track_weights(
        weights in (1u64..33, 1u64..33, 1u64..33).prop_map(|(a, b, c)| [a, b, c]),
        picks in 256usize..1025,
    ) {
        let mut s = WfqScheduler::new(weights);
        let mut served = [0usize; CLASSES];
        for _ in 0..picks {
            let c = s.pick([true; CLASSES]).expect("backlog everywhere");
            served[c.index()] += 1;
            s.charge(c, 1);
        }
        let total_w: u64 = weights.iter().sum();
        for i in 0..CLASSES {
            let expected = picks as u64 * weights[i] / total_w;
            let slack = gap_bound(weights, i) as u64 + 1;
            prop_assert!(
                (served[i] as u64).abs_diff(expected) <= slack,
                "class {i}: served {} vs expected {expected} ± {slack} with weights {weights:?}",
                served[i]
            );
        }
    }

    /// The scheduler only ever picks a backlogged class, and picks `None`
    /// exactly when nothing is backlogged — under arbitrary backlog
    /// fluctuation with `activate` driven on every idle→backlogged edge.
    #[test]
    fn picks_respect_the_backlog_mask(
        weights in (1u64..65, 1u64..65, 1u64..65).prop_map(|(a, b, c)| [a, b, c]),
        masks in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(a, b, c)| [a, b, c]), 1..256),
    ) {
        let mut s = WfqScheduler::new(weights);
        let mut prev = [false; CLASSES];
        for mask in masks {
            for i in 0..CLASSES {
                if mask[i] && !prev[i] {
                    s.activate(Priority::from_index(i), prev);
                }
            }
            match s.pick(mask) {
                Some(c) => {
                    prop_assert!(mask[c.index()], "picked idle class {c:?} under mask {mask:?}");
                    s.charge(c, 1);
                }
                None => prop_assert_eq!(mask, [false; CLASSES]),
            }
            prev = mask;
        }
    }

    /// A class that sat idle while another was served gets no banked
    /// credit: once re-activated it cannot monopolize the scheduler — the
    /// previously-active class is served again within its gap bound.
    #[test]
    fn idle_classes_bank_no_credit(
        weights in (1u64..65, 1u64..65, 1u64..65).prop_map(|(a, b, c)| [a, b, c]),
        solo_runs in 1usize..513,
    ) {
        let mut s = WfqScheduler::new(weights);
        s.activate(Priority::Interactive, [false; CLASSES]);
        for _ in 0..solo_runs {
            prop_assert_eq!(s.pick([true, false, false]), Some(Priority::Interactive));
            s.charge(Priority::Interactive, 1);
        }
        // BestEffort wakes up after a long idle stretch.
        s.activate(Priority::BestEffort, [true, false, false]);
        let bound = gap_bound(weights, 0);
        let mut interactive_served = false;
        for _ in 0..bound {
            let c = s.pick([true, false, true]).expect("two classes backlogged");
            s.charge(c, 1);
            if c == Priority::Interactive {
                interactive_served = true;
                break;
            }
        }
        prop_assert!(
            interactive_served,
            "re-activated idle class locked out the active one past its bound {bound} (weights {weights:?})"
        );
    }
}
