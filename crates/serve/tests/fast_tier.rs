//! End-to-end serving on the functional fast tier.
//!
//! The fast tier must be invisible to callers except in speed: every reply
//! bit-exact against the golden reference, every charged cycle equal to
//! the closed-form model (the periodic cross-check replays a served batch
//! on a scratch cycle-accurate machine and quarantines the shard on ANY
//! divergence), and the whole ABFT/retry ladder still catching injected
//! corruption. These tests drive a real server through all three claims.

use std::time::Duration;

use npcgra_arch::CgraSpec;
use npcgra_nn::{reference, ConvLayer, Tensor};
use npcgra_serve::{BackendTier, ChaosConfig, CrossCheckCorruption, ServeConfig, Server, WorkerExit};

fn fast_config(spec: &CgraSpec) -> ServeConfig {
    ServeConfig::for_spec(spec)
        .with_workers(2)
        .with_max_linger(Duration::from_millis(5))
        .with_backend_tier(BackendTier::Fast)
}

#[test]
fn fast_tier_serves_bit_exact_and_cross_checks_stay_clean() {
    let spec = CgraSpec::np_cgra(4, 4);
    // Cross-check every batch: a healthy fast tier must survive the
    // harshest replay cadence with zero divergences.
    let server = Server::start(fast_config(&spec).with_cross_check_interval(1));
    let dw = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let pw = ConvLayer::pointwise("pw", 3, 4, 6, 6);
    let dw_w = dw.random_weights(11);
    let pw_w = pw.random_weights(12);
    let dw_id = server.register("dw", dw.clone(), dw_w.clone()).unwrap();
    let pw_id = server.register("pw", pw.clone(), pw_w.clone()).unwrap();

    let mut cases = Vec::new();
    for i in 0..12u64 {
        let dw_ifm = Tensor::random(2, 8, 8, 100 + i);
        let pw_ifm = Tensor::random(3, 6, 6, 200 + i);
        let dw_gold = reference::run_layer(&dw, &dw_ifm, &dw_w).unwrap();
        let pw_gold = reference::run_layer(&pw, &pw_ifm, &pw_w).unwrap();
        cases.push((server.submit(dw_id, dw_ifm).unwrap(), dw_gold));
        cases.push((server.submit(pw_id, pw_ifm).unwrap(), pw_gold));
    }
    for (ticket, golden) in cases {
        let response = ticket.wait().expect("fast tier serves every request");
        assert_eq!(response.output, golden, "fast-tier reply diverged from the reference");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 24);
    assert!(stats.cross_checks > 0, "fast tier never ran its golden cross-check");
    assert_eq!(stats.cross_check_failed, 0, "healthy fast tier diverged from the cycle tier");
    assert!(
        stats.cycles_charged[BackendTier::Fast.index()] > 0,
        "fast tier charged no cycles"
    );
    assert!(stats.healthy_workers() == 2, "a healthy shard was quarantined");
}

#[test]
fn cycle_tier_default_never_cross_checks() {
    // An untouched config stays on the cycle-accurate tier: no fast cycles
    // charged, and the golden cross-check (a fast-tier-only honesty
    // mechanism) never runs.
    let spec = CgraSpec::np_cgra(4, 4);
    let server = Server::start(ServeConfig::for_spec(&spec).with_workers(1));
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let w = layer.random_weights(3);
    let id = server.register("m", layer.clone(), w.clone()).unwrap();
    let ifm = Tensor::random(2, 8, 8, 42);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    let response = server.submit(id, ifm).unwrap().wait().unwrap();
    assert_eq!(response.output, golden);
    let stats = server.shutdown();
    assert_eq!(stats.cross_checks, 0);
    assert_eq!(stats.cycles_charged[BackendTier::Fast.index()], 0);
    assert!(stats.cycles_charged[BackendTier::CycleAccurate.index()] > 0);
}

#[test]
fn fast_tier_abft_catches_and_heals_injected_flips() {
    // Bernoulli bit-flip chaos on the fast tier: every structural fault
    // lands in an output entry, so ABFT must detect each one and the
    // retry ladder (independent fault draws per attempt) must heal it.
    let spec = CgraSpec::np_cgra(4, 4);
    let chaos = ChaosConfig {
        fault_seed: Some(0xFA57),
        fault_rate: 3e-3,
        ..ChaosConfig::default()
    };
    let server = Server::start(
        fast_config(&spec)
            .with_max_retries(6)
            .with_cross_check_interval(4)
            .with_chaos(chaos),
    );
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let w = layer.random_weights(7);
    let id = server.register("m", layer.clone(), w.clone()).unwrap();
    let n = 32u64;
    let mut cases = Vec::new();
    for i in 0..n {
        let ifm = Tensor::random(2, 8, 8, 1000 + i);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        cases.push((server.submit(id, ifm).unwrap(), golden));
    }
    let mut completed = 0u64;
    for (ticket, golden) in cases {
        if let Ok(response) = ticket.wait() {
            assert_eq!(response.output, golden, "a corrupted reply escaped ABFT");
            completed += 1;
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, completed);
    assert!(completed >= n - 2, "chaos overwhelmed the retry ladder: {completed}/{n}");
    assert!(
        stats.integrity_failed > 0,
        "chaos injected no detectable faults — raise the rate"
    );
    assert!(stats.integrity_recovered > 0, "detected corruption was never healed");
    assert_eq!(
        stats.cross_check_failed, 0,
        "clean-run sampling let a faulty batch into the cross-check"
    );
}

/// Drive a fast-tier server whose captured cross-check samples are
/// chaos-corrupted, and assert the honesty mechanism fires: replies stay
/// bit-exact (the corruption touches only the audit record), the replay
/// diverges, and the shard is quarantined with no second strike.
fn divergence_drill(corruption: CrossCheckCorruption) {
    let spec = CgraSpec::np_cgra(4, 4);
    let chaos = ChaosConfig {
        cross_check_corrupt: Some(corruption),
        ..ChaosConfig::default()
    };
    let server = Server::start(fast_config(&spec).with_cross_check_interval(1).with_chaos(chaos));
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let w = layer.random_weights(21);
    let id = server.register("m", layer.clone(), w.clone()).unwrap();
    // Sequential submits: each served batch feeds the per-batch
    // cross-check, which must catch the lie and kill the serving shard.
    // Once every shard is quarantined, submits shed — stop there.
    let mut served = 0u64;
    for i in 0..8u64 {
        let ifm = Tensor::random(2, 8, 8, 300 + i);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let Ok(ticket) = server.submit(id, ifm) else { break };
        match ticket.wait() {
            Ok(response) => {
                assert_eq!(response.output, golden, "cross-check corruption leaked into a reply");
                served += 1;
            }
            // The quarantine can race the queue: a request caught on a
            // dying shard sheds instead of serving.
            Err(_) => break,
        }
    }
    let stats = server.shutdown();
    assert!(served >= 1, "no request was ever served");
    assert!(
        stats.cross_check_failed >= 1,
        "the cross-check never caught the divergence: {stats:?}"
    );
    assert!(stats.healthy_workers() < 2, "a shard caught lying was left in rotation");
    assert!(
        stats.worker_exits.contains(&WorkerExit::Unhealthy),
        "the diverging shard did not exit unhealthy: {:?}",
        stats.worker_exits
    );
}

#[test]
fn cross_check_quarantines_a_shard_with_diverging_outputs() {
    divergence_drill(CrossCheckCorruption::OutputBit);
}

#[test]
fn cross_check_quarantines_a_shard_with_diverging_cycle_charges() {
    divergence_drill(CrossCheckCorruption::ChargedCycles);
}
