//! Whole-model pipeline serving: the failover acceptance gate.
//!
//! A real MobileNetV1 depthwise-separable chain (α = 0.25, 32×32) is
//! compiled into balanced stages and served through the [`Pipeline`] while
//! chaos injects one of each stage-fault class at a distinct soak point:
//! a stage **kill** (panic), a stage **wedge** (temporal fault preempted
//! by the cycle budget), and a **handoff corruption** (caught by the
//! forwarded checksum). The gate:
//!
//! * 100% of in-flight inferences complete **bit-exact** against the
//!   single-machine golden reference — no fault is allowed to surface to
//!   a caller.
//! * Healing replays **only from the last checkpoint**: the per-stage
//!   replay counters identify exactly which stages re-ran.
//! * Kill and wedge exhaust a zero restart budget and **fail over** to the
//!   stage's spare shard; the corruption heals by replay alone.
//! * A zero-fault control run shows zero failovers, zero replays and zero
//!   checkpoint restores — the machinery is inert when nothing breaks.

use std::time::Duration;

use npcgra_nn::{models, reference, ConvLayer, Tensor};
use npcgra_serve::{Pipeline, Priority, ServeConfig, ServeError, StageFault, Ticket};
use npcgra_sim::CompiledModel;

const STAGES: usize = 4;

fn mobilenet_chain() -> Vec<ConvLayer> {
    models::mobilenet_v1(0.25, 32).dsc_layers().cloned().collect()
}

fn pipeline_config(model: &CompiledModel) -> ServeConfig {
    ServeConfig::for_spec(model.spec())
        .with_pipeline_stages(STAGES)
        .with_restart_budget(0)
        .with_stage_spares(1)
        .with_checkpoint_every(1)
        .with_cycle_budget(8.0)
        .with_max_retries(4)
        .with_restart_backoff(Duration::ZERO)
}

fn compile(layers: &[ConvLayer]) -> (CompiledModel, Vec<Tensor>) {
    let spec = npcgra_arch::CgraSpec::np_cgra(4, 4);
    let model = CompiledModel::compile("mobilenet_v1_0.25_32", layers, &spec, STAGES).unwrap();
    let weights = layers
        .iter()
        .enumerate()
        .map(|(i, l)| l.random_weights(0xC0FFEE + i as u64))
        .collect();
    (model, weights)
}

fn golden(layers: &[ConvLayer], weights: &[Tensor], input: &Tensor) -> Tensor {
    layers
        .iter()
        .zip(weights)
        .fold(input.clone(), |act, (l, w)| reference::run_layer(l, &act, w).unwrap())
}

#[test]
fn mobilenet_pipeline_heals_kill_wedge_and_corruption_bit_exact() {
    let layers = mobilenet_chain();
    let (model, weights) = compile(&layers);
    assert_eq!(model.num_stages(), STAGES);
    let mut cfg = pipeline_config(&model);
    // One fault of each class, at distinct soak points in distinct stages.
    cfg.chaos.stage_kill = Some(StageFault { stage: 1, job: 2 });
    cfg.chaos.stage_wedge = Some(StageFault { stage: 2, job: 5 });
    cfg.chaos.stage_corrupt = Some(StageFault { stage: 3, job: 8 });

    let n = 10u64;
    let input_shape = model.input_shape();
    let inputs: Vec<Tensor> = (0..n)
        .map(|i| Tensor::random(input_shape.0, input_shape.1, input_shape.2, 0x5eed + i))
        .collect();
    let goldens: Vec<Tensor> = inputs.iter().map(|i| golden(&layers, &weights, i)).collect();

    let pipe = Pipeline::start(cfg, model, weights).unwrap();
    let tickets: Vec<Ticket> = inputs.into_iter().map(|i| pipe.submit(i).unwrap()).collect();
    for (i, (ticket, gold)) in tickets.into_iter().zip(&goldens).enumerate() {
        let response = ticket.wait().unwrap_or_else(|e| panic!("inference {i} failed: {e}"));
        assert_eq!(&response.output, gold, "inference {i} diverged from the golden run");
    }

    let stats = pipe.shutdown();
    assert_eq!(stats.completed, n, "every in-flight inference must complete");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.shed, 0);

    // Each fault class fired exactly once and was caught as its own type.
    assert_eq!(stats.panics_caught, 1, "the stage kill was not caught as a panic");
    assert_eq!(stats.preemptions, 1, "the wedge was not preempted by the cycle budget");
    assert_eq!(
        stats.handoff_corruptions, 1,
        "the checksum never caught the corrupted handoff"
    );

    // Healing replayed only from the last checkpoint. With every boundary
    // checkpointed: the kill at stage 1 and the wedge at stage 2 each
    // replay just their own stage; the corruption — caught at stage 3
    // *entry*, before boundary 3 is checkpointed — rolls back to boundary
    // 2 and replays stages 2 and 3. Stage 0 never replays.
    assert_eq!(
        stats.stage_replays,
        vec![0, 1, 2, 1],
        "healing replayed more (or less) than the checkpoints dictate"
    );
    assert_eq!(stats.checkpoint_restores, 3);

    // Kill and wedge exhaust the zero restart budget and fail over to the
    // stage spare; corruption heals by replay with no failover.
    assert_eq!(stats.stage_failovers, vec![0, 1, 1, 0]);
    assert_eq!(stats.total_failovers(), 2);
    assert_eq!(
        stats.stage_restarts,
        vec![0, 0, 0, 0],
        "budget 0 leaves no room for in-place restarts"
    );
}

#[test]
fn zero_fault_control_run_never_touches_the_healing_machinery() {
    let layers = mobilenet_chain();
    let (model, weights) = compile(&layers);
    let cfg = pipeline_config(&model);

    let n = 4u64;
    let input_shape = model.input_shape();
    let inputs: Vec<Tensor> = (0..n)
        .map(|i| Tensor::random(input_shape.0, input_shape.1, input_shape.2, 0xC0 + i))
        .collect();
    let goldens: Vec<Tensor> = inputs.iter().map(|i| golden(&layers, &weights, i)).collect();

    let pipe = Pipeline::start(cfg, model, weights).unwrap();
    let tickets: Vec<Ticket> = inputs.into_iter().map(|i| pipe.submit(i).unwrap()).collect();
    for (ticket, gold) in tickets.into_iter().zip(&goldens) {
        assert_eq!(&ticket.wait().unwrap().output, gold);
    }
    let stats = pipe.shutdown();
    assert_eq!(stats.completed, n);
    assert_eq!(stats.total_failovers(), 0, "control run failed over");
    assert_eq!(stats.total_replays(), 0, "control run replayed a stage");
    assert_eq!(stats.checkpoint_restores, 0);
    assert_eq!(stats.handoff_corruptions, 0);
    assert_eq!(stats.preemptions, 0);
    assert_eq!(stats.panics_caught, 0);
    // Checkpoints are still *stored* (that is the premium paid for fast
    // healing): one per configured boundary per inference.
    assert!(stats.checkpoints_stored >= n);
    assert!(stats.handoff_cycles > 0, "inter-stage handoffs must charge DMA cycles");
    // The overload/liveness machinery is equally inert by default.
    assert_eq!(stats.rejected_deadline, 0);
    assert_eq!(stats.deadline_sheds, 0);
    assert_eq!(stats.watchdog_preemptions, 0);
    assert_eq!(stats.brownout_escalations, 0);
    assert_eq!(stats.overload_sheds, vec![0, 0, 0]);
}

/// Satellite regression: a zero (already-expired) deadline is rejected at
/// submit with the same typed error the single-layer [`Server`] uses —
/// before the job ever queues.
#[test]
fn zero_deadline_is_rejected_at_submit_like_the_server() {
    let layers = mobilenet_chain();
    let (model, weights) = compile(&layers);
    let cfg = pipeline_config(&model);
    let shape = model.input_shape();
    let pipe = Pipeline::start(cfg, model, weights).unwrap();

    let input = Tensor::random(shape.0, shape.1, shape.2, 0xDEAD);
    let err = pipe.submit_with_deadline(input, Some(Duration::ZERO)).unwrap_err();
    assert!(matches!(err, ServeError::DeadlineExceeded), "got {err}");

    let stats = pipe.shutdown();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.submitted, 0, "a rejected deadline must never queue");
    assert_eq!(stats.deadline_sheds, 0, "rejected at submit, not at a boundary");
}

/// Tentpole: a job whose deadline is already unmeetable is shed at a stage
/// boundary ([`ServeError::DeadlineExceeded`]) instead of burning stages,
/// while jobs without deadlines keep completing bit-exact alongside it.
#[test]
fn expired_deadline_sheds_at_the_stage_boundary() {
    let layers = mobilenet_chain();
    let (model, weights) = compile(&layers);
    let cfg = pipeline_config(&model);
    let shape = model.input_shape();
    let golden_weights = weights.clone();
    let pipe = Pipeline::start(cfg, model, weights).unwrap();

    // 1 ns is nonzero (admitted) but long expired by the time stage 0
    // dequeues it.
    let doomed = pipe
        .submit_with_deadline(Tensor::random(shape.0, shape.1, shape.2, 1), Some(Duration::from_nanos(1)))
        .unwrap();
    let healthy_input = Tensor::random(shape.0, shape.1, shape.2, 2);
    let healthy_golden = golden(&layers, &golden_weights, &healthy_input);
    let healthy = pipe.submit(healthy_input).unwrap();

    let err = doomed.wait().unwrap_err();
    assert!(matches!(err, ServeError::DeadlineExceeded), "got {err}");
    assert_eq!(healthy.wait().unwrap().output, healthy_golden);

    let stats = pipe.shutdown();
    assert_eq!(stats.deadline_sheds, 1);
    assert_eq!(stats.shed, 1, "a deadline shed is a shed, not a failure");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

/// Satellite: the server's tombstone accounting, ported — a reply whose
/// ticket was dropped is counted as a late reply instead of leaking.
#[test]
fn dropped_tickets_surface_as_late_replies() {
    let layers = mobilenet_chain();
    let (model, weights) = compile(&layers);
    let cfg = pipeline_config(&model);
    let shape = model.input_shape();
    let pipe = Pipeline::start(cfg, model, weights).unwrap();

    let n = 3u64;
    for i in 0..n {
        // Drop the ticket immediately: the caller walked away.
        let _ = pipe.submit(Tensor::random(shape.0, shape.1, shape.2, 0xAB + i)).unwrap();
    }
    let stats = pipe.shutdown();
    assert_eq!(stats.completed, n, "abandoned work still runs to completion");
    assert_eq!(stats.late_replies, n, "every abandoned reply is accounted");
}

/// Tentpole: with `watchdog_slack` armed and *no* cycle budget, a wedged
/// stage run is cancelled on the wall clock by the stage watchdog, walks
/// the failover ladder, and the inference still completes bit-exact.
#[test]
fn stage_watchdog_preempts_a_wedged_stage_and_heals() {
    let layers = vec![ConvLayer::pointwise("a", 3, 3, 8, 8), ConvLayer::pointwise("b", 3, 3, 8, 8)];
    let spec = npcgra_arch::CgraSpec::np_cgra(4, 4);
    let model = CompiledModel::compile("wedgy", &layers, &spec, 2).unwrap();
    assert_eq!(model.num_stages(), 2);
    let weights: Vec<Tensor> = layers
        .iter()
        .enumerate()
        .map(|(i, l)| l.random_weights(50 + i as u64))
        .collect();
    let mut cfg = ServeConfig::for_spec(model.spec())
        .with_pipeline_stages(2)
        .with_restart_budget(0)
        .with_stage_spares(1)
        .with_checkpoint_every(1)
        .with_restart_backoff(Duration::ZERO)
        .with_pipeline_watchdog_slack(4.0);
    assert_eq!(cfg.cycle_budget, 0.0, "the wall watchdog must be the only preemption path");
    // Jobs 0..=3 calibrate each stage's ns-per-cycle estimate (4 healthy
    // passes); job 4 wedges stage 1 with the watchdog armed.
    cfg.chaos.stage_wedge = Some(StageFault { stage: 1, job: 4 });

    let pipe = Pipeline::start(cfg, model, weights.clone()).unwrap();
    for i in 0..5u64 {
        let input = Tensor::random(3, 8, 8, 400 + i);
        let gold = golden(&layers, &weights, &input);
        let out = pipe.submit(input).unwrap().wait().unwrap().output;
        assert_eq!(out, gold, "inference {i} diverged");
    }
    let stats = pipe.shutdown();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.watchdog_preemptions, 1, "the wedge must be caught on the wall clock");
    assert_eq!(stats.preemptions, 1, "the cancel surfaced as a typed preemption");
    assert_eq!(stats.stage_failovers, vec![0, 1], "budget 0 fails straight over to the spare");
    assert_eq!(stats.stage_replays, vec![0, 1], "healing replayed only the wedged stage");
    assert_eq!(stats.panics_caught, 0);
}

/// Priority admission: mixed-class whole-model traffic all completes under
/// the stage-0 WFQ, and per-class admission is accounted.
#[test]
fn mixed_priority_classes_all_complete_under_wfq() {
    let layers = mobilenet_chain();
    let (model, weights) = compile(&layers);
    let cfg = pipeline_config(&model);
    let shape = model.input_shape();
    let golden_weights = weights.clone();
    let pipe = Pipeline::start(cfg, model, weights).unwrap();

    let classes = [
        Priority::Interactive,
        Priority::Batch,
        Priority::BestEffort,
        Priority::Batch,
        Priority::Interactive,
        Priority::BestEffort,
    ];
    let jobs: Vec<(Ticket, Tensor)> = classes
        .iter()
        .enumerate()
        .map(|(i, &class)| {
            let input = Tensor::random(shape.0, shape.1, shape.2, 0x700 + i as u64);
            let gold = golden(&layers, &golden_weights, &input);
            (pipe.submit_with_priority(input, None, class).unwrap(), gold)
        })
        .collect();
    for (i, (ticket, gold)) in jobs.into_iter().enumerate() {
        assert_eq!(ticket.wait().unwrap().output, gold, "inference {i} diverged");
    }
    let stats = pipe.shutdown();
    assert_eq!(stats.completed, classes.len() as u64);
    assert_eq!(stats.admitted_by_class, vec![2, 2, 2]);
    assert_eq!(stats.overload_sheds, vec![0, 0, 0], "no brownout: nothing sheds");
}
