//! End-to-end crash durability: the admission journal through real
//! servers.
//!
//! These tests exercise the whole recovery protocol — admit records made
//! durable before replies, clean shutdowns that restart with zero replay,
//! hard crashes whose admitted-but-unacknowledged requests re-enqueue on
//! the next start, bit-exact redelivery from the dedup table under client
//! idempotency keys, and the inertness of a journal-less server (the
//! default path writes no file and counts nothing).

use std::path::PathBuf;
use std::time::Duration;

use npcgra_arch::CgraSpec;
use npcgra_nn::{reference, ConvLayer, Tensor};
use npcgra_serve::journal;
use npcgra_serve::{JournalConfig, Priority, ServeConfig, Server};

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("npcgra-jrnl-{}-{}.log", tag, std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("log.compact"));
    path
}

fn config(spec: &CgraSpec, workers: usize) -> ServeConfig {
    ServeConfig::for_spec(spec)
        .with_workers(workers)
        .with_max_linger(Duration::from_millis(2))
}

fn model() -> (ConvLayer, Tensor) {
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let weights = layer.random_weights(7);
    (layer, weights)
}

#[test]
fn clean_shutdown_restarts_with_zero_replay() {
    let spec = CgraSpec::np_cgra(4, 4);
    let jpath = temp_journal("clean");
    let (layer, weights) = model();
    let golden = {
        let (server, report) = Server::start_with_journal(config(&spec, 1), JournalConfig::new(&jpath)).unwrap();
        assert_eq!(report.replayed, 0, "a fresh journal has nothing to replay");
        let id = server.register("dw", layer.clone(), weights.clone()).unwrap();
        assert_eq!(server.replay_recovered().unwrap(), 0);
        let ifm = Tensor::random(2, 8, 8, 42);
        let golden = reference::run_layer(&layer, &ifm, &weights).unwrap();
        let ticket = server.submit_idem(id, ifm, None, Priority::Interactive, 0xA11CE).unwrap();
        assert_eq!(ticket.wait().unwrap().output, golden);
        let stats = server.shutdown();
        assert!(stats.journal_appends >= 2, "admit + ack must be journaled");
        assert_eq!(stats.duplicate_executions, 0);
        golden
    };
    // Second life: the journal was flushed fully-acked at shutdown, so
    // recovery finds nothing to re-enqueue — but the dedup table survives
    // compaction, so a retried key is redelivered without executing.
    let (server, report) = Server::start_with_journal(config(&spec, 1), JournalConfig::new(&jpath)).unwrap();
    assert_eq!(report.replayed, 0, "clean shutdown must restart with zero replay");
    assert_eq!(report.deduped, 1, "the completed key survives as redelivery state");
    let id = server.register("dw", layer, weights).unwrap();
    assert_eq!(server.replay_recovered().unwrap(), 0);
    let retry = server
        .submit_idem(id, Tensor::random(2, 8, 8, 42), None, Priority::Interactive, 0xA11CE)
        .unwrap();
    let redelivered = retry.wait().unwrap();
    assert_eq!(redelivered.output, golden, "redelivery must be bit-exact");
    let stats = server.shutdown();
    assert_eq!(stats.dedup_hits, 1);
    assert_eq!(stats.completed, 0, "redelivery never executes");
    let _ = std::fs::remove_file(&jpath);
}

#[test]
fn hard_crash_replays_admitted_work_exactly_once() {
    let spec = CgraSpec::np_cgra(4, 4);
    let jpath = temp_journal("crash");
    let (layer, weights) = model();
    let keys: Vec<u64> = (1..=4).map(|i| 0xBEE0 + i).collect();
    let inputs: Vec<Tensor> = (0..4).map(|i| Tensor::random(2, 8, 8, 900 + i)).collect();
    {
        // Zero workers: admitted requests sit in the queue forever — the
        // crash lands mid-flight by construction. fsync_every of 1 makes
        // each admit durable the moment its ticket is issued (the batched
        // default trades that window for throughput).
        let jcfg = JournalConfig::new(&jpath).with_fsync_every(1);
        let (server, _) = Server::start_with_journal(config(&spec, 0), jcfg).unwrap();
        let id = server.register("dw", layer.clone(), weights.clone()).unwrap();
        server.replay_recovered().unwrap();
        for (key, ifm) in keys.iter().zip(&inputs) {
            server
                .submit_idem(id, ifm.clone(), None, Priority::Interactive, *key)
                .unwrap();
        }
        let stats = server.hard_crash(0);
        assert_eq!(stats.completed, 0, "nothing may complete before the crash");
    }
    // Recovery: all four admits are unacknowledged, so all four replay and
    // execute — each exactly once, bit-exact.
    let (server, report) = Server::start_with_journal(config(&spec, 2), JournalConfig::new(&jpath)).unwrap();
    assert_eq!(report.replayed, 4, "every admitted request must survive the crash");
    assert_eq!(report.deduped, 0);
    let id = server.register("dw", layer.clone(), weights.clone()).unwrap();
    assert_eq!(server.replay_recovered().unwrap(), 4);
    // The replayed work has no caller-side tickets; wait for the workers
    // to drain it, then audit via a keyed retry of every request.
    for (key, ifm) in keys.iter().zip(&inputs) {
        let golden = reference::run_layer(&layer, ifm, &weights).unwrap();
        let ticket = server
            .submit_idem(id, ifm.clone(), None, Priority::Interactive, *key)
            .unwrap();
        let reply = ticket.wait().unwrap();
        assert_eq!(reply.output, golden, "recovered execution diverged for key {key:#x}");
    }
    let stats = server.shutdown();
    assert_eq!(stats.duplicate_executions, 0, "exactly-once violated");
    assert_eq!(stats.completed, 4, "each key executes exactly once across both lives");
    assert!(stats.dedup_hits >= 1, "keyed retries must hit the dedup table");
    let _ = std::fs::remove_file(&jpath);
}

#[test]
fn torn_tail_crash_loses_only_the_unsynced_suffix() {
    let spec = CgraSpec::np_cgra(4, 4);
    let jpath = temp_journal("torn");
    let (layer, weights) = model();
    {
        // fsync_every of 100 keeps every record buffered; the sever writes
        // 3 torn bytes of the pending buffer, which replay must discard.
        let jcfg = JournalConfig::new(&jpath)
            .with_fsync_every(100)
            .with_fsync_interval(Duration::from_secs(3600));
        let (server, _) = Server::start_with_journal(config(&spec, 0), jcfg).unwrap();
        let id = server.register("dw", layer.clone(), weights.clone()).unwrap();
        server.replay_recovered().unwrap();
        server
            .submit_idem(id, Tensor::random(2, 8, 8, 5), None, Priority::Interactive, 0xF00D)
            .unwrap();
        server.hard_crash(3);
    }
    let bytes = journal::read_file(&jpath).unwrap();
    let outcome = journal::replay_bytes(&bytes).unwrap();
    assert!(
        !matches!(outcome.tail, journal::TailState::Clean),
        "a mid-buffer crash must leave a torn tail"
    );
    let (server, report) = Server::start_with_journal(config(&spec, 1), JournalConfig::new(&jpath)).unwrap();
    assert_eq!(
        report.replayed, 0,
        "the unsynced admit was torn off; replay recovers only whole records"
    );
    assert!(report.torn_tail_bytes > 0, "recovery must report the torn bytes");
    let _ = server.register("dw", layer, weights).unwrap();
    assert_eq!(server.replay_recovered().unwrap(), 0);
    let _ = server.shutdown();
    let _ = std::fs::remove_file(&jpath);
}

#[test]
fn journal_off_is_inert() {
    let spec = CgraSpec::np_cgra(4, 4);
    let (layer, weights) = model();
    let server = Server::start(config(&spec, 1));
    let id = server.register("dw", layer.clone(), weights.clone()).unwrap();
    let ifm = Tensor::random(2, 8, 8, 77);
    let golden = reference::run_layer(&layer, &ifm, &weights).unwrap();
    // An idempotency key without a journal is ignored: the request
    // executes normally and nothing is recorded anywhere.
    let ticket = server
        .submit_idem(id, ifm.clone(), None, Priority::Interactive, 0xD15AB1E)
        .unwrap();
    assert_eq!(ticket.wait().unwrap().output, golden);
    let again = server.submit_idem(id, ifm, None, Priority::Interactive, 0xD15AB1E).unwrap();
    assert_eq!(
        again.wait().unwrap().output,
        golden,
        "no dedup without a journal: it executes again"
    );
    server.flush_journal();
    let stats = server.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.journal_appends, 0);
    assert_eq!(stats.journal_fsyncs, 0);
    assert_eq!(stats.journal_bytes, 0);
    assert_eq!(stats.dedup_hits, 0);
    assert_eq!(stats.duplicate_executions, 0);
    assert!(!stats.to_string().contains("journal:"));
}

#[test]
fn concurrent_duplicate_parks_on_the_owner_and_shares_its_reply() {
    let spec = CgraSpec::np_cgra(4, 4);
    let jpath = temp_journal("park");
    let (layer, weights) = model();
    // Zero workers: the first keyed submit owns a reservation that cannot
    // resolve yet, so the second parks as a waiter instead of executing.
    let (server, _) = Server::start_with_journal(config(&spec, 0), JournalConfig::new(&jpath)).unwrap();
    let id = server.register("dw", layer.clone(), weights.clone()).unwrap();
    server.replay_recovered().unwrap();
    let ifm = Tensor::random(2, 8, 8, 31);
    let golden = reference::run_layer(&layer, &ifm, &weights).unwrap();
    let first = server
        .submit_idem(id, ifm.clone(), None, Priority::Interactive, 0xCAFE)
        .unwrap();
    let second = server.submit_idem(id, ifm, None, Priority::Interactive, 0xCAFE).unwrap();
    let stats_before = server.stats();
    assert_eq!(stats_before.submitted, 1, "the duplicate must not be admitted");
    // A graceful shutdown with zero workers rejects the queued owner; the
    // parked waiter shares that terminal outcome rather than hanging.
    let stats = server.shutdown();
    assert!(first.wait().is_err());
    assert!(second.wait().is_err(), "the waiter must share the owner's outcome");
    assert_eq!(stats.duplicate_executions, 0);
    let _ = std::fs::remove_file(&jpath);
    // A fresh journaled life with workers: both a live submit and a
    // duplicate complete with one execution.
    let jpath2 = temp_journal("park2");
    let (server, _) = Server::start_with_journal(config(&spec, 1), JournalConfig::new(&jpath2)).unwrap();
    let id = server.register("dw", layer, weights).unwrap();
    server.replay_recovered().unwrap();
    let ifm = Tensor::random(2, 8, 8, 31);
    let t1 = server
        .submit_idem(id, ifm.clone(), None, Priority::Interactive, 0xCAFE)
        .unwrap();
    assert_eq!(t1.wait().unwrap().output, golden);
    let t2 = server.submit_idem(id, ifm, None, Priority::Interactive, 0xCAFE).unwrap();
    let r2 = t2.wait().unwrap();
    assert_eq!(r2.output, golden, "dedup redelivery diverged");
    assert_eq!(r2.batch_size, 0, "a redelivered reply marks itself (batch_size 0)");
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1, "one execution for two keyed submits");
    assert_eq!(stats.dedup_hits, 1);
    assert_eq!(stats.duplicate_executions, 0);
    let _ = std::fs::remove_file(&jpath2);
}
