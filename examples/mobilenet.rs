//! MobileNet on NP-CGRA: per-layer timing of the DSC stacks the paper
//! evaluates (Table 6), on the 8×8 Table 4 machine.
//!
//! ```text
//! cargo run --release --example mobilenet [-- <alpha> <resolution>]
//! ```
//!
//! Defaults to the Eyeriss-v2 comparison point: width multiplier 0.5 at
//! resolution 128 for V1, plus the full V2 (1.0/224) DSC stack.

use npcgra::nn::models;
use npcgra::NpCgra;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let alpha: f64 = args.get(1).map_or(0.5, |s| s.parse().expect("alpha"));
    let res: usize = args.get(2).map_or(128, |s| s.parse().expect("resolution"));

    let machine = NpCgra::table4();
    let v1 = models::mobilenet_v1(alpha, res);

    println!("== {} on the 8x8 NP-CGRA ==", v1.name());
    println!("{:<14} {:>10} {:>9} {:>7}", "layer", "cycles", "ms", "util%");
    for layer in v1.dsc_layers() {
        let r = machine.time_layer(layer)?;
        println!(
            "{:<14} {:>10} {:>9.4} {:>7.2}",
            r.name,
            r.cycles,
            r.ms(),
            r.utilization() * 100.0
        );
    }
    let total = machine.time_model_dsc(&v1)?;
    let adp = machine.adp_of(&total);
    println!("{:-<44}", "");
    println!(
        "V1 DSC total: {:.3} ms, ADP {:.2} mm^2*ms (paper: 4.01 ms, 8.60)",
        total.ms(),
        adp.value()
    );

    // Eyeriss v2 comparison (Table 6).
    let v2comp = npcgra::area::comparators::eyeriss_v2();
    println!(
        "Eyeriss v2:   {:.2} ms, ADP {:.2} mm^2*ms -> NP-CGRA ADP gain {:.2}x (paper: 2.22x)",
        v2comp.mobilenet_v1_dsc_ms.expect("reported"),
        v2comp.mobilenet_v1_adp().expect("reported"),
        v2comp.mobilenet_v1_adp().expect("reported") / adp.value(),
    );

    println!();
    let v2 = models::mobilenet_v2(1.0, 224);
    let total2 = machine.time_model_dsc(&v2)?;
    println!("== {} ==", v2.name());
    println!("V2 DSC total: {:.3} ms (paper: 18.06 ms)", total2.ms());
    Ok(())
}
