//! The FIR filter of §3.2 — the example that motivates the operand reuse
//! network — running on the real machinery.
//!
//! `y_i = w_0·x_i + w_1·x_{i+1} + w_2·x_{i+2}` is a 3-tap FIR. Expressed as
//! a depthwise convolution whose kernel has one live row, it runs through
//! the stride-1 EE/SS/EW mapping: the same `x` value is consumed by
//! neighbouring PEs on consecutive cycles through the ORN latches, exactly
//! the reuse pattern the paper describes. The paper's conclusion — "we plan
//! to apply our NP-CGRA to ... digital filters" — is this example.
//!
//! ```text
//! cargo run --example fir_filter
//! ```

use npcgra::{Matrix, NpCgra, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = NpCgra::new_4x4();

    // A 3-tap FIR over a 64-sample signal, as a 1-channel DWC whose 3×3
    // kernel has only its middle row populated (pad=1 keeps row alignment).
    let taps: [i16; 3] = [2, -3, 1];
    let signal: Vec<i16> = (0..64).map(|i| ((i * 7) % 23) as i16 - 11).collect();

    let layer = npcgra::ConvLayer::depthwise("fir", 1, 3, 64, 3, 1, 1);
    // Place the signal in the middle image row; padding rows contribute 0.
    let ifm = Tensor::from_fn(1, 3, 64, |_, y, x| if y == 1 { signal[x] } else { 0 });
    let weights = Tensor::from_fn(1, 3, 3, |_, ky, kx| if ky == 1 { taps[kx] } else { 0 });

    let (ofm, report) = machine.run_layer(&layer, &ifm, &weights)?;

    // Check the middle output row against a direct FIR evaluation
    // (with the conv's zero padding at the ends).
    let mut ok = true;
    for i in 0..64 {
        let mut acc: i32 = 0;
        for (j, &t) in taps.iter().enumerate() {
            let idx = i as isize + j as isize - 1;
            if (0..64).contains(&idx) {
                acc += i32::from(signal[idx as usize]) * i32::from(t);
            }
        }
        if ofm.get(0, 1, i) != acc as i16 {
            ok = false;
        }
    }
    println!("3-tap FIR over 64 samples on the 4x4 NP-CGRA:");
    println!("  {report}");
    println!("  output check: {}", if ok { "exact" } else { "MISMATCH" });
    assert!(ok);

    // And the other conclusion workload: plain matrix multiplication.
    let a = Matrix::random(12, 20, 1);
    let b = Matrix::random(20, 9, 2);
    let (c, rep) = machine.matmul(&a, &b)?;
    assert_eq!(c, a.matmul(&b), "matmul is bit-exact");
    println!();
    println!("12x20 x 20x9 matmul through the PWC mapping:");
    println!("  {rep}");
    println!("  output check: exact");
    Ok(())
}
