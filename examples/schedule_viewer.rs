//! Render the paper's schedule figures as text: the PWC tile (Fig. 1), the
//! general-stride DWC tile (Fig. 5b) and the stride-1 EE/SS/EW tile
//! (Figs. 6/8) on a 2×2 array.
//!
//! ```text
//! cargo run --example schedule_viewer
//! ```

use npcgra::agu::{TileClock, TilePos};
use npcgra::kernels::{DwcGeneralMapping, DwcS1Mapping, PwcMapping, TileMapping};
use npcgra::CgraSpec;

fn render(name: &str, mapping: &dyn TileMapping, rows: usize, cols: usize) {
    println!("== {name} (tile latency {} cycles) ==", mapping.tile_latency());
    let pos = TilePos::first(1, 1);
    let mut clock = TileClock::start();
    let mut remaining = mapping.phase_len(0).expect("phase 0");
    let mut cycle = 0u64;
    loop {
        let grf = mapping.grf_index(clock).map_or(String::new(), |i| format!(" grf[{i}]"));
        let mut pes = String::new();
        for r in 0..rows {
            for c in 0..cols {
                let ins = mapping.pe_instruction(clock, pos, r, c);
                pes.push_str(&format!(" {:>14}", format!("({r},{c}) {}", short(&ins))));
            }
        }
        let h: Vec<String> = (0..rows)
            .map(|r| mapping.h_request(clock, pos, r).map_or("-".into(), |q| q.to_string()))
            .collect();
        let v: Vec<String> = (0..cols)
            .map(|c| mapping.v_request(clock, pos, c).map_or("-".into(), |q| q.to_string()))
            .collect();
        println!("T={cycle:>2}{grf} |{pes} | H[{}] V[{}]", h.join(","), v.join(","));
        cycle += 1;
        remaining -= 1;
        if remaining == 0 {
            match mapping.phase_len(clock.t_wrap + 1) {
                Some(len) => {
                    clock.step(true);
                    remaining = len;
                }
                None => break,
            }
        } else {
            clock.step(false);
        }
    }
    println!();
}

fn short(ins: &npcgra::arch::Instruction) -> String {
    use npcgra::arch::MuxSel;
    let src = |m: MuxSel| match m {
        MuxSel::HBus => "H",
        MuxSel::VBus => "V",
        MuxSel::Grf => "G",
        MuxSel::Orn => "O",
        MuxSel::Zero => ".",
        _ => "?",
    };
    format!("{}({},{})", ins.op, src(ins.mux_a), src(ins.mux_b))
}

fn main() {
    let spec = CgraSpec::np_cgra(2, 2);
    // Fig. 1: PWC / matmul with a reduction of 9 (the paper's 2×2 example).
    render("PWC, N_i = 9 (Fig. 1)", &PwcMapping::new(9, &spec, 100), 2, 2);
    // Fig. 5: DWC K=3, S=2.
    render(
        "DWC general, K = 3, S = 2 (Fig. 5)",
        &DwcGeneralMapping::new(3, 2, &spec, 100),
        2,
        2,
    );
    // Figs. 6/8: DWC K=3, S=1 with EE/SS/EW phases.
    render("DWC stride-1, K = 3 (Figs. 6-8)", &DwcS1Mapping::new(3, &spec, 100), 2, 2);
}
