//! AlexNet convolution layers on NP-CGRA via im2col + the PWC mapping
//! (§6.5, Table 6). The host-side im2col time (Ultra96 ARMv8 model) is
//! included in latency, as in the paper.
//!
//! ```text
//! cargo run --release --example alexnet
//! ```

use npcgra::nn::models;
use npcgra::{reference, NpCgra, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = NpCgra::table4();
    let net = models::alexnet();

    println!("== AlexNet conv layers on the 8x8 NP-CGRA (im2col + PWC) ==");
    println!(
        "{:<8} {:>12} {:>9} {:>9} {:>9}",
        "layer", "MACs", "cgra ms", "host ms", "total ms"
    );
    let mut total_ms = 0.0;
    for layer in net.conv_layers() {
        let r = machine.time_layer(layer)?;
        let cgra_ms = r.cycles as f64 / machine.spec().clock_hz * 1e3;
        let host_ms = r.host_seconds * 1e3;
        println!(
            "{:<8} {:>12} {:>9.3} {:>9.3} {:>9.3}",
            layer.name(),
            layer.macs(),
            cgra_ms,
            host_ms,
            r.ms()
        );
        total_ms += r.ms();
    }
    println!("{:-<52}", "");
    let area = machine.area().total();
    println!(
        "total: {total_ms:.2} ms, ADP {:.2} mm^2*ms (paper: 40.07 ms, 87.28; ARM core area excluded as in the paper)",
        total_ms * area
    );

    // Functional spot-check on a scaled-down conv1-like layer (the full
    // layers run the same code paths; this keeps the example fast).
    let small = npcgra::ConvLayer::standard("conv1-mini", 3, 8, 23, 23, 11, 4, 0, 1);
    let ifm = Tensor::random(3, 23, 23, 5);
    let w = small.random_weights(6);
    let (ofm, _) = machine.run_layer(&small, &ifm, &w)?;
    assert_eq!(ofm, reference::run_layer(&small, &ifm, &w)?, "im2col+PWC path is bit-exact");
    println!("functional spot-check (downscaled conv1): OK");
    Ok(())
}
