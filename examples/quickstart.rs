//! Quickstart: run one depthwise-separable block on NP-CGRA, check it
//! against the golden reference, and print the performance reports.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use npcgra::{reference, ConvLayer, NpCgra, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Table 5 machine: a 4×4 NP-CGRA at 500 MHz.
    let machine = NpCgra::new_4x4();
    println!(
        "machine: {}x{} NP-CGRA, {:.0} MHz",
        machine.spec().rows,
        machine.spec().cols,
        machine.spec().clock_hz / 1e6
    );
    println!("area:    {:.3} mm^2 (65 nm, 16-bit)", machine.area().total());
    println!();

    // One DSC block: a 3×3 depthwise layer followed by a 1×1 pointwise
    // layer, on a small 32×32 feature map.
    let dw = ConvLayer::depthwise("dw", 8, 32, 32, 3, 1, 1);
    let pw = ConvLayer::pointwise("pw", 8, 16, 32, 32);

    let ifm = Tensor::random(8, 32, 32, 42);
    let w_dw = dw.random_weights(1);
    let w_pw = pw.random_weights(2);

    // Depthwise through the stride-1 EE/SS/EW mapping.
    let (mid, rep_dw) = machine.run_layer(&dw, &ifm, &w_dw)?;
    assert_eq!(mid, reference::run_layer(&dw, &ifm, &w_dw)?, "DWC output is bit-exact");
    println!("{rep_dw}");

    // Pointwise through the output-stationary matmul mapping.
    let (out, rep_pw) = machine.run_layer(&pw, &mid, &w_pw)?;
    assert_eq!(out, reference::run_layer(&pw, &mid, &w_pw)?, "PWC output is bit-exact");
    println!("{rep_pw}");

    println!();
    println!(
        "DSC block total: {:.3} ms, ADP {:.3} mm^2*ms",
        rep_dw.ms() + rep_pw.ms(),
        machine.adp_of(&rep_dw).value() + machine.adp_of(&rep_pw).value()
    );
    Ok(())
}
