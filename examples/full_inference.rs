//! Complete inference on the simulated accelerator: every convolution of a
//! (scaled-down) MobileNet V1 runs cycle-accurately on NP-CGRA, then global
//! average pooling (host) and the fully-connected classifier (on the array,
//! via the PWC/matmul mapping) produce a class prediction — checked
//! bit-exactly against the all-software pipeline.
//!
//! ```text
//! cargo run --release --example full_inference
//! ```

use npcgra::nn::classifier::{argmax, fully_connected, global_avg_pool};
use npcgra::nn::models;
use npcgra::{reference, Matrix, NpCgra, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = NpCgra::table4();
    let model = models::mobilenet_v1(0.25, 64);
    let classes = 10;

    println!("full inference: {} + GAP + FC({classes}) on the 8x8 NP-CGRA", model.name());

    // Conv stack, layer by layer, on the machine and in software.
    let first = &model.layers()[0];
    let mut on_chip = Tensor::random(first.in_channels(), first.in_h(), first.in_w(), 1234);
    let mut golden = on_chip.clone();
    let mut total_ms = 0.0;
    for (i, layer) in model.layers().iter().enumerate() {
        let w = layer.random_weights(5000 + i as u64);
        let (a, rep) = machine.run_layer(layer, &on_chip, &w)?;
        let b = reference::run_layer(layer, &golden, &w)?;
        assert_eq!(a, b, "{}", layer.name());
        total_ms += rep.ms();
        on_chip = a;
        golden = b;
    }
    println!(
        "  conv stack: {} layers, {:.3} ms simulated latency, all bit-exact",
        model.layers().len(),
        total_ms
    );

    // Classifier head.
    let features = global_avg_pool(&on_chip);
    let fc_w = Matrix::random(features.len(), classes, 777);

    // On the machine: a 1xN_i by N_i x classes matmul through the PWC mapping.
    let fvec = Matrix::from_vec(1, features.len(), features.clone());
    let (logits_chip, fc_rep) = machine.matmul(&fvec, &fc_w)?;
    let logits_soft = fully_connected(&features, &fc_w);
    assert_eq!(logits_chip.row(0), &logits_soft[..], "FC is bit-exact");

    let class = argmax(logits_soft.as_slice());
    println!("  classifier: FC on-array in {:.4} ms, predicted class {class}", fc_rep.ms());
    println!("  end-to-end: hardware pipeline == software pipeline, bit for bit");
    Ok(())
}
